"""Per-link "supposed tasks" derived from RT channels.

Section 18.4 of the paper reduces the end-to-end feasibility question to
independent per-link questions by deriving, from every channel ``i``, a
pair of periodic tasks (Eq. 18.6/18.7)::

    T_iu = {Source_i,      P_i, C_i, d_iu}   (runs on the uplink)
    T_id = {Destination_i, P_i, C_i, d_id}   (runs on the downlink)

Each full-duplex link is then treated, from a scheduling point of view,
as *two* independent processors: one executing the uplink parts of all
channels entering the switch through it, and one executing the downlink
parts of all channels leaving the switch through it. The capacity
``C_i`` plays the role of the task's worst-case execution time.

:class:`LinkRef` names one such "processor" -- the ordered pair of an end
node and a direction relative to the switch -- and :class:`LinkTask` is
one supposed task assigned to it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ChannelParameterError
from .channel import ChannelSpec, RTChannel

__all__ = ["LinkDirection", "LinkRef", "LinkTask"]


class LinkDirection(enum.Enum):
    """Direction of one half of a full-duplex link, relative to the switch.

    ``UPLINK`` carries frames from an end node toward the switch and is
    scheduled by the end node's RT layer; ``DOWNLINK`` carries frames from
    the switch toward an end node and is scheduled by the switch.
    """

    UPLINK = "uplink"
    DOWNLINK = "downlink"

    @property
    def opposite(self) -> "LinkDirection":
        return (
            LinkDirection.DOWNLINK
            if self is LinkDirection.UPLINK
            else LinkDirection.UPLINK
        )


@dataclass(frozen=True, slots=True)
class LinkRef:
    """One direction of one physical link: the unit of feasibility analysis.

    In the star topology every physical link connects exactly one end
    node to the switch, so naming the end node plus a direction uniquely
    identifies one of the two independent "processors" of that link.

    Attributes
    ----------
    node:
        Name of the end node at the non-switch end of the physical link.
    direction:
        Which half of the duplex pair this reference denotes.
    """

    node: str
    direction: LinkDirection

    @classmethod
    def uplink(cls, node: str) -> "LinkRef":
        """The node→switch direction of ``node``'s link."""
        return cls(node=node, direction=LinkDirection.UPLINK)

    @classmethod
    def downlink(cls, node: str) -> "LinkRef":
        """The switch→node direction of ``node``'s link."""
        return cls(node=node, direction=LinkDirection.DOWNLINK)

    def __lt__(self, other: "LinkRef") -> bool:
        """Sort by (node, direction name) for stable report ordering."""
        if not isinstance(other, LinkRef):
            return NotImplemented
        return (self.node, self.direction.value) < (
            other.node,
            other.direction.value,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        arrow = "->sw" if self.direction is LinkDirection.UPLINK else "sw->"
        return f"{arrow}{self.node}" if arrow == "sw->" else f"{self.node}{arrow}"


@dataclass(frozen=True, slots=True)
class LinkTask:
    """A periodic task ``{node, P, C, d}`` running on one link direction.

    This is the paper's Eq. 18.6/18.7 object. ``deadline`` here is the
    *per-link* deadline (``d_iu`` or ``d_id``), not the channel's
    end-to-end deadline.

    Attributes
    ----------
    link:
        The link direction ("processor") the task runs on.
    period:
        ``P_i`` of the originating channel, in timeslots.
    capacity:
        ``C_i`` of the originating channel -- the task WCET, in timeslots.
    deadline:
        The per-link relative deadline, in timeslots. Must be at least
        ``capacity`` (Eq. 18.9), otherwise the task could never finish in
        time even alone on the link.
    channel_id:
        ID of the originating channel, for traceability (``-1`` when the
        task was built from a bare spec, e.g. in unit tests).
    """

    link: LinkRef
    period: int
    capacity: int
    deadline: int
    channel_id: int = -1

    def __post_init__(self) -> None:
        for name, value in (
            ("period", self.period),
            ("capacity", self.capacity),
            ("deadline", self.deadline),
        ):
            if not isinstance(value, int) or value <= 0:
                raise ChannelParameterError(
                    f"LinkTask {name} must be a positive integer, got {value!r}"
                )
        if self.capacity > self.period:
            raise ChannelParameterError(
                f"LinkTask capacity {self.capacity} exceeds period {self.period}"
            )
        if self.deadline < self.capacity:
            raise ChannelParameterError(
                f"LinkTask deadline {self.deadline} is below its capacity "
                f"{self.capacity} (violates Eq. 18.9)"
            )

    @property
    def utilization(self) -> float:
        """``C / P`` -- the task's long-run demand on its link direction."""
        return self.capacity / self.period

    @classmethod
    def pair_for_channel(cls, channel: RTChannel) -> tuple["LinkTask", "LinkTask"]:
        """Derive ``(T_iu, T_id)`` from a channel with an assigned partition.

        Implements Eq. 18.6/18.7: the uplink task runs on the source
        node's uplink, the downlink task on the destination node's
        downlink, both inheriting the channel's period and capacity.
        """
        spec: ChannelSpec = channel.spec
        up = cls(
            link=LinkRef.uplink(channel.source),
            period=spec.period,
            capacity=spec.capacity,
            deadline=channel.uplink_deadline,
            channel_id=channel.channel_id,
        )
        down = cls(
            link=LinkRef.downlink(channel.destination),
            period=spec.period,
            capacity=spec.capacity,
            deadline=channel.downlink_deadline,
            channel_id=channel.channel_id,
        )
        return up, down
