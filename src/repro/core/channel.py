"""RT channels and their deadline partitions.

An **RT channel** (Section 18.2.2 of the paper) is a virtual connection
between two end nodes, characterized by the triple ``{P_i, C_i, d_i}``:

``P_i``
    the period of the data,
``C_i``
    the amount of data generated per period, and
``d_i``
    the relative end-to-end deadline used for EDF scheduling,

all expressed as a number of maximum-sized Ethernet frames (timeslots;
see :mod:`repro.units`). The network guarantees that every message
generated on the channel is delivered within ``d_i + T_latency``
(Eq. 18.1).

Because a channel traverses exactly two links in the star topology --
the uplink from the source node to the switch, and the downlink from the
switch to the destination node -- its deadline must be *partitioned*
into an uplink part ``d_iu`` and a downlink part ``d_id`` with
``d_iu + d_id == d_i`` (Eq. 18.8) and ``d_iu, d_id >= C_i`` (Eq. 18.9).
:class:`DeadlinePartition` captures one such split;
:mod:`repro.core.partitioning` decides which split to use.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from ..errors import ChannelParameterError, PartitioningError

__all__ = [
    "ChannelSpec",
    "DeadlinePartition",
    "ChannelState",
    "RTChannel",
]


@dataclass(frozen=True, slots=True, order=True)
class ChannelSpec:
    """The ``{P, C, d}`` parameter triple of an RT channel, in timeslots.

    Attributes
    ----------
    period:
        ``P_i`` -- message inter-arrival time, in timeslots. Must be
        positive.
    capacity:
        ``C_i`` -- worst-case data per period, in maximum-sized frames.
        Must be positive and no larger than ``period`` (otherwise even a
        dedicated link could not keep up).
    deadline:
        ``d_i`` -- relative end-to-end deadline, in timeslots. Must be
        positive. ``deadline <= period`` is the common industrial case but
        is *not* required; the feasibility analysis handles arbitrary
        deadlines.

    Notes
    -----
    A spec with ``deadline < 2 * capacity`` is representable but can never
    be feasible through a store-and-forward switch (the paper's Eq. 18.9
    discussion); admission control will reject it. Use
    :meth:`is_partitionable` to test for this eagerly.
    """

    period: int
    capacity: int
    deadline: int
    #: Precomputed hash. Specs key every admission memo (assessment
    #: memos, batch templates, request dedup) and the generated
    #: three-field tuple hash is measurable at 10^6 decisions/sec;
    #: excluded from ordering and equality.
    _hash: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        for name, value in (
            ("period", self.period),
            ("capacity", self.capacity),
            ("deadline", self.deadline),
        ):
            if not isinstance(value, int):
                raise ChannelParameterError(
                    f"{name} must be an integer number of timeslots, "
                    f"got {value!r}"
                )
            if value <= 0:
                raise ChannelParameterError(f"{name} must be positive, got {value}")
        if self.capacity > self.period:
            raise ChannelParameterError(
                f"capacity {self.capacity} exceeds period {self.period}; the "
                "channel would demand more than the full link bandwidth"
            )
        object.__setattr__(
            self, "_hash",
            hash((self.period, self.capacity, self.deadline)),
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def utilization(self) -> float:
        """Long-run fraction of one link direction this channel consumes."""
        return self.capacity / self.period

    def is_partitionable(self) -> bool:
        """True iff some partition satisfying Eq. 18.9 exists (``d >= 2C``)."""
        return self.deadline >= 2 * self.capacity

    def with_deadline(self, deadline: int) -> "ChannelSpec":
        """Return a copy of this spec with a different end-to-end deadline."""
        return replace(self, deadline=deadline)


@dataclass(frozen=True, slots=True)
class DeadlinePartition:
    """A concrete split of an end-to-end deadline into uplink/downlink parts.

    ``uplink`` is ``d_iu`` and ``downlink`` is ``d_id`` from Section 18.4.
    Construction enforces positivity only; use :meth:`validate_for` to
    check the paper's conditions (Eq. 18.8 and Eq. 18.9) against a
    particular channel spec.
    """

    uplink: int
    downlink: int

    def __post_init__(self) -> None:
        for name, value in (("uplink", self.uplink), ("downlink", self.downlink)):
            if not isinstance(value, int):
                raise PartitioningError(
                    f"{name} deadline part must be an integer, got {value!r}"
                )
            if value <= 0:
                raise PartitioningError(
                    f"{name} deadline part must be positive, got {value}"
                )

    @property
    def total(self) -> int:
        """``d_iu + d_id``; must equal the channel deadline (Eq. 18.8)."""
        return self.uplink + self.downlink

    @property
    def uplink_fraction(self) -> float:
        """``Upart_i = d_iu / d_i`` (Eq. 18.11)."""
        return self.uplink / self.total

    @property
    def downlink_fraction(self) -> float:
        """``Dpart_i = d_id / d_i = 1 - Upart_i`` (Eq. 18.11/18.12)."""
        return self.downlink / self.total

    def validate_for(self, spec: ChannelSpec) -> None:
        """Raise :class:`PartitioningError` unless this partition is legal.

        Checks Eq. 18.8 (parts sum to the end-to-end deadline) and
        Eq. 18.9 (each part at least the capacity, since the capacity is
        the WCET of the supposed per-link task).
        """
        if self.total != spec.deadline:
            raise PartitioningError(
                f"partition parts {self.uplink}+{self.downlink} do not sum to "
                f"the channel deadline {spec.deadline} (Eq. 18.8)"
            )
        if self.uplink < spec.capacity or self.downlink < spec.capacity:
            raise PartitioningError(
                f"partition ({self.uplink}, {self.downlink}) has a part below "
                f"the channel capacity {spec.capacity} (Eq. 18.9); such a "
                "supposed task could never meet its deadline"
            )


class ChannelState(enum.Enum):
    """Lifecycle of an RT channel, following Section 18.2.2.

    ``REQUESTED``
        the source sent a RequestFrame; the switch has not yet decided.
    ``OFFERED``
        the switch found the request feasible and forwarded it to the
        destination; waiting for the destination's ResponseFrame.
    ``ACTIVE``
        established end-to-end; real-time traffic may flow.
    ``REJECTED``
        refused, either by the switch's feasibility test or by the
        destination node.
    ``TORN_DOWN``
        was active, then released; its reservation has been returned.
    """

    REQUESTED = "requested"
    OFFERED = "offered"
    ACTIVE = "active"
    REJECTED = "rejected"
    TORN_DOWN = "torn_down"

    def is_terminal(self) -> bool:
        """True for states a channel can never leave."""
        return self in (ChannelState.REJECTED, ChannelState.TORN_DOWN)


@dataclass(slots=True)
class RTChannel:
    """A (possibly established) RT channel between two named nodes.

    This object carries everything admission control and the simulator
    need to know about one channel: endpoints, parameters, the deadline
    partition chosen at admission time, and lifecycle state.

    Attributes
    ----------
    channel_id:
        Network-unique ID assigned by the switch (the 16-bit *RT channel
        ID* field of Figures 18.3/18.4). ``-1`` until assigned.
    source, destination:
        Names of the end nodes. A channel never connects a node to itself.
    spec:
        The ``{P, C, d}`` triple.
    partition:
        Deadline split chosen by the DPS at admission time; ``None`` until
        admission control has run.
    state:
        Lifecycle state (see :class:`ChannelState`).
    """

    source: str
    destination: str
    spec: ChannelSpec
    channel_id: int = -1
    partition: DeadlinePartition | None = None
    state: ChannelState = field(default=ChannelState.REQUESTED)

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ChannelParameterError(
                f"channel source and destination are both {self.source!r}; "
                "an RT channel connects two distinct nodes"
            )

    @property
    def uplink_deadline(self) -> int:
        """``d_iu`` of the assigned partition (requires a partition)."""
        if self.partition is None:
            raise PartitioningError(
                f"channel {self.source}->{self.destination} has no deadline "
                "partition assigned yet"
            )
        return self.partition.uplink

    @property
    def downlink_deadline(self) -> int:
        """``d_id`` of the assigned partition (requires a partition)."""
        if self.partition is None:
            raise PartitioningError(
                f"channel {self.source}->{self.destination} has no deadline "
                "partition assigned yet"
            )
        return self.partition.downlink

    def assign_partition(self, partition: DeadlinePartition) -> None:
        """Attach a validated deadline partition to this channel."""
        partition.validate_for(self.spec)
        self.partition = partition

    def describe(self) -> str:
        """Human-readable one-liner, used in traces and error messages."""
        part = (
            f" d_iu={self.partition.uplink} d_id={self.partition.downlink}"
            if self.partition is not None
            else ""
        )
        ident = f"#{self.channel_id}" if self.channel_id >= 0 else "#?"
        return (
            f"RTChannel{ident} {self.source}->{self.destination} "
            f"P={self.spec.period} C={self.spec.capacity} "
            f"d={self.spec.deadline}{part} [{self.state.value}]"
        )
