"""Core algorithms of the reproduced paper.

This subpackage contains the paper's actual contribution:

* :mod:`~repro.core.channel` -- RT channels ``{P, C, d}`` and their
  deadline partitions.
* :mod:`~repro.core.task` -- the per-link "supposed tasks" derived from a
  channel (Eq. 18.6/18.7).
* :mod:`~repro.core.edf_queue` -- deadline-sorted (EDF) and FCFS frame
  queues used at every output port.
* :mod:`~repro.core.feasibility` -- EDF feasibility analysis per link:
  utilization test and processor-demand criterion with the paper's
  busy-period and control-point reductions (Section 18.3.2).
* :mod:`~repro.core.partitioning` -- deadline partitioning schemes:
  SDPS and ADPS (Section 18.4).
* :mod:`~repro.core.partitioning_ext` -- additional schemes beyond the
  paper (utilization-proportional, laxity-aware, search-based).
* :mod:`~repro.core.admission` -- the switch's admission control over the
  system state ``{N, K}``.
* :mod:`~repro.core.rt_layer` -- end-node RT layer behaviour.
* :mod:`~repro.core.channel_manager` -- switch-side channel management.
"""

from .channel import ChannelSpec, DeadlinePartition, RTChannel, ChannelState
from .task import LinkTask, LinkDirection, LinkRef
from .edf_queue import EDFQueue, FCFSQueue, QueuedFrame
from .feasibility import (
    FeasibilityReport,
    busy_period,
    control_points,
    demand,
    hyperperiod,
    is_feasible,
    utilization,
)
from .feasibility_cache import (
    CacheStats,
    FeasibilityCache,
    LinkCacheEntry,
)
from .partitioning import (
    DeadlinePartitioningScheme,
    SymmetricDPS,
    AsymmetricDPS,
    clamp_partition,
)
from .partitioning_ext import (
    UtilizationDPS,
    LaxityDPS,
    SearchDPS,
)
from .admission import (
    AdmissionController,
    AdmissionDecision,
    LinkSchedule,
    RejectionReason,
    SystemState,
)
from .rt_layer import ChannelGrant, OutgoingFrame, RTLayer
from .schedule import LinkSchedule as OfflineLinkSchedule
from .schedule import TaskResponse, build_schedule
from .persistence import (
    dumps as snapshot_dumps,
    loads as snapshot_loads,
    restore,
    restore_signalling,
    snapshot,
)
from .channel_manager import NodeDirectory, SignalAction, SwitchChannelManager

__all__ = [
    "ChannelSpec",
    "DeadlinePartition",
    "RTChannel",
    "ChannelState",
    "LinkTask",
    "LinkDirection",
    "LinkRef",
    "EDFQueue",
    "FCFSQueue",
    "QueuedFrame",
    "FeasibilityReport",
    "busy_period",
    "control_points",
    "demand",
    "hyperperiod",
    "is_feasible",
    "utilization",
    "CacheStats",
    "FeasibilityCache",
    "LinkCacheEntry",
    "DeadlinePartitioningScheme",
    "SymmetricDPS",
    "AsymmetricDPS",
    "clamp_partition",
    "UtilizationDPS",
    "LaxityDPS",
    "SearchDPS",
    "AdmissionController",
    "AdmissionDecision",
    "LinkSchedule",
    "RejectionReason",
    "SystemState",
    "ChannelGrant",
    "OutgoingFrame",
    "RTLayer",
    "NodeDirectory",
    "SignalAction",
    "SwitchChannelManager",
    "OfflineLinkSchedule",
    "TaskResponse",
    "build_schedule",
    "restore_signalling",
    "snapshot",
    "restore",
    "snapshot_dumps",
    "snapshot_loads",
]
