"""Deadline-partitioning schemes beyond the paper (extensions).

The paper's conclusion calls for exploring "alternative communication
models and scheduling algorithms". These schemes explore the DPS design
space the paper opened:

* :class:`UtilizationDPS` -- like ADPS but weighs links by reserved
  *utilization* (``sum C/P``) instead of channel count. Channel count is
  a crude congestion proxy: ten tiny channels load a link less than two
  huge ones. Utilization is the quantity the feasibility test actually
  constrains.
* :class:`LaxityDPS` -- distributes only the channel's *slack*
  ``d - 2C`` proportionally to load and gives each side its mandatory
  ``C`` first. This never needs clamping: every output satisfies
  Eq. 18.9 by construction.
* :class:`SearchDPS` -- exhaustively probes candidate splits through the
  admission controller's feasibility test and accepts the first split
  that makes both links feasible. This is the *optimal* per-channel
  greedy scheme: it rejects a channel only when **no** partition works,
  providing an upper bound against which SDPS/ADPS can be judged
  (benchmark EXP-D1).

All schemes honour the same contract as the paper's schemes: Eq. 18.8
(parts sum to ``d``) and Eq. 18.9 (each part at least ``C``).
"""

from __future__ import annotations

from fractions import Fraction

from ..errors import PartitioningError
from .channel import ChannelSpec, DeadlinePartition
from .partitioning import (
    DeadlinePartitioningScheme,
    FeasibilityProbe,
    LoadView,
    clamp_partition,
    intern_partition,
    split_round_half_up,
)
from .task import LinkRef

__all__ = ["UtilizationDPS", "LaxityDPS", "SearchDPS"]


class UtilizationDPS(DeadlinePartitioningScheme):
    """Partition proportionally to reserved link utilization.

    ``Upart_i = U(source uplink) / (U(source uplink) + U(destination
    downlink))`` with utilizations taken *including* the candidate
    channel. Falls back to an even split when both utilizations are zero
    (cannot happen when the candidate is counted, but the fallback keeps
    the scheme total).
    """

    name = "udps"
    local_only = True  # reads only the two endpoint utilizations

    def partition(
        self,
        source: str,
        destination: str,
        spec: ChannelSpec,
        loads: LoadView,
    ) -> DeadlinePartition:
        u_up = loads.link_utilization(LinkRef.uplink(source))
        u_down = loads.link_utilization(LinkRef.downlink(destination))
        if u_up < 0 or u_down < 0:
            raise PartitioningError(
                f"negative link utilization reported: {u_up}, {u_down}"
            )
        total = u_up + u_down
        if total == 0:
            return clamp_partition(spec, spec.deadline // 2)
        share = Fraction(u_up) / Fraction(total)
        uplink_part = split_round_half_up(
            spec.deadline, share.numerator, share.denominator
        )
        return clamp_partition(spec, uplink_part)


class LaxityDPS(DeadlinePartitioningScheme):
    """Distribute the slack ``d - 2C`` proportionally to LinkLoad.

    Each side first receives its mandatory minimum ``C`` (Eq. 18.9), and
    the remaining ``d - 2C`` slack timeslots are then divided in the same
    LinkLoad ratio ADPS uses. Unlike raw ADPS, the result can never land
    outside ``[C, d - C]``, so no clamping distortion occurs for channels
    with tight deadlines.
    """

    name = "ldps"
    local_only = True  # reads only the two endpoint LinkLoads

    def partition(
        self,
        source: str,
        destination: str,
        spec: ChannelSpec,
        loads: LoadView,
    ) -> DeadlinePartition:
        if not spec.is_partitionable():
            raise PartitioningError(
                f"channel with C={spec.capacity}, d={spec.deadline} cannot "
                "be partitioned (Eq. 18.9)"
            )
        ll_up = loads.link_load(LinkRef.uplink(source))
        ll_down = loads.link_load(LinkRef.downlink(destination))
        slack = spec.deadline - 2 * spec.capacity
        total = ll_up + ll_down
        if total == 0:
            extra_up = slack // 2
        else:
            extra_up = split_round_half_up(slack, ll_up, total)
        uplink = spec.capacity + extra_up
        return intern_partition(uplink, spec.deadline - uplink)


class SearchDPS(DeadlinePartitioningScheme):
    """Probe every legal split until one passes the feasibility test.

    Candidate uplink parts are tried in an order that starts from a
    heuristic centre (the ADPS split) and fans outward, so when many
    splits work the chosen one is close to the load-balanced choice and
    the search terminates quickly. When *no* split passes the probe the
    scheme returns the heuristic split anyway -- admission control will
    then reject the channel, which is the correct outcome (the channel is
    genuinely infeasible under every partition).

    Without a probe (plain :meth:`partition`), behaves exactly like ADPS.

    Parameters
    ----------
    max_probes:
        Upper bound on feasibility probes per channel, limiting admission
        latency for channels with very long deadlines. ``None`` means
        exhaustive.
    strict:
        When True, :meth:`partition_with_probe` raises
        :class:`~repro.errors.PartitioningError` instead of returning the
        centre split when no probed split passes. The admission
        controller classifies that as
        :attr:`~repro.core.admission.RejectionReason.NO_FEASIBLE_PARTITION`
        (the spec is partitionable; the *load* admits no split), keeping
        the rejection histogram honest.
    """

    name = "searchdps"
    # Probes test only the two endpoint links, so the whole search is a
    # pure function of their state -- memoizable like ADPS.
    local_only = True

    def __init__(
        self, max_probes: int | None = None, *, strict: bool = False
    ) -> None:
        if max_probes is not None and max_probes <= 0:
            raise PartitioningError(
                f"max_probes must be positive or None, got {max_probes}"
            )
        self._max_probes = max_probes
        self._strict = strict
        self._heuristic = _AdpsHeuristic()

    def partition(
        self,
        source: str,
        destination: str,
        spec: ChannelSpec,
        loads: LoadView,
    ) -> DeadlinePartition:
        return self._heuristic.partition(source, destination, spec, loads)

    def partition_with_probe(
        self,
        source: str,
        destination: str,
        spec: ChannelSpec,
        loads: LoadView,
        probe: FeasibilityProbe,
    ) -> DeadlinePartition:
        centre = self._heuristic.partition(source, destination, spec, loads)
        lo, hi = spec.capacity, spec.deadline - spec.capacity
        probes = 0
        for uplink in _fan_out(centre.uplink, lo, hi):
            if self._max_probes is not None and probes >= self._max_probes:
                break
            candidate = intern_partition(uplink, spec.deadline - uplink)
            probes += 1
            if probe(candidate):
                return candidate
        if self._strict:
            raise PartitioningError(
                f"no probed split of d={spec.deadline} keeps both links "
                f"feasible ({probes} probes)"
            )
        return centre


class _AdpsHeuristic(DeadlinePartitioningScheme):
    """Internal: ADPS arithmetic reused as SearchDPS's starting point."""

    name = "adps-heuristic"
    local_only = True

    def partition(
        self,
        source: str,
        destination: str,
        spec: ChannelSpec,
        loads: LoadView,
    ) -> DeadlinePartition:
        ll_up = loads.link_load(LinkRef.uplink(source))
        ll_down = loads.link_load(LinkRef.downlink(destination))
        total = ll_up + ll_down
        if total == 0:
            return clamp_partition(spec, spec.deadline // 2)
        return clamp_partition(
            spec, split_round_half_up(spec.deadline, ll_up, total)
        )


def _fan_out(centre: int, lo: int, hi: int):
    """Yield integers in ``[lo, hi]`` ordered by distance from ``centre``.

    ``centre`` is clamped into the range first. Ties (equal distance on
    both sides) yield the smaller value first, deterministically.
    """
    if lo > hi:
        return
    centre = min(max(centre, lo), hi)
    yield centre
    for offset in range(1, max(centre - lo, hi - centre) + 1):
        below, above = centre - offset, centre + offset
        if below >= lo:
            yield below
        if above <= hi:
            yield above
