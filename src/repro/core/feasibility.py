"""EDF feasibility analysis for one link direction (Section 18.3.2).

The switch's admission control reduces "can this set of RT channels be
scheduled?" to a per-link question: treat each link direction as a
uniprocessor, each channel part as a periodic task with WCET ``C_i``,
period ``P_i`` and relative deadline ``d`` (``d_iu`` or ``d_id``), and
apply classical EDF theory:

**First constraint** (Eq. 18.2)
    total utilization ``U = sum C_i / P_i`` must not exceed 1.

**Second constraint** (Eq. 18.3)
    the *workload function* (processor-demand function)

    .. math:: h(n, t) = \\sum_{i : d_i \\le t} \\Big(1 + \\big\\lfloor \\tfrac{t - d_i}{P_i} \\big\\rfloor\\Big) C_i

    must satisfy ``h(n, t) <= t`` for all ``t``.

The paper applies two standard reductions from Stankovic et al. [6]:

* it suffices to check ``t`` inside the **first busy period** of the
  synchronous schedule (Eq. 18.4), and
* within that range, only the **control points**
  ``t = m * P_i + d_i`` (Eq. 18.5) need to be tested, because ``h`` is a
  step function that only increases at those instants.

Additionally, Liu & Layland [2] showed that when every task has
``d_i == P_i`` the utilization test alone is exact, which lets the
switch skip the demand test entirely in that common case.

All functions here take a sequence of :class:`~repro.core.task.LinkTask`
(they ignore the ``link`` field -- callers group tasks per link first)
and use exact integer / :class:`fractions.Fraction` arithmetic so the
test never suffers floating-point misclassification at ``U == 1``.

A deliberately naive reference implementation
(:func:`is_feasible_naive`) that scans *every* integer ``t`` is kept for
differential testing and for the EXP-P1 performance experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .task import LinkTask

__all__ = [
    "utilization",
    "hyperperiod",
    "demand",
    "demand_many",
    "busy_period",
    "control_points",
    "FeasibilityReport",
    "is_feasible",
    "is_feasible_naive",
    "max_additional_tasks",
    "max_busy_period_iterations",
]

#: Safety cap on busy-period fixpoint iterations. The iteration is
#: guaranteed to converge within ``hyperperiod`` steps when U <= 1; this
#: cap only guards against misuse (it is far above any practical value).
max_busy_period_iterations = 1_000_000


def _check_tasks(tasks: Sequence[LinkTask]) -> None:
    if not isinstance(tasks, Sequence):
        raise ConfigurationError(
            f"tasks must be a sequence of LinkTask, got {type(tasks).__name__}"
        )


def utilization(tasks: Sequence[LinkTask]) -> Fraction:
    """Exact utilization ``U = sum C_i / P_i`` of a task set (Eq. 18.2).

    Returned as a :class:`fractions.Fraction` so the boundary case
    ``U == 1`` is decided exactly.
    """
    _check_tasks(tasks)
    total = Fraction(0)
    for task in tasks:
        total += Fraction(task.capacity, task.period)
    return total


def hyperperiod(tasks: Sequence[LinkTask]) -> int:
    """Least common multiple of all task periods.

    The schedule of a synchronous periodic task set repeats with this
    period; it upper-bounds every analysis horizon used here. The empty
    task set has hyperperiod 1 (any positive value would do; 1 keeps the
    invariant ``hyperperiod >= 1``).
    """
    _check_tasks(tasks)
    result = 1
    for task in tasks:
        result = math.lcm(result, task.period)
    return result


def demand(tasks: Sequence[LinkTask], t: int) -> int:
    """The workload function ``h(n, t)`` of Eq. 18.3 at a single instant.

    ``h(n, t)`` sums, over every task whose relative deadline is at most
    ``t``, the capacities of all its jobs with absolute deadline within
    ``[0, t]`` when all tasks are released synchronously at time 0.
    """
    _check_tasks(tasks)
    if t < 0:
        raise ConfigurationError(f"demand instant must be non-negative, got {t}")
    total = 0
    for task in tasks:
        if task.deadline <= t:
            total += (1 + (t - task.deadline) // task.period) * task.capacity
    return total


def demand_many(tasks: Sequence[LinkTask], instants: np.ndarray) -> np.ndarray:
    """Vectorized ``h(n, t)`` over an array of instants.

    Equivalent to ``[demand(tasks, t) for t in instants]`` but computed
    with NumPy broadcasting; used on the hot admission-control path where
    one feasibility test may probe thousands of control points.
    """
    _check_tasks(tasks)
    instants = np.asarray(instants, dtype=np.int64)
    if instants.size == 0 or not tasks:
        return np.zeros(instants.shape, dtype=np.int64)
    if np.any(instants < 0):
        raise ConfigurationError("demand instants must be non-negative")
    periods = np.array([task.period for task in tasks], dtype=np.int64)
    capacities = np.array([task.capacity for task in tasks], dtype=np.int64)
    deadlines = np.array([task.deadline for task in tasks], dtype=np.int64)
    # shape: (n_instants, n_tasks)
    delta = instants[:, None] - deadlines[None, :]
    eligible = delta >= 0
    jobs = np.where(eligible, 1 + np.floor_divide(delta, periods[None, :]), 0)
    return (jobs * capacities[None, :]).sum(axis=1)


def busy_period(tasks: Sequence[LinkTask]) -> int:
    """Length of the first busy period of the synchronous schedule (Eq. 18.4).

    Computed by the standard fixpoint iteration::

        L_0     = sum C_i
        L_{k+1} = sum ceil(L_k / P_i) * C_i

    which converges to the smallest ``L > 0`` with ``W(L) == L`` whenever
    the utilization does not exceed 1. For an empty task set the busy
    period is 0 (the link is always idle -- no demand to check).

    Raises
    ------
    ConfigurationError
        if the task set over-utilizes the link (``U > 1``); the fixpoint
        does not exist in that case. Admission control always performs
        the utilization test first, so this indicates caller error.
    """
    _check_tasks(tasks)
    if not tasks:
        return 0
    if utilization(tasks) > 1:
        raise ConfigurationError(
            "busy_period is undefined for an over-utilized link (U > 1); "
            "run the utilization test first"
        )
    length = sum(task.capacity for task in tasks)
    for _ in range(max_busy_period_iterations):
        nxt = sum(
            -(-length // task.period) * task.capacity  # ceil division
            for task in tasks
        )
        if nxt == length:
            return length
        length = nxt
    raise ConfigurationError(
        "busy-period iteration failed to converge within "
        f"{max_busy_period_iterations} steps; task set: {len(tasks)} tasks"
    )  # pragma: no cover - unreachable for U <= 1


def control_points(tasks: Sequence[LinkTask], horizon: int) -> np.ndarray:
    """Sorted, de-duplicated control points ``m*P_i + d_i <= horizon`` (Eq. 18.5).

    ``h(n, t)`` is a right-continuous step function that jumps exactly at
    absolute job deadlines, i.e. at ``t = m * P_i + d_i`` for integer
    ``m >= 0``. Between jumps ``h`` is constant while ``t`` grows, so the
    constraint ``h(n, t) <= t`` can only be violated *at* a jump.
    """
    _check_tasks(tasks)
    if horizon < 0:
        raise ConfigurationError(f"horizon must be non-negative, got {horizon}")
    pieces: list[np.ndarray] = []
    for task in tasks:
        if task.deadline > horizon:
            continue
        count = (horizon - task.deadline) // task.period + 1
        pieces.append(
            task.deadline + task.period * np.arange(count, dtype=np.int64)
        )
    if not pieces:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(pieces))


@dataclass(frozen=True, slots=True)
class FeasibilityReport:
    """Outcome of one per-link feasibility test, with full provenance.

    Attributes
    ----------
    feasible:
        The verdict.
    link_utilization:
        Exact utilization of the task set.
    horizon:
        The analysis horizon actually used (``min(busy period,
        hyperperiod)``); 0 when the verdict came from the utilization
        test alone.
    points_checked:
        Number of control points at which ``h`` was evaluated.
    used_liu_layland:
        True when every task had deadline equal to its period, so the
        utilization test alone was exact (Liu & Layland [2]) and the
        demand test was skipped.
    violation:
        ``(t, h(n, t))`` for the first control point where the demand
        exceeded ``t``; ``None`` when feasible.
    """

    feasible: bool
    link_utilization: Fraction
    horizon: int
    points_checked: int
    used_liu_layland: bool
    violation: tuple[int, int] | None

    def __bool__(self) -> bool:
        return self.feasible


def is_feasible(tasks: Sequence[LinkTask]) -> FeasibilityReport:
    """Full per-link EDF feasibility test (Section 18.3.2).

    Runs the utilization test first; when it passes and some task has
    ``d != P``, runs the processor-demand test at the control points of
    Eq. 18.5 within the first busy period (Eq. 18.4), additionally capped
    by the hyperperiod.

    The empty task set is trivially feasible.
    """
    _check_tasks(tasks)
    util = utilization(tasks)
    if util > 1:
        return FeasibilityReport(
            feasible=False,
            link_utilization=util,
            horizon=0,
            points_checked=0,
            used_liu_layland=False,
            violation=None,
        )
    if all(task.deadline == task.period for task in tasks):
        # Liu & Layland: utilization test is exact for implicit deadlines.
        return FeasibilityReport(
            feasible=True,
            link_utilization=util,
            horizon=0,
            points_checked=0,
            used_liu_layland=True,
            violation=None,
        )
    horizon = min(busy_period(tasks), hyperperiod(tasks))
    points = control_points(tasks, horizon)
    demands = demand_many(tasks, points)
    bad = np.nonzero(demands > points)[0]
    if bad.size:
        first = int(bad[0])
        return FeasibilityReport(
            feasible=False,
            link_utilization=util,
            horizon=horizon,
            points_checked=int(points.size),
            used_liu_layland=False,
            violation=(int(points[first]), int(demands[first])),
        )
    return FeasibilityReport(
        feasible=True,
        link_utilization=util,
        horizon=horizon,
        points_checked=int(points.size),
        used_liu_layland=False,
        violation=None,
    )


def is_feasible_naive(tasks: Sequence[LinkTask]) -> FeasibilityReport:
    """Reference implementation scanning *every* integer instant.

    Checks ``h(n, t) <= t`` for every ``t`` in ``1..min(busy period,
    hyperperiod)`` with no control-point reduction. Exponentially slower
    than :func:`is_feasible` on long horizons but trivially correct; used
    for differential testing and the EXP-P1 benchmark.
    """
    _check_tasks(tasks)
    util = utilization(tasks)
    if util > 1:
        return FeasibilityReport(
            feasible=False,
            link_utilization=util,
            horizon=0,
            points_checked=0,
            used_liu_layland=False,
            violation=None,
        )
    horizon = min(busy_period(tasks), hyperperiod(tasks))
    checked = 0
    for t in range(1, horizon + 1):
        checked += 1
        h = demand(tasks, t)
        if h > t:
            return FeasibilityReport(
                feasible=False,
                link_utilization=util,
                horizon=horizon,
                points_checked=checked,
                used_liu_layland=False,
                violation=(t, h),
            )
    return FeasibilityReport(
        feasible=True,
        link_utilization=util,
        horizon=horizon,
        points_checked=checked,
        used_liu_layland=False,
        violation=None,
    )


def max_additional_tasks(
    existing: Sequence[LinkTask],
    candidate: LinkTask,
    upper_bound: int = 4096,
) -> int:
    """Capacity planning: how many copies of ``candidate`` still fit?

    Returns the largest ``q`` such that ``existing`` plus ``q`` copies of
    ``candidate`` remains feasible on the link. Feasibility is monotone
    in ``q`` (adding identical work never helps), so a binary search on
    the exact test gives the answer in ``O(log upper_bound)`` tests.

    Useful for provisioning questions like the paper's Figure 18.5
    saturation points: with ``d_iu = 20``, ``C = 3``, ``P = 100`` an
    empty uplink fits exactly 6 channels.
    """
    _check_tasks(existing)
    if upper_bound < 0:
        raise ConfigurationError(
            f"upper_bound must be >= 0, got {upper_bound}"
        )

    def fits(q: int) -> bool:
        return is_feasible(list(existing) + [candidate] * q).feasible

    if not fits(0):
        raise ConfigurationError(
            "the existing task set is already infeasible; capacity "
            "planning over it is meaningless"
        )
    lo, hi = 0, 1
    while hi <= upper_bound and fits(hi):
        lo, hi = hi, hi * 2
    hi = min(hi, upper_bound + 1)
    # invariant: fits(lo), not fits(hi) (or hi > upper_bound)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid
    return lo
