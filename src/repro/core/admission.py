"""Admission control over the system state (Sections 18.3 and 18.4).

The paper defines the **system state** ``SS = {N, K}`` -- the set of
connected nodes and the set of active RT channels -- and defines a
*feasible system* as one where every link is feasible. Adding a channel
is allowed exactly when the new state would still be feasible, which the
switch decides with per-link EDF analysis (:mod:`repro.core.feasibility`)
after the deadline-partitioning scheme
(:mod:`repro.core.partitioning`) has split the candidate's deadline.

:class:`SystemState` is the bookkeeping half: it tracks nodes, channels
and the per-link task sets, and implements the
:class:`~repro.core.partitioning.LoadView` protocol that partitioning
schemes consult. :class:`AdmissionController` is the decision half: it
runs the paper's two-step test (utilization, then processor demand) on
both links a candidate would traverse and either installs the channel or
reports a typed rejection.

Only the uplink of the source and the downlink of the destination are
affected by a candidate, so only those two links are re-tested -- all
other links keep their verdicts (feasibility of a link depends only on
the tasks assigned to it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, NamedTuple

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..netcalc.bounds import PathBound

from ..errors import (
    AdmissionError,
    ChannelParameterError,
    InfeasibleChannelError,
    PartitioningError,
    UnknownChannelError,
)
from .channel import ChannelSpec, ChannelState, DeadlinePartition, RTChannel
from .feasibility import FeasibilityReport, is_feasible
from .feasibility_cache import FeasibilityCache
from .partitioning import DeadlinePartitioningScheme, LoadView
from .task import LinkRef, LinkTask

__all__ = [
    "SystemState",
    "RejectionReason",
    "AdmissionDecision",
    "LinkSchedule",
    "AdmissionController",
]


@dataclass(slots=True)
class LinkSchedule:
    """The task set currently reserved on one link direction.

    A thin mutable container so that adding/removing a channel is O(1)
    amortized and the feasibility test can be handed a stable tuple.
    """

    link: LinkRef
    tasks: list[LinkTask] = field(default_factory=list)

    @property
    def load(self) -> int:
        """The paper's LinkLoad ``LL``: number of channels on this link."""
        return len(self.tasks)

    @property
    def reserved_utilization(self) -> Fraction:
        """Exact total utilization reserved on this link direction."""
        total = Fraction(0)
        for task in self.tasks:
            total += Fraction(task.capacity, task.period)
        return total

    def add(self, task: LinkTask) -> None:
        self.tasks.append(task)

    def remove_channel(self, channel_id: int) -> None:
        """Drop the task belonging to ``channel_id`` (exactly one exists)."""
        for index, task in enumerate(self.tasks):
            if task.channel_id == channel_id:
                del self.tasks[index]
                return
        raise UnknownChannelError(
            f"channel {channel_id} has no task on link {self.link}"
        )


class _CandidateLoadView:
    """LoadView overlay that counts a not-yet-admitted candidate channel.

    ADPS and friends must see the system *as if* the candidate were
    already present on its two links (Section 18.4.2's ratio is otherwise
    undefined for the first channel in an empty system).
    """

    def __init__(
        self,
        base: "SystemState",
        uplink: LinkRef,
        downlink: LinkRef,
        spec: ChannelSpec,
    ) -> None:
        self._base = base
        self._uplink = uplink
        self._downlink = downlink
        self._spec = spec

    def link_load(self, link: LinkRef) -> int:
        # Identity check first: LinkRefs are interned, and the schemes
        # overwhelmingly ask about the candidate's own two links.
        if link is self._uplink or link is self._downlink:
            return self._base.link_load(link) + 1
        bonus = 1 if link in (self._uplink, self._downlink) else 0
        return self._base.link_load(link) + bonus

    def link_utilization(self, link: LinkRef) -> Fraction:
        util = self._base.link_utilization(link)
        if link in (self._uplink, self._downlink):
            util += Fraction(self._spec.capacity, self._spec.period)
        return util


class SystemState:
    """The paper's ``SS = {N, K}`` plus derived per-link schedules.

    Parameters
    ----------
    nodes:
        Names of the end nodes connected to the switch. Channel requests
        between unknown nodes are rejected. Nodes can be added later with
        :meth:`add_node` (the paper allows dynamic systems).
    """

    def __init__(self, nodes: Iterable[str] = ()) -> None:
        self._nodes: set[str] = set()
        self._channels: dict[int, RTChannel] = {}
        self._schedules: dict[LinkRef, LinkSchedule] = {}
        for node in nodes:
            self.add_node(node)

    # -- node management ------------------------------------------------

    @property
    def nodes(self) -> frozenset[str]:
        """The node set ``N``."""
        return frozenset(self._nodes)

    def add_node(self, name: str) -> None:
        """Connect a node; idempotent."""
        if not name:
            raise ChannelParameterError("node name must be non-empty")
        self._nodes.add(name)

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    # -- channel bookkeeping ---------------------------------------------

    @property
    def channels(self) -> Mapping[int, RTChannel]:
        """The active channel set ``K``, keyed by channel ID (read-only)."""
        return dict(self._channels)

    def __len__(self) -> int:
        return len(self._channels)

    def __iter__(self) -> Iterator[RTChannel]:
        return iter(list(self._channels.values()))

    def channel(self, channel_id: int) -> RTChannel:
        try:
            return self._channels[channel_id]
        except KeyError:
            raise UnknownChannelError(
                f"no active RT channel with ID {channel_id}"
            ) from None

    def has_channel(self, channel_id: int) -> bool:
        """True while ``channel_id`` names a live (installed) channel."""
        return channel_id in self._channels

    def install(
        self,
        channel: RTChannel,
        pair: tuple[LinkTask, LinkTask] | None = None,
    ) -> None:
        """Add an admitted channel and its two supposed tasks.

        The channel must already carry a network-unique ID and a valid
        partition; :class:`AdmissionController` is the normal caller.
        ``pair`` lets a caller that already derived the channel's
        ``(T_iu, T_id)`` (the controller shares them with its cache)
        pass them in instead of deriving them again.
        """
        if channel.channel_id < 0:
            raise AdmissionError("cannot install a channel without an ID")
        if channel.channel_id in self._channels:
            raise AdmissionError(
                f"channel ID {channel.channel_id} is already active"
            )
        up, down = pair if pair is not None else LinkTask.pair_for_channel(
            channel
        )
        self._schedule_for(up.link).add(up)
        self._schedule_for(down.link).add(down)
        self._channels[channel.channel_id] = channel

    def release(self, channel_id: int) -> RTChannel:
        """Tear down a channel and return its reservation to the links."""
        channel = self.channel(channel_id)
        self._schedule_for(LinkRef.uplink(channel.source)).remove_channel(
            channel_id
        )
        self._schedule_for(
            LinkRef.downlink(channel.destination)
        ).remove_channel(channel_id)
        del self._channels[channel_id]
        channel.state = ChannelState.TORN_DOWN
        return channel

    # -- per-link views (LoadView protocol) --------------------------------

    def _schedule_for(self, link: LinkRef) -> LinkSchedule:
        schedule = self._schedules.get(link)
        if schedule is None:
            schedule = LinkSchedule(link=link)
            self._schedules[link] = schedule
        return schedule

    def tasks_on(self, link: LinkRef) -> tuple[LinkTask, ...]:
        """Immutable snapshot of the tasks reserved on ``link``."""
        schedule = self._schedules.get(link)
        return tuple(schedule.tasks) if schedule is not None else ()

    def link_load(self, link: LinkRef) -> int:
        """LinkLoad ``LL``: number of channels traversing ``link``."""
        schedule = self._schedules.get(link)
        return len(schedule.tasks) if schedule is not None else 0

    def link_utilization(self, link: LinkRef) -> Fraction:
        schedule = self._schedules.get(link)
        return (
            schedule.reserved_utilization
            if schedule is not None
            else Fraction(0)
        )

    def occupied_links(self) -> tuple[LinkRef, ...]:
        """Links that currently carry at least one channel."""
        return tuple(
            link
            for link, schedule in sorted(self._schedules.items())
            if schedule.load > 0
        )

    def with_candidate(
        self, source: str, destination: str, spec: ChannelSpec
    ) -> LoadView:
        """A LoadView that pretends the candidate is already installed."""
        return _CandidateLoadView(
            self,
            LinkRef.uplink(source),
            LinkRef.downlink(destination),
            spec,
        )

    def channel_delay_bounds(self) -> dict[int, "PathBound"]:
        """Network-calculus end-to-end bound per active channel.

        Independent of the EDF demand analysis that admitted the
        channels: every channel becomes a token bucket, every occupied
        link a rate-latency server, and the bound is the horizontal
        deviation against the uplink (x) downlink residual convolution
        with cross-traffic burstiness propagated through the switch
        (see :mod:`repro.netcalc.bounds`). Values are
        :class:`~repro.netcalc.bounds.PathBound` (slots, exact
        fractions); every admitted channel gets a finite bound because
        admitted links have ``U <= 1``.
        """
        from ..netcalc.bounds import network_delay_bounds

        flows = {
            channel_id: (
                LinkRef.uplink(channel.source),
                LinkRef.downlink(channel.destination),
            )
            for channel_id, channel in self._channels.items()
        }
        links = {link for path in flows.values() for link in path}
        return network_delay_bounds(
            flows, {link: self.tasks_on(link) for link in links}
        )


class RejectionReason(enum.Enum):
    """Why admission control refused a channel request."""

    #: Source or destination is not a connected node.
    UNKNOWN_NODE = "unknown-node"
    #: ``d < 2C``: no deadline partition can exist (Eq. 18.9).
    NOT_PARTITIONABLE = "not-partitionable"
    #: Some partition exists (Eq. 18.9 holds) but the DPS found no split
    #: under which both links stay feasible (e.g. a strict
    #: :class:`~repro.core.partitioning_ext.SearchDPS` exhausting its
    #: probes). Distinct from :attr:`NOT_PARTITIONABLE`, which is a
    #: property of the spec alone.
    NO_FEASIBLE_PARTITION = "no-feasible-partition"
    #: The uplink (source -> switch) failed the feasibility test.
    UPLINK_INFEASIBLE = "uplink-infeasible"
    #: The downlink (switch -> destination) failed the feasibility test.
    DOWNLINK_INFEASIBLE = "downlink-infeasible"
    #: The destination node declined the offered channel (signalling).
    DESTINATION_DECLINED = "destination-declined"


class AdmissionDecision(NamedTuple):
    """Complete record of one admission-control decision.

    One is built per request on the admission hot path, hence a
    NamedTuple (construction is measurably cheaper than a frozen
    dataclass and the record is immutable either way).

    Attributes
    ----------
    accepted:
        The verdict.
    channel:
        The installed channel on acceptance (with ID, partition and
        ``ACTIVE`` state); on rejection, the rejected candidate (terminal
        ``REJECTED`` state, no ID).
    reason:
        ``None`` on acceptance, a :class:`RejectionReason` otherwise.
    partition:
        The partition that was tested (``None`` when rejection happened
        before partitioning).
    uplink_report, downlink_report:
        Per-link feasibility evidence, when those tests ran.
    """

    accepted: bool
    channel: RTChannel
    reason: RejectionReason | None = None
    partition: DeadlinePartition | None = None
    uplink_report: FeasibilityReport | None = None
    downlink_report: FeasibilityReport | None = None

    def __bool__(self) -> bool:
        return self.accepted


class _Assessment(NamedTuple):
    """Pure (state-untouched) outcome of the decision procedure.

    ``reason is None`` means "would be accepted". Shared by
    :meth:`AdmissionController.request` (which then mutates) and
    :meth:`AdmissionController.preview` (which never does). One is
    built per non-memoized decision, so it is a NamedTuple rather than
    a dataclass (measurably cheaper to construct).
    """

    reason: RejectionReason | None
    partition: DeadlinePartition | None = None
    uplink_report: FeasibilityReport | None = None
    downlink_report: FeasibilityReport | None = None


#: Interned candidate tasks, keyed by ``(link, P, C, d)``. Admission
#: derives the same candidate ``LinkTask`` objects over and over (one
#: spec probed against the same link under a handful of partitions) and
#: the validating constructor is measurable on the hot path; interning
#: runs it once per distinct candidate. Safe because LinkTask is frozen
#: and the first construction still validates (Eq. 18.9 etc.). Bounded
#: by a wholesale clear at capacity.
_CANDIDATE_TASKS: dict[tuple[LinkRef, int, int, int], LinkTask] = {}
_CANDIDATE_TASKS_MAX = 1 << 15


def _candidate_task(
    link: LinkRef, period: int, capacity: int, deadline: int
) -> LinkTask:
    key = (link, period, capacity, deadline)
    task = _CANDIDATE_TASKS.get(key)
    if task is None:
        if len(_CANDIDATE_TASKS) >= _CANDIDATE_TASKS_MAX:
            _CANDIDATE_TASKS.clear()
        task = LinkTask(
            link=link, period=period, capacity=capacity, deadline=deadline
        )
        _CANDIDATE_TASKS[key] = task
    return task


class AdmissionController:
    """The switch's admit-or-reject logic over a :class:`SystemState`.

    Parameters
    ----------
    state:
        The system state to manage (shared with e.g. the simulator).
    dps:
        The deadline-partitioning scheme (SDPS, ADPS, ...). The scheme is
        consulted once per request with loads that include the candidate.
    use_cache:
        When True (the default), per-link feasibility is decided through
        the incremental :class:`~repro.core.feasibility_cache.FeasibilityCache`
        instead of re-running the from-scratch test on every request.
        The cached and from-scratch controllers produce identical
        decision streams (enforced by
        :mod:`repro.oracle.admission_diff`); ``use_cache=False`` keeps
        the reference path available for differential testing.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry`. When
        given, verdicts are counted into ``admission.decisions``
        (labelled by verdict) and ``admission.rejections`` (labelled by
        reason); without one the per-request telemetry cost is a single
        ``is not None`` check.

    Notes
    -----
    Channel IDs are assigned from a monotone counter starting at 1 (the
    wire value 0 means "not yet valid" in the RequestFrame) and never
    reused within one controller's lifetime, mirroring the 16-bit
    network-unique *RT channel ID* of the signalling frames. The
    controller raises :class:`AdmissionError` once the 16-bit space is
    exhausted, making the paper's field-width limit explicit instead of
    silently aliasing IDs. Only :meth:`request` consumes IDs --
    :meth:`preview` never advances the counter.

    All mutations of the shared :class:`SystemState` should go through
    this controller (or the state's own ``install``/``release``); the
    cache detects count-changing external mutations and resynchronizes,
    but a count-preserving swap of tasks behind its back is undefined.
    """

    MAX_CHANNEL_ID = 0xFFFF  # 16-bit field in Figures 18.3/18.4

    #: Assessment-memo capacity; cleared wholesale on overflow (the memo
    #: is a cache of pure results, so clearing is always correct).
    _ASSESS_MEMO_MAX = 8192

    def __init__(
        self,
        state: SystemState,
        dps: DeadlinePartitioningScheme,
        *,
        use_cache: bool = True,
        metrics=None,
    ) -> None:
        self._state = state
        self._dps = dps
        #: Whether the scheme actually overrides partition_with_probe;
        #: for plain schemes (SDPS/ADPS/...) the per-request probe
        #: closure and the delegating trampoline are skipped entirely.
        self._dps_probes = (
            type(dps).partition_with_probe
            is not DeadlinePartitioningScheme.partition_with_probe
        )
        self._cache = FeasibilityCache(state) if use_cache else None
        #: Whole-assessment memo, keyed by (source, destination, spec)
        #: and validated by the two endpoint links' cache epochs. Only
        #: used when the DPS declares itself ``local_only`` (the
        #: assessment is then a pure function of those two links).
        self._assess_memo: dict[
            tuple[str, str, ChannelSpec],
            tuple[int, int, _Assessment],
        ] = {}
        self._next_id = 1
        self.accept_count = 0
        self.reject_count = 0
        #: rejection histogram keyed by :class:`RejectionReason`.
        self.rejections_by_reason: dict[RejectionReason, int] = {}
        #: :meth:`admit_many` bursts processed and repeat-request
        #: decisions served from a burst-local template (plain ints so
        #: tests and benchmarks can read them without a registry).
        self.batch_count = 0
        self.batch_template_hits = 0
        # optional MetricsRegistry: pre-bound counter children so the
        # per-request cost is one attribute add (None = no telemetry)
        if metrics is not None:
            decisions = metrics.counter(
                "admission.decisions",
                help="admission verdicts",
                labels=("verdict",),
            )
            self._m_accepts = decisions.labels("accept")
            self._m_rejects = decisions.labels("reject")
            reasons = metrics.counter(
                "admission.rejections",
                help="rejections by reason",
                labels=("reason",),
            )
            self._m_reasons = {
                reason: reasons.labels(reason.value)
                for reason in RejectionReason
            }
            self._m_batches = metrics.counter(
                "admission.batches",
                help="admit_many bursts processed",
            ).labels()
            self._m_batch_hits = metrics.counter(
                "admission.batch_template_hits",
                help="burst-local repeat decisions served without re-assessment",
            ).labels()
        else:
            self._m_accepts = None
            self._m_rejects = None
            self._m_reasons = None
            self._m_batches = None
            self._m_batch_hits = None

    @property
    def state(self) -> SystemState:
        return self._state

    @property
    def dps(self) -> DeadlinePartitioningScheme:
        return self._dps

    @property
    def cache(self) -> FeasibilityCache | None:
        """The incremental fast path, or ``None`` for a reference
        (from-scratch) controller."""
        return self._cache

    @property
    def uses_cache(self) -> bool:
        return self._cache is not None

    def _count_rejection(self, reason: RejectionReason) -> None:
        self.reject_count += 1
        self.rejections_by_reason[reason] = (
            self.rejections_by_reason.get(reason, 0) + 1
        )
        if self._m_rejects is not None:
            self._m_rejects.inc()
            self._m_reasons[reason].inc()

    # -- core decision -----------------------------------------------------

    def _feasible_with(
        self,
        up_link: LinkRef,
        down_link: LinkRef,
        spec: ChannelSpec,
        partition: DeadlinePartition,
    ) -> tuple[FeasibilityReport, FeasibilityReport]:
        """Test both affected links with the candidate's tasks added."""
        up_task = _candidate_task(
            up_link, spec.period, spec.capacity, partition.uplink
        )
        down_task = _candidate_task(
            down_link, spec.period, spec.capacity, partition.downlink
        )
        if self._cache is not None:
            return self._cache.check(up_task), self._cache.check(down_task)
        up_report = is_feasible(list(self._state.tasks_on(up_link)) + [up_task])
        down_report = is_feasible(
            list(self._state.tasks_on(down_link)) + [down_task]
        )
        return up_report, down_report

    def _assess(
        self, source: str, destination: str, spec: ChannelSpec
    ) -> _Assessment:
        """Run the full decision procedure without mutating anything.

        Neither the system state, nor the counters, nor the ID stream
        are touched; :meth:`request` applies the side effects afterward
        and :meth:`preview` returns the assessment as-is.

        When the DPS is ``local_only`` and the cache is active, whole
        assessments are memoized per ``(source, destination, spec)`` and
        revalidated in O(1) against the two endpoint links' cache
        epochs: any install/release/resync on either link bumps its
        epoch and the stale entry simply misses. This makes the
        saturated tail of an acceptance sweep (the same rejected spec
        re-requested hundreds of times against unchanged links) a
        dictionary hit.

        The memo is validated with *guarded* epoch reads (``entry()``
        runs the drift check, so external state mutation bumps the
        epoch before the comparison) but *stored* with raw reads
        (:meth:`~repro.core.feasibility_cache.FeasibilityCache.epoch_of`):
        the assessment just computed was derived from the state those
        raw epochs stamp (its feasibility checks ran guarded), and a
        stamp that is stale relative to an un-noticed earlier drift can
        only make the entry miss on its next validation, never hit
        wrongly.
        """
        cache = self._cache
        if cache is None or not self._dps.local_only:
            return self._assess_uncached(source, destination, spec)
        # Pre-checks inlined (has_node is a measurable method call here,
        # and _decide below assumes they already ran).
        nodes = self._state._nodes
        if source not in nodes or destination not in nodes:
            return _Assessment(reason=RejectionReason.UNKNOWN_NODE)
        if not spec.is_partitionable():
            return _Assessment(reason=RejectionReason.NOT_PARTITIONABLE)
        up_link = LinkRef.uplink(source)
        down_link = LinkRef.downlink(destination)
        key = (source, destination, spec)
        hit = self._assess_memo.get(key)
        if (
            hit is not None
            and hit[0] == cache.entry(up_link).epoch
            and hit[1] == cache.entry(down_link).epoch
        ):
            return hit[2]
        assessment = self._decide(source, destination, spec, up_link, down_link)
        if len(self._assess_memo) >= self._ASSESS_MEMO_MAX:
            self._assess_memo.clear()
        self._assess_memo[key] = (
            cache.epoch_of(up_link),
            cache.epoch_of(down_link),
            assessment,
        )
        return assessment

    def _assess_uncached(
        self, source: str, destination: str, spec: ChannelSpec
    ) -> _Assessment:
        """The decision procedure with pre-checks (no memo consulted)."""
        nodes = self._state._nodes
        if source not in nodes or destination not in nodes:
            return _Assessment(reason=RejectionReason.UNKNOWN_NODE)
        if not spec.is_partitionable():
            return _Assessment(reason=RejectionReason.NOT_PARTITIONABLE)
        return self._decide(
            source,
            destination,
            spec,
            LinkRef.uplink(source),
            LinkRef.downlink(destination),
        )

    def _decide(
        self,
        source: str,
        destination: str,
        spec: ChannelSpec,
        up_link: LinkRef,
        down_link: LinkRef,
    ) -> _Assessment:
        """Partition choice plus per-link tests.

        Callers have already verified both nodes exist and the spec is
        partitionable (Eq. 18.9 on the end-to-end deadline), and pass in
        the two interned endpoint link refs they derived doing so.
        """
        loads = self._state.with_candidate(source, destination, spec)

        try:
            if self._dps_probes:

                def probe(partition: DeadlinePartition) -> bool:
                    up, down = self._feasible_with(
                        up_link, down_link, spec, partition
                    )
                    return up.feasible and down.feasible

                partition = self._dps.partition_with_probe(
                    source, destination, spec, loads, probe
                )
            else:
                partition = self._dps.partition(source, destination, spec, loads)
            partition.validate_for(spec)
        except PartitioningError:
            # The spec itself is partitionable (checked above), so this
            # is *not* Eq. 18.9 failing: the scheme searched and found no
            # split under which both links stay feasible (or produced an
            # invalid split). Miscounting it as NOT_PARTITIONABLE would
            # blame the spec for a load problem.
            return _Assessment(reason=RejectionReason.NO_FEASIBLE_PARTITION)

        up_report, down_report = self._feasible_with(
            up_link, down_link, spec, partition
        )
        if not up_report.feasible or not down_report.feasible:
            reason = (
                RejectionReason.UPLINK_INFEASIBLE
                if not up_report.feasible
                else RejectionReason.DOWNLINK_INFEASIBLE
            )
            return _Assessment(reason, partition, up_report, down_report)
        return _Assessment(None, partition, up_report, down_report)

    def _allocate_id(self) -> int:
        """Consume the next free channel ID, wrapping past the 16-bit limit.

        IDs are handed out in increasing order from a moving hint, so a
        run that never creates more than ``MAX_CHANNEL_ID`` channels
        sees the historical monotone sequence unchanged. Under churn
        (long-lived service, channels departing) the allocator wraps
        around and *skips live IDs* -- reusing a live ID would alias two
        channels in ``{N, K}`` and in every verdict/dedup cache keyed on
        it. Only when every ID in ``1..MAX_CHANNEL_ID`` is simultaneously
        live is the space genuinely exhausted.
        """
        span = self.MAX_CHANNEL_ID  # IDs 1..MAX (0 = "not set" on the wire)
        if len(self._state) >= span:
            raise AdmissionError(
                "exhausted the 16-bit RT channel ID space "
                f"(> {self.MAX_CHANNEL_ID} channels created)"
            )
        hint = self._next_id
        for offset in range(span):
            candidate = 1 + (hint - 1 + offset) % span
            if not self._state.has_channel(candidate):
                self._next_id = 1 + candidate % span
                return candidate
        raise AdmissionError(  # pragma: no cover - guarded by len() above
            "exhausted the 16-bit RT channel ID space "
            f"(> {self.MAX_CHANNEL_ID} channels created)"
        )

    def _install(self, channel: RTChannel) -> None:
        """Install into the cache first, then the shared state.

        Cache-first ordering keeps the drift guard's counts consistent
        during the two-step mutation; if the state install fails, the
        guard resynchronizes the affected links on the next access.
        """
        pair = LinkTask.pair_for_channel(channel)
        if self._cache is not None:
            self._cache.install(pair[0])
            self._cache.install(pair[1])
        self._state.install(channel, pair)

    def request(
        self, source: str, destination: str, spec: ChannelSpec
    ) -> AdmissionDecision:
        """Decide a channel request; install the channel on acceptance.

        Implements Section 18.2.2's switch-side behaviour minus the
        signalling (for the full handshake, including the destination's
        veto, see :mod:`repro.core.channel_manager`).
        """
        candidate = RTChannel(source=source, destination=destination, spec=spec)
        assessment = self._assess(source, destination, spec)
        if assessment.reason is not None:
            candidate.state = ChannelState.REJECTED
            self._count_rejection(assessment.reason)
            return AdmissionDecision(
                False,
                candidate,
                assessment.reason,
                assessment.partition,
                assessment.uplink_report,
                assessment.downlink_report,
            )
        candidate.channel_id = self._allocate_id()
        # Direct assignment instead of assign_partition(): _decide already
        # ran validate_for on this exact partition/spec pair, so the
        # trusted construction in LinkTask.pair_for_channel stays sound.
        candidate.partition = assessment.partition
        candidate.state = ChannelState.ACTIVE
        self._install(candidate)
        self.accept_count += 1
        if self._m_accepts is not None:
            self._m_accepts.inc()
        return AdmissionDecision(
            True,
            candidate,
            None,
            assessment.partition,
            assessment.uplink_report,
            assessment.downlink_report,
        )

    # -- batch engine ------------------------------------------------------

    def _batch_prefetch(
        self, requests: list[tuple[str, str, ChannelSpec]]
    ) -> None:
        """Warm per-link verdict memos for every distinct burst candidate.

        Groups the burst's candidate tasks by endpoint link and runs one
        pooled :meth:`~repro.core.feasibility_cache.FeasibilityCache.batch_check`
        per link, so the batched Eq. 18.3 demand evaluation covers the
        whole burst in a handful of vectorized passes. Semantically
        invisible: it only seeds the same memos a scalar check would
        create, against the current (pre-burst) state, and every entry
        is epoch-validated before reuse. Skipped for probing schemes
        (their partition choice is not known ahead of the probe loop)
        and without a cache.
        """
        cache = self._cache
        if cache is None or self._dps_probes or not self._dps.local_only:
            return
        nodes = self._state._nodes
        state = self._state
        dps = self._dps
        memo = self._assess_memo
        by_link: dict[LinkRef, list[LinkTask]] = {}
        #: key -> (up_link, down_link, partition, up index, down index)
        pending: dict[
            tuple[str, str, ChannelSpec],
            tuple[LinkRef, LinkRef, DeadlinePartition, int, int],
        ] = {}
        seen: set[tuple[str, str, ChannelSpec]] = set()
        for req in requests:
            key = req if type(req) is tuple else tuple(req)
            if key in seen:
                continue
            seen.add(key)
            try:
                source, destination, spec = key
            except ValueError:
                continue  # the replay raises identically, in order
            if (
                source not in nodes
                or destination not in nodes
                or source == destination
                or not isinstance(spec, ChannelSpec)
                or not spec.is_partitionable()
            ):
                continue
            up_link = LinkRef.uplink(source)
            down_link = LinkRef.downlink(destination)
            prior = memo.get(key)
            if (
                prior is not None
                and prior[0] == cache.entry(up_link).epoch
                and prior[1] == cache.entry(down_link).epoch
            ):
                continue  # still assessed against current link state
            loads = state.with_candidate(source, destination, spec)
            try:
                partition = dps.partition(source, destination, spec, loads)
                partition.validate_for(spec)
            except PartitioningError:
                continue
            ups = by_link.setdefault(up_link, [])
            downs = by_link.setdefault(down_link, [])
            pending[key] = (
                up_link, down_link, partition, len(ups), len(downs)
            )
            ups.append(
                _candidate_task(
                    up_link, spec.period, spec.capacity, partition.uplink
                )
            )
            downs.append(
                _candidate_task(
                    down_link, spec.period, spec.capacity, partition.downlink
                )
            )
        reports = {
            link: cache.batch_check(link, candidates)
            for link, candidates in by_link.items()
        }
        # Seed the whole-assessment memo from the pooled reports: for
        # each distinct candidate this stores exactly the (epoch-stamped)
        # _Assessment that _decide would produce against the pre-burst
        # state, so the replay's first encounter is a memo hit instead
        # of a second partition + per-link check pass. Entries whose
        # links change before their first use simply miss, like any
        # stale memo entry.
        memo = self._assess_memo
        if len(memo) + len(pending) > self._ASSESS_MEMO_MAX:
            return
        for key, (up_link, down_link, partition, i_up, i_down) in (
            pending.items()
        ):
            up_report = reports[up_link][i_up]
            down_report = reports[down_link][i_down]
            if not up_report.feasible or not down_report.feasible:
                reason = (
                    RejectionReason.UPLINK_INFEASIBLE
                    if not up_report.feasible
                    else RejectionReason.DOWNLINK_INFEASIBLE
                )
            else:
                reason = None
            memo[key] = (
                cache.epoch_of(up_link),
                cache.epoch_of(down_link),
                _Assessment(reason, partition, up_report, down_report),
            )

    def admit_many(
        self, requests: Iterable[tuple[str, str, ChannelSpec]]
    ) -> list[AdmissionDecision]:
        """Decide a burst of requests, in order, installing acceptances.

        Equivalent to ``[self.request(s, d, spec) for s, d, spec in
        requests]`` -- same decisions, same rejection reasons, same
        channel IDs, same final state and counters (the differential
        campaign ``repro admission-diff --batch`` and the Hypothesis
        property suite enforce stream equality) -- but amortized across
        the burst:

        * distinct candidates are prefetched through one pooled,
          vectorized ``h(n, t)`` evaluation per affected link
          (:meth:`_batch_prefetch`);
        * repeated *rejected* requests (the saturated tail of an
          acceptance sweep) are answered from a burst-local decision
          template, epoch-validated against the two endpoint links (an
          acceptance invalidates only templates that share a link with
          it), so the repeat path is one dict probe plus two integer
          compares instead of a full re-assessment -- repeats of an
          identical rejected request may therefore share one
          (immutable, value-equal) decision record;
        * accept/reject counters and telemetry are accumulated locally
          and flushed once per burst (in a ``finally``: if a request
          mid-burst raises, the already-decided prefix is still counted
          and installed exactly as the scalar loop would leave it, with
          zero overlay residue beyond it).

        Falls back to the plain scalar loop when there is no cache or
        the scheme is not ``local_only``.
        """
        requests = list(requests)
        cache = self._cache
        if cache is None or not self._dps.local_only:
            return [
                self.request(source, destination, spec)
                for source, destination, spec in requests
            ]
        self._batch_prefetch(requests)
        decisions: list[AdmissionDecision] = []
        append = decisions.append
        #: (source, destination, spec) -> (up_entry, up_epoch,
        #: down_entry, down_epoch, rejection decision, count cell).
        #: Validated like the assessment memo -- the decision is
        #: reusable while both endpoint links' epochs are unchanged --
        #: but against the *entry objects themselves* (two attribute
        #: loads, no guarded lookup). Safe only burst-locally: within
        #: one admit_many call the only mutations are our own installs,
        #: which bump epochs on these same objects; entries are never
        #: replaced mid-burst (resync requires external drift,
        #: impossible here). ``None`` entries mark decisions that do
        #: not depend on link state at all (unknown node /
        #: unpartitionable spec): nodes and specs are immutable during
        #: a burst, so those are always valid. The one-element count
        #: cell tallies how many decisions the record answered (fresh
        #: + template hits), so the hit path touches no dict of
        #: counters; ``records`` keeps every cell ever created,
        #: including superseded templates, for the flush below.
        templates: dict[
            tuple[str, str, ChannelSpec],
            tuple[object, int, object, int, AdmissionDecision, list[int]],
        ] = {}
        records: list[tuple[RejectionReason, list[int]]] = []
        accepts = 0
        fresh_done = 0
        try:
            for req in requests:
                key = req if type(req) is tuple else tuple(req)
                hit = templates.get(key)
                if hit is not None:
                    up_entry = hit[0]
                    if up_entry is None or (
                        up_entry.epoch == hit[1]
                        and hit[2].epoch == hit[3]
                    ):
                        hit[5][0] += 1
                        append(hit[4])
                        continue
                # Fresh path: identical, step for step, to request()
                # minus the counter updates (flushed below).
                source, destination, spec = key
                candidate = RTChannel(
                    source=source, destination=destination, spec=spec
                )
                assessment = self._assess(source, destination, spec)
                reason = assessment.reason
                if reason is not None:
                    candidate.state = ChannelState.REJECTED
                    decision = AdmissionDecision(
                        False,
                        candidate,
                        reason,
                        assessment.partition,
                        assessment.uplink_report,
                        assessment.downlink_report,
                    )
                    cell = [1]
                    records.append((reason, cell))
                    if (
                        reason is RejectionReason.UNKNOWN_NODE
                        or reason is RejectionReason.NOT_PARTITIONABLE
                    ):
                        templates[key] = (None, 0, None, 0, decision, cell)
                    else:
                        up_entry = cache.entry(LinkRef.uplink(source))
                        down_entry = cache.entry(
                            LinkRef.downlink(destination)
                        )
                        templates[key] = (
                            up_entry,
                            up_entry.epoch,
                            down_entry,
                            down_entry.epoch,
                            decision,
                            cell,
                        )
                    fresh_done += 1
                    append(decision)
                    continue
                candidate.channel_id = self._allocate_id()
                candidate.partition = assessment.partition
                candidate.state = ChannelState.ACTIVE
                self._install(candidate)
                accepts += 1
                fresh_done += 1
                append(
                    AdmissionDecision(
                        True,
                        candidate,
                        None,
                        assessment.partition,
                        assessment.uplink_report,
                        assessment.downlink_report,
                    )
                )
        finally:
            # Every cell increment pairs with exactly one appended
            # decision, so on a mid-burst exception the flushed
            # counters cover precisely the already-decided prefix --
            # the same totals the scalar loop would have left behind.
            template_hits = len(decisions) - fresh_done
            self.batch_count += 1
            self.batch_template_hits += template_hits
            self.accept_count += accepts
            rejections: dict[RejectionReason, int] = {}
            rejects = 0
            for reason, cell in records:
                count = cell[0]
                rejects += count
                rejections[reason] = rejections.get(reason, 0) + count
            for reason, count in rejections.items():
                self.rejections_by_reason[reason] = (
                    self.rejections_by_reason.get(reason, 0) + count
                )
            self.reject_count += rejects
            if self._m_accepts is not None:
                if accepts:
                    self._m_accepts.inc(accepts)
                if rejects:
                    self._m_rejects.inc(rejects)
                    for reason, count in rejections.items():
                        self._m_reasons[reason].inc(count)
                self._m_batches.inc()
                if template_hits:
                    self._m_batch_hits.inc(template_hits)
        return decisions

    def preview_many(
        self, requests: Iterable[tuple[str, str, ChannelSpec]]
    ) -> list[AdmissionDecision]:
        """Batch :meth:`preview`: decide a burst with zero side effects.

        Shares the non-mutating assessment seam with :meth:`preview` /
        :meth:`would_accept` (everything routes through :meth:`_assess`)
        and the prefetch stage with :meth:`admit_many`. Since nothing
        mutates during a preview, repeated requests are served from a
        plain burst-local memo; repeats may share one decision record.
        """
        requests = list(requests)
        if self._cache is not None and self._dps.local_only:
            self._batch_prefetch(requests)
        decisions: list[AdmissionDecision] = []
        memo: dict[tuple[str, str, ChannelSpec], AdmissionDecision] = {}
        for source, destination, spec in requests:
            key = (source, destination, spec)
            decision = memo.get(key)
            if decision is None:
                decision = self.preview(source, destination, spec)
                memo[key] = decision
            decisions.append(decision)
        return decisions

    def preview(
        self, source: str, destination: str, spec: ChannelSpec
    ) -> AdmissionDecision:
        """Decide a request without any side effect whatsoever.

        Runs the identical decision procedure as :meth:`request` but
        installs nothing, consumes no channel ID and touches no counter:
        the controller's serialized state is byte-identical before and
        after. On a would-be acceptance the returned channel stays in
        ``REQUESTED`` state with no ID (the partition that *would* be
        used is still reported); on a would-be rejection the candidate
        is marked ``REJECTED`` exactly as a real rejection would.
        """
        candidate = RTChannel(source=source, destination=destination, spec=spec)
        assessment = self._assess(source, destination, spec)
        if assessment.reason is not None:
            candidate.state = ChannelState.REJECTED
        return AdmissionDecision(
            assessment.reason is None,
            candidate,
            assessment.reason,
            assessment.partition,
            assessment.uplink_report,
            assessment.downlink_report,
        )

    def admit_or_raise(
        self, source: str, destination: str, spec: ChannelSpec
    ) -> RTChannel:
        """Like :meth:`request` but raises on rejection (convenience API)."""
        decision = self.request(source, destination, spec)
        if not decision.accepted:
            raise InfeasibleChannelError(
                f"channel {source}->{destination} {spec} rejected: "
                f"{decision.reason.value if decision.reason else 'unknown'}",
                decision=decision,
            )
        return decision.channel

    def would_accept(
        self, source: str, destination: str, spec: ChannelSpec
    ) -> bool:
        """Non-mutating feasibility preview of a request.

        Thin alias for :meth:`preview`. Unlike the historical
        implementation (which installed the channel and rolled it back,
        permanently consuming a 16-bit channel ID per accepted preview
        and leaving stale zero-count histogram keys), this touches no
        controller state at all.
        """
        return self.preview(source, destination, spec).accepted

    def release(self, channel_id: int) -> RTChannel:
        """Tear down an active channel, freeing its reservations."""
        if self._cache is not None:
            channel = self._state.channel(channel_id)
            # Cache first, state second (see _install for why).
            self._cache.release(
                LinkRef.uplink(channel.source), channel_id
            )
            self._cache.release(
                LinkRef.downlink(channel.destination), channel_id
            )
        return self._state.release(channel_id)
