"""Admission control over the system state (Sections 18.3 and 18.4).

The paper defines the **system state** ``SS = {N, K}`` -- the set of
connected nodes and the set of active RT channels -- and defines a
*feasible system* as one where every link is feasible. Adding a channel
is allowed exactly when the new state would still be feasible, which the
switch decides with per-link EDF analysis (:mod:`repro.core.feasibility`)
after the deadline-partitioning scheme
(:mod:`repro.core.partitioning`) has split the candidate's deadline.

:class:`SystemState` is the bookkeeping half: it tracks nodes, channels
and the per-link task sets, and implements the
:class:`~repro.core.partitioning.LoadView` protocol that partitioning
schemes consult. :class:`AdmissionController` is the decision half: it
runs the paper's two-step test (utilization, then processor demand) on
both links a candidate would traverse and either installs the channel or
reports a typed rejection.

Only the uplink of the source and the downlink of the destination are
affected by a candidate, so only those two links are re-tested -- all
other links keep their verdicts (feasibility of a link depends only on
the tasks assigned to it).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Iterator, Mapping

from ..errors import (
    AdmissionError,
    ChannelParameterError,
    InfeasibleChannelError,
    PartitioningError,
    UnknownChannelError,
)
from .channel import ChannelSpec, ChannelState, DeadlinePartition, RTChannel
from .feasibility import FeasibilityReport, is_feasible
from .partitioning import DeadlinePartitioningScheme, LoadView
from .task import LinkRef, LinkTask

__all__ = [
    "SystemState",
    "RejectionReason",
    "AdmissionDecision",
    "LinkSchedule",
    "AdmissionController",
]


@dataclass(slots=True)
class LinkSchedule:
    """The task set currently reserved on one link direction.

    A thin mutable container so that adding/removing a channel is O(1)
    amortized and the feasibility test can be handed a stable tuple.
    """

    link: LinkRef
    tasks: list[LinkTask] = field(default_factory=list)

    @property
    def load(self) -> int:
        """The paper's LinkLoad ``LL``: number of channels on this link."""
        return len(self.tasks)

    @property
    def reserved_utilization(self) -> Fraction:
        """Exact total utilization reserved on this link direction."""
        total = Fraction(0)
        for task in self.tasks:
            total += Fraction(task.capacity, task.period)
        return total

    def add(self, task: LinkTask) -> None:
        self.tasks.append(task)

    def remove_channel(self, channel_id: int) -> None:
        """Drop the task belonging to ``channel_id`` (exactly one exists)."""
        for index, task in enumerate(self.tasks):
            if task.channel_id == channel_id:
                del self.tasks[index]
                return
        raise UnknownChannelError(
            f"channel {channel_id} has no task on link {self.link}"
        )


class _CandidateLoadView:
    """LoadView overlay that counts a not-yet-admitted candidate channel.

    ADPS and friends must see the system *as if* the candidate were
    already present on its two links (Section 18.4.2's ratio is otherwise
    undefined for the first channel in an empty system).
    """

    def __init__(
        self,
        base: "SystemState",
        uplink: LinkRef,
        downlink: LinkRef,
        spec: ChannelSpec,
    ) -> None:
        self._base = base
        self._uplink = uplink
        self._downlink = downlink
        self._spec = spec

    def link_load(self, link: LinkRef) -> int:
        bonus = 1 if link in (self._uplink, self._downlink) else 0
        return self._base.link_load(link) + bonus

    def link_utilization(self, link: LinkRef) -> Fraction:
        util = self._base.link_utilization(link)
        if link in (self._uplink, self._downlink):
            util += Fraction(self._spec.capacity, self._spec.period)
        return util


class SystemState:
    """The paper's ``SS = {N, K}`` plus derived per-link schedules.

    Parameters
    ----------
    nodes:
        Names of the end nodes connected to the switch. Channel requests
        between unknown nodes are rejected. Nodes can be added later with
        :meth:`add_node` (the paper allows dynamic systems).
    """

    def __init__(self, nodes: Iterable[str] = ()) -> None:
        self._nodes: set[str] = set()
        self._channels: dict[int, RTChannel] = {}
        self._schedules: dict[LinkRef, LinkSchedule] = {}
        for node in nodes:
            self.add_node(node)

    # -- node management ------------------------------------------------

    @property
    def nodes(self) -> frozenset[str]:
        """The node set ``N``."""
        return frozenset(self._nodes)

    def add_node(self, name: str) -> None:
        """Connect a node; idempotent."""
        if not name:
            raise ChannelParameterError("node name must be non-empty")
        self._nodes.add(name)

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    # -- channel bookkeeping ---------------------------------------------

    @property
    def channels(self) -> Mapping[int, RTChannel]:
        """The active channel set ``K``, keyed by channel ID (read-only)."""
        return dict(self._channels)

    def __len__(self) -> int:
        return len(self._channels)

    def __iter__(self) -> Iterator[RTChannel]:
        return iter(list(self._channels.values()))

    def channel(self, channel_id: int) -> RTChannel:
        try:
            return self._channels[channel_id]
        except KeyError:
            raise UnknownChannelError(
                f"no active RT channel with ID {channel_id}"
            ) from None

    def install(self, channel: RTChannel) -> None:
        """Add an admitted channel and its two supposed tasks.

        The channel must already carry a network-unique ID and a valid
        partition; :class:`AdmissionController` is the normal caller.
        """
        if channel.channel_id < 0:
            raise AdmissionError("cannot install a channel without an ID")
        if channel.channel_id in self._channels:
            raise AdmissionError(
                f"channel ID {channel.channel_id} is already active"
            )
        up, down = LinkTask.pair_for_channel(channel)
        self._schedule_for(up.link).add(up)
        self._schedule_for(down.link).add(down)
        self._channels[channel.channel_id] = channel

    def release(self, channel_id: int) -> RTChannel:
        """Tear down a channel and return its reservation to the links."""
        channel = self.channel(channel_id)
        self._schedule_for(LinkRef.uplink(channel.source)).remove_channel(
            channel_id
        )
        self._schedule_for(
            LinkRef.downlink(channel.destination)
        ).remove_channel(channel_id)
        del self._channels[channel_id]
        channel.state = ChannelState.TORN_DOWN
        return channel

    # -- per-link views (LoadView protocol) --------------------------------

    def _schedule_for(self, link: LinkRef) -> LinkSchedule:
        schedule = self._schedules.get(link)
        if schedule is None:
            schedule = LinkSchedule(link=link)
            self._schedules[link] = schedule
        return schedule

    def tasks_on(self, link: LinkRef) -> tuple[LinkTask, ...]:
        """Immutable snapshot of the tasks reserved on ``link``."""
        schedule = self._schedules.get(link)
        return tuple(schedule.tasks) if schedule is not None else ()

    def link_load(self, link: LinkRef) -> int:
        """LinkLoad ``LL``: number of channels traversing ``link``."""
        schedule = self._schedules.get(link)
        return schedule.load if schedule is not None else 0

    def link_utilization(self, link: LinkRef) -> Fraction:
        schedule = self._schedules.get(link)
        return (
            schedule.reserved_utilization
            if schedule is not None
            else Fraction(0)
        )

    def occupied_links(self) -> tuple[LinkRef, ...]:
        """Links that currently carry at least one channel."""
        return tuple(
            link
            for link, schedule in sorted(self._schedules.items())
            if schedule.load > 0
        )

    def with_candidate(
        self, source: str, destination: str, spec: ChannelSpec
    ) -> LoadView:
        """A LoadView that pretends the candidate is already installed."""
        return _CandidateLoadView(
            self,
            LinkRef.uplink(source),
            LinkRef.downlink(destination),
            spec,
        )


class RejectionReason(enum.Enum):
    """Why admission control refused a channel request."""

    #: Source or destination is not a connected node.
    UNKNOWN_NODE = "unknown-node"
    #: ``d < 2C``: no deadline partition can exist (Eq. 18.9).
    NOT_PARTITIONABLE = "not-partitionable"
    #: The uplink (source -> switch) failed the feasibility test.
    UPLINK_INFEASIBLE = "uplink-infeasible"
    #: The downlink (switch -> destination) failed the feasibility test.
    DOWNLINK_INFEASIBLE = "downlink-infeasible"
    #: The destination node declined the offered channel (signalling).
    DESTINATION_DECLINED = "destination-declined"


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """Complete record of one admission-control decision.

    Attributes
    ----------
    accepted:
        The verdict.
    channel:
        The installed channel on acceptance (with ID, partition and
        ``ACTIVE`` state); on rejection, the rejected candidate (terminal
        ``REJECTED`` state, no ID).
    reason:
        ``None`` on acceptance, a :class:`RejectionReason` otherwise.
    partition:
        The partition that was tested (``None`` when rejection happened
        before partitioning).
    uplink_report, downlink_report:
        Per-link feasibility evidence, when those tests ran.
    """

    accepted: bool
    channel: RTChannel
    reason: RejectionReason | None = None
    partition: DeadlinePartition | None = None
    uplink_report: FeasibilityReport | None = None
    downlink_report: FeasibilityReport | None = None

    def __bool__(self) -> bool:
        return self.accepted


class AdmissionController:
    """The switch's admit-or-reject logic over a :class:`SystemState`.

    Parameters
    ----------
    state:
        The system state to manage (shared with e.g. the simulator).
    dps:
        The deadline-partitioning scheme (SDPS, ADPS, ...). The scheme is
        consulted once per request with loads that include the candidate.

    Notes
    -----
    Channel IDs are assigned from a monotone counter starting at 1 (the
    wire value 0 means "not yet valid" in the RequestFrame) and never
    reused within one controller's lifetime, mirroring the 16-bit
    network-unique *RT channel ID* of the signalling frames. The
    controller raises :class:`AdmissionError` once the 16-bit space is
    exhausted, making the paper's field-width limit explicit instead of
    silently aliasing IDs.
    """

    MAX_CHANNEL_ID = 0xFFFF  # 16-bit field in Figures 18.3/18.4

    def __init__(
        self, state: SystemState, dps: DeadlinePartitioningScheme
    ) -> None:
        self._state = state
        self._dps = dps
        self._next_id = itertools.count(1)
        self.accept_count = 0
        self.reject_count = 0
        #: rejection histogram keyed by :class:`RejectionReason`.
        self.rejections_by_reason: dict[RejectionReason, int] = {}

    @property
    def state(self) -> SystemState:
        return self._state

    @property
    def dps(self) -> DeadlinePartitioningScheme:
        return self._dps

    def _count_rejection(self, reason: RejectionReason) -> None:
        self.reject_count += 1
        self.rejections_by_reason[reason] = (
            self.rejections_by_reason.get(reason, 0) + 1
        )

    # -- core decision -----------------------------------------------------

    def _feasible_with(
        self,
        source: str,
        destination: str,
        spec: ChannelSpec,
        partition: DeadlinePartition,
    ) -> tuple[FeasibilityReport, FeasibilityReport]:
        """Test both affected links with the candidate's tasks added."""
        up_link = LinkRef.uplink(source)
        down_link = LinkRef.downlink(destination)
        up_task = LinkTask(
            link=up_link,
            period=spec.period,
            capacity=spec.capacity,
            deadline=partition.uplink,
        )
        down_task = LinkTask(
            link=down_link,
            period=spec.period,
            capacity=spec.capacity,
            deadline=partition.downlink,
        )
        up_report = is_feasible(list(self._state.tasks_on(up_link)) + [up_task])
        down_report = is_feasible(
            list(self._state.tasks_on(down_link)) + [down_task]
        )
        return up_report, down_report

    def request(
        self, source: str, destination: str, spec: ChannelSpec
    ) -> AdmissionDecision:
        """Decide a channel request; install the channel on acceptance.

        Implements Section 18.2.2's switch-side behaviour minus the
        signalling (for the full handshake, including the destination's
        veto, see :mod:`repro.core.channel_manager`).
        """
        candidate = RTChannel(source=source, destination=destination, spec=spec)

        if not (
            self._state.has_node(source) and self._state.has_node(destination)
        ):
            candidate.state = ChannelState.REJECTED
            self._count_rejection(RejectionReason.UNKNOWN_NODE)
            return AdmissionDecision(
                accepted=False,
                channel=candidate,
                reason=RejectionReason.UNKNOWN_NODE,
            )

        if not spec.is_partitionable():
            candidate.state = ChannelState.REJECTED
            self._count_rejection(RejectionReason.NOT_PARTITIONABLE)
            return AdmissionDecision(
                accepted=False,
                channel=candidate,
                reason=RejectionReason.NOT_PARTITIONABLE,
            )

        loads = self._state.with_candidate(source, destination, spec)

        def probe(partition: DeadlinePartition) -> bool:
            up, down = self._feasible_with(source, destination, spec, partition)
            return up.feasible and down.feasible

        try:
            partition = self._dps.partition_with_probe(
                source, destination, spec, loads, probe
            )
            partition.validate_for(spec)
        except PartitioningError:
            candidate.state = ChannelState.REJECTED
            self._count_rejection(RejectionReason.NOT_PARTITIONABLE)
            return AdmissionDecision(
                accepted=False,
                channel=candidate,
                reason=RejectionReason.NOT_PARTITIONABLE,
            )

        up_report, down_report = self._feasible_with(
            source, destination, spec, partition
        )
        if not up_report.feasible or not down_report.feasible:
            candidate.state = ChannelState.REJECTED
            reason = (
                RejectionReason.UPLINK_INFEASIBLE
                if not up_report.feasible
                else RejectionReason.DOWNLINK_INFEASIBLE
            )
            self._count_rejection(reason)
            return AdmissionDecision(
                accepted=False,
                channel=candidate,
                reason=reason,
                partition=partition,
                uplink_report=up_report,
                downlink_report=down_report,
            )

        channel_id = next(self._next_id)
        if channel_id > self.MAX_CHANNEL_ID:
            raise AdmissionError(
                "exhausted the 16-bit RT channel ID space "
                f"(> {self.MAX_CHANNEL_ID} channels created)"
            )
        candidate.channel_id = channel_id
        candidate.assign_partition(partition)
        candidate.state = ChannelState.ACTIVE
        self._state.install(candidate)
        self.accept_count += 1
        return AdmissionDecision(
            accepted=True,
            channel=candidate,
            partition=partition,
            uplink_report=up_report,
            downlink_report=down_report,
        )

    def admit_or_raise(
        self, source: str, destination: str, spec: ChannelSpec
    ) -> RTChannel:
        """Like :meth:`request` but raises on rejection (convenience API)."""
        decision = self.request(source, destination, spec)
        if not decision.accepted:
            raise InfeasibleChannelError(
                f"channel {source}->{destination} {spec} rejected: "
                f"{decision.reason.value if decision.reason else 'unknown'}",
                decision=decision,
            )
        return decision.channel

    def would_accept(
        self, source: str, destination: str, spec: ChannelSpec
    ) -> bool:
        """Non-mutating feasibility preview of a request.

        Runs the identical decision procedure but rolls back the
        installation, leaving state and counters untouched.
        """
        decision = self.request(source, destination, spec)
        if decision.accepted:
            self._state.release(decision.channel.channel_id)
            self.accept_count -= 1
        else:
            self.reject_count -= 1
            if decision.reason is not None:
                self.rejections_by_reason[decision.reason] -= 1
        return decision.accepted

    def release(self, channel_id: int) -> RTChannel:
        """Tear down an active channel, freeing its reservations."""
        return self._state.release(channel_id)
