"""Unit tests for per-link and end-to-end network-calculus bounds."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import ConfigurationError
from repro.netcalc import (
    PathBound,
    link_delay_bound,
    link_residual_service,
    network_delay_bounds,
    path_bound_ns,
)

from ..conftest import make_tasks


class TestLinkResidual:
    def test_lone_task_gets_full_link(self):
        tasks = make_tasks([(10, 3, 10)])
        residual = link_residual_service(tasks, 0)
        assert residual.rate == 1
        assert residual.latency == 1  # non-preemption blocking slot

    def test_cross_traffic_shrinks_rate_and_grows_latency(self):
        tasks = make_tasks([(10, 3, 10), (10, 2, 10)])
        residual = link_residual_service(tasks, 0)
        assert residual.rate == 1 - Fraction(2, 10)
        # (R*T + b_c) / (R - r_c) = (1 + 2) / (4/5)
        assert residual.latency == Fraction(3) / Fraction(4, 5)

    def test_unknown_channel_rejected(self):
        with pytest.raises(ConfigurationError):
            link_residual_service(make_tasks([(10, 1, 10)]), 99)

    def test_saturating_cross_traffic_yields_none(self):
        tasks = make_tasks([(10, 3, 10), (2, 2, 2)])  # cross rate = 1
        assert link_residual_service(tasks, 0) is None
        assert link_delay_bound(tasks, 0) is None

    def test_full_utilization_still_finite(self):
        # U exactly 1: each flow's cross rate < 1, bounds exist.
        tasks = make_tasks([(10, 5, 10), (10, 5, 10)])
        assert link_delay_bound(tasks, 0) is not None
        assert link_delay_bound(tasks, 1) is not None

    def test_lone_task_bound_is_blocking_plus_capacity(self):
        assert link_delay_bound(make_tasks([(100, 3, 40)]), 0) == 4
        assert link_delay_bound(
            make_tasks([(100, 3, 40)]), 0, blocking_frames=0
        ) == 3


class TestNetworkBounds:
    def test_single_flow_two_hops(self):
        tasks = make_tasks([(100, 3, 40)])
        bounds = network_delay_bounds(
            {0: ("up", "down")}, {"up": tasks, "down": tasks}
        )
        bound = bounds[0]
        assert isinstance(bound, PathBound)
        assert bound.hops == 2
        # convolved: rate 1, latency 1+1; pay the burst once: + C
        assert bound.bound_slots == 5
        assert bound.hop_bound_slots(0) == 4

    def test_pay_bursts_only_once_beats_per_hop_sum(self):
        tasks = make_tasks([(100, 3, 40)])
        bounds = network_delay_bounds(
            {0: ("a", "b", "c")}, {k: tasks for k in "abc"}
        )
        bound = bounds[0]
        per_hop_sum = sum(
            bound.hop_bound_slots(i) for i in range(bound.hops)
        )
        assert bound.bound_slots < per_hop_sum

    def test_cross_burst_is_propagated_downstream(self):
        # Flow 1 crosses its own uplink before sharing flow 0's second
        # link, so its burst there must exceed its source burst C=2 --
        # making flow 0's bound strictly worse than a (naive, unsound)
        # source-burst computation would claim.
        uplink0 = make_tasks([(10, 1, 10)], node="u0")
        uplink1 = make_tasks([(10, 2, 10)], node="u1")
        uplink1 = [t.__class__(
            link=t.link, period=t.period, capacity=t.capacity,
            deadline=t.deadline, channel_id=1,
        ) for t in uplink1]
        shared = uplink0 + uplink1
        flows = {0: ("u0", "shared"), 1: ("u1", "shared")}
        bounds = network_delay_bounds(
            flows, {"u0": uplink0, "u1": uplink1, "shared": shared}
        )
        naive_cross_bound = link_delay_bound(shared, 0)
        assert bounds[0].bound_slots > naive_cross_bound

    def test_unknown_channel_on_link_rejected(self):
        tasks = make_tasks([(10, 1, 10), (10, 1, 10)])
        with pytest.raises(ConfigurationError):
            network_delay_bounds({0: ("up",)}, {"up": tasks})

    def test_empty_path_rejected(self):
        with pytest.raises(ConfigurationError):
            network_delay_bounds({0: ()}, {})

    def test_overloaded_flow_is_skipped_not_crashed(self):
        tasks = make_tasks([(10, 6, 10), (10, 6, 10)])  # U = 1.2
        bounds = network_delay_bounds(
            {0: ("up",), 1: ("up",)}, {"up": tasks}
        )
        assert bounds == {}


class TestPathBoundNs:
    def test_exact_and_fractional_conversion(self):
        bound = PathBound(
            channel_id=0, capacity=1, hops=2,
            hop_latencies=(Fraction(1), Fraction(1)),
            hop_rates=(Fraction(1), Fraction(1)),
            bound_slots=Fraction(5),
        )
        assert path_bound_ns(bound, 1000, 10, 7) == 5027
        fractional = PathBound(
            channel_id=0, capacity=1, hops=1,
            hop_latencies=(Fraction(1),), hop_rates=(Fraction(1),),
            bound_slots=Fraction(1, 3),
        )
        # ceil(1000/3) + 10 = 334 + 10: rounding is always upward
        assert path_bound_ns(fractional, 1000, 10, 7) == 344
