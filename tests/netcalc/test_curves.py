"""Unit tests for the exact min-plus curve algebra."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import ConfigurationError
from repro.netcalc import (
    RateLatency,
    Staircase,
    TokenBucket,
    horizontal_deviation,
)


class TestTokenBucket:
    def test_from_task_is_capacity_and_rate(self):
        bucket = TokenBucket.from_task(3, 100)
        assert bucket.burst == 3
        assert bucket.rate == Fraction(3, 100)

    def test_value_is_zero_at_origin(self):
        bucket = TokenBucket(burst=5, rate=Fraction(1, 2))
        assert bucket.value(0) == 0
        assert bucket.value(4) == 7

    def test_aggregation_adds_bursts_and_rates(self):
        total = TokenBucket.from_task(2, 10) + TokenBucket.from_task(3, 20)
        assert total.burst == 5
        assert total.rate == Fraction(2, 10) + Fraction(3, 20)

    def test_floats_are_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(burst=1.5, rate=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(burst=1, rate=1).value(0.5)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(burst=-1, rate=0)
        with pytest.raises(ConfigurationError):
            TokenBucket.from_task(0, 10)


class TestStaircase:
    def test_value_is_exact_ceiling(self):
        stairs = Staircase(capacity=3, period=10)
        assert stairs.value(0) == 0
        assert stairs.value(1) == 3
        assert stairs.value(10) == 3
        assert stairs.value(Fraction(101, 10)) == 6
        assert stairs.value(20) == 6

    def test_hull_dominates_staircase(self):
        stairs = Staircase(capacity=3, period=10)
        hull = stairs.token_bucket_hull()
        for t in (0, 1, Fraction(7, 3), 10, 15, 20, 33):
            assert stairs.value(t) <= hull.value(t)
        # the hull is tight: the gap vanishes just after each step
        epsilon = Fraction(1, 1000)
        gap = hull.value(10 + epsilon) - stairs.value(10 + epsilon)
        assert gap == hull.rate * epsilon

    def test_staircase_strictly_tighter_between_steps(self):
        stairs = Staircase(capacity=3, period=10)
        hull = stairs.token_bucket_hull()
        assert stairs.value(5) < hull.value(5)


class TestRateLatency:
    def test_value(self):
        service = RateLatency(rate=Fraction(1, 2), latency=4)
        assert service.value(4) == 0
        assert service.value(8) == 2

    def test_convolution_min_rate_sum_latency(self):
        a = RateLatency(rate=1, latency=2)
        b = RateLatency(rate=Fraction(1, 3), latency=5)
        c = a.convolve(b)
        assert c.rate == Fraction(1, 3)
        assert c.latency == 7

    def test_residual_formula(self):
        # R=1, T=1; cross (b=2, r=1/2) -> R'=1/2, T'=(1*1+2)/(1/2)=6
        service = RateLatency(rate=1, latency=1)
        residual = service.residual(TokenBucket(burst=2, rate=Fraction(1, 2)))
        assert residual == RateLatency(rate=Fraction(1, 2), latency=6)

    def test_residual_none_when_cross_saturates(self):
        service = RateLatency(rate=1, latency=0)
        assert service.residual(TokenBucket(burst=1, rate=1)) is None
        assert service.residual(TokenBucket(burst=0, rate=2)) is None

    def test_output_burst_grows_by_rate_times_latency(self):
        service = RateLatency(rate=1, latency=4)
        arrival = TokenBucket(burst=3, rate=Fraction(1, 2))
        assert service.output_burst(arrival) == 5


class TestHorizontalDeviation:
    def test_token_bucket_bound(self):
        bound = horizontal_deviation(
            TokenBucket(burst=3, rate=Fraction(1, 10)),
            RateLatency(rate=Fraction(1, 2), latency=5),
        )
        assert bound == 5 + Fraction(3) / Fraction(1, 2)

    def test_unbounded_when_rate_exceeds_service(self):
        assert horizontal_deviation(
            TokenBucket(burst=1, rate=2), RateLatency(rate=1, latency=0)
        ) is None

    def test_bounded_at_exact_rate_match(self):
        # r == R: backlog never drains below the burst, but the bound
        # T + b/R is still finite (and tight).
        bound = horizontal_deviation(
            TokenBucket(burst=4, rate=1), RateLatency(rate=1, latency=2)
        )
        assert bound == 6

    def test_staircase_matches_bucket_hull(self):
        stairs = Staircase(capacity=3, period=10)
        service = RateLatency(rate=Fraction(1, 2), latency=7)
        assert horizontal_deviation(stairs, service) == horizontal_deviation(
            stairs.token_bucket_hull(), service
        )

    def test_rejects_unknown_curve_type(self):
        with pytest.raises(ConfigurationError):
            horizontal_deviation(object(), RateLatency(rate=1, latency=0))
