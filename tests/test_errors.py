"""Tests for the exception hierarchy contract.

Callers rely on two properties: every deliberate failure derives from
ReproError, and the dual-inheritance classes (ValueError/KeyError/
RuntimeError mixins) remain catchable by their builtin bases.
"""

from __future__ import annotations

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.ChannelParameterError,
    errors.PartitioningError,
    errors.AdmissionError,
    errors.InfeasibleChannelError,
    errors.UnknownChannelError,
    errors.ProtocolError,
    errors.CodecError,
    errors.FieldRangeError,
    errors.SimulationError,
    errors.SchedulingError,
    errors.TopologyError,
    errors.RoutingError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_everything_derives_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_builtin_mixins():
    assert issubclass(errors.ConfigurationError, ValueError)
    assert issubclass(errors.ChannelParameterError, ValueError)
    assert issubclass(errors.PartitioningError, ValueError)
    assert issubclass(errors.CodecError, ValueError)
    assert issubclass(errors.UnknownChannelError, KeyError)
    assert issubclass(errors.SimulationError, RuntimeError)


def test_specialization_chains():
    assert issubclass(errors.ChannelParameterError, errors.ConfigurationError)
    assert issubclass(errors.FieldRangeError, errors.CodecError)
    assert issubclass(errors.SchedulingError, errors.SimulationError)
    assert issubclass(errors.RoutingError, errors.TopologyError)
    assert issubclass(errors.InfeasibleChannelError, errors.AdmissionError)


def test_infeasible_channel_error_carries_decision():
    exc = errors.InfeasibleChannelError("nope", decision={"k": 1})
    assert exc.decision == {"k": 1}
    bare = errors.InfeasibleChannelError("nope")
    assert bare.decision is None


def test_catching_repro_error_catches_all():
    for exc in ALL_ERRORS:
        with pytest.raises(errors.ReproError):
            raise exc("boom")
