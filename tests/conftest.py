"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.channel import ChannelSpec
from repro.core.task import LinkRef, LinkTask


@pytest.fixture
def paper_spec() -> ChannelSpec:
    """The exact Figure 18.5 channel parameters."""
    return ChannelSpec(period=100, capacity=3, deadline=40)


@pytest.fixture
def uplink() -> LinkRef:
    return LinkRef.uplink("n0")


def make_tasks(
    params: list[tuple[int, int, int]], node: str = "n0"
) -> list[LinkTask]:
    """Build a task set from (period, capacity, deadline) triples."""
    link = LinkRef.uplink(node)
    return [
        LinkTask(link=link, period=p, capacity=c, deadline=d, channel_id=i)
        for i, (p, c, d) in enumerate(params)
    ]
