"""Tests for the best-effort injectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partitioning import SymmetricDPS
from repro.errors import ConfigurationError
from repro.network.topology import build_star
from repro.traffic.besteffort import BestEffortInjector


def make_net():
    return build_star(["a", "b", "c"], dps=SymmetricDPS())


class TestSaturatingInjector:
    def test_keeps_link_busy(self):
        net = make_net()
        injector = BestEffortInjector(
            sim=net.sim, node=net.nodes["a"], destinations=["b", "c"]
        )
        injector.start()
        horizon = 50 * net.phy.slot_ns
        net.sim.run(until=horizon)
        injector.stop()
        net.sim.run(until=horizon + 5 * net.phy.slot_ns)
        # ~50 slots of wall clock should deliver ~48+ max frames.
        assert net.metrics.be_frames_delivered >= 40
        assert injector.frames_offered >= net.metrics.be_frames_delivered

    def test_round_robin_destinations(self):
        net = make_net()
        injector = BestEffortInjector(
            sim=net.sim, node=net.nodes["a"], destinations=["b", "c"]
        )
        injector.start()
        net.sim.run(until=20 * net.phy.slot_ns)
        injector.stop()
        net.sim.run(until=25 * net.phy.slot_ns)
        received_b = net.nodes["b"].frames_received
        received_c = net.nodes["c"].frames_received
        assert received_b > 0 and received_c > 0
        assert abs(received_b - received_c) <= 2

    def test_start_is_idempotent(self):
        net = make_net()
        injector = BestEffortInjector(
            sim=net.sim, node=net.nodes["a"], destinations=["b"]
        )
        injector.start()
        injector.start()
        net.sim.run(until=5 * net.phy.slot_ns)
        injector.stop()


class TestPoissonInjector:
    def test_offered_load_roughly_respected(self):
        net = make_net()
        injector = BestEffortInjector(
            sim=net.sim,
            node=net.nodes["a"],
            destinations=["b"],
            mode="poisson",
            offered_load=0.5,
            rng=np.random.default_rng(3),
        )
        injector.start()
        slots = 400
        net.sim.run(until=slots * net.phy.slot_ns)
        injector.stop()
        net.sim.run(until=(slots + 10) * net.phy.slot_ns)
        # 0.5 load over 400 slots ~ 200 frames; accept wide tolerance.
        assert 120 <= injector.frames_offered <= 280

    def test_poisson_requires_rng(self):
        net = make_net()
        with pytest.raises(ConfigurationError):
            BestEffortInjector(
                sim=net.sim,
                node=net.nodes["a"],
                destinations=["b"],
                mode="poisson",
            )


class TestValidation:
    def test_invalid_mode(self):
        net = make_net()
        with pytest.raises(ConfigurationError):
            BestEffortInjector(
                sim=net.sim, node=net.nodes["a"], destinations=["b"],
                mode="burst",
            )

    def test_empty_destinations(self):
        net = make_net()
        with pytest.raises(ConfigurationError):
            BestEffortInjector(
                sim=net.sim, node=net.nodes["a"], destinations=[]
            )

    def test_invalid_offered_load(self):
        net = make_net()
        with pytest.raises(ConfigurationError):
            BestEffortInjector(
                sim=net.sim, node=net.nodes["a"], destinations=["b"],
                mode="poisson", offered_load=0,
                rng=np.random.default_rng(1),
            )
