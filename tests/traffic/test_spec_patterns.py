"""Tests for spec samplers and request-pattern generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.channel import ChannelSpec
from repro.errors import ConfigurationError
from repro.traffic.patterns import (
    funnel_requests,
    hotspot_requests,
    master_slave_names,
    master_slave_requests,
    uniform_requests,
)
from repro.traffic.spec import (
    FixedSpecSampler,
    HarmonicSpecSampler,
    UniformSpecSampler,
)


def rng():
    return np.random.default_rng(1234)


class TestFixedSpecSampler:
    def test_paper_default(self):
        sampler = FixedSpecSampler.paper_default()
        spec = sampler.sample(rng())
        assert (spec.period, spec.capacity, spec.deadline) == (100, 3, 40)

    def test_always_same(self):
        sampler = FixedSpecSampler(ChannelSpec(50, 2, 20))
        generator = rng()
        assert all(
            sampler.sample(generator) == ChannelSpec(50, 2, 20)
            for _ in range(10)
        )


class TestUniformSpecSampler:
    def test_within_ranges_and_valid(self):
        sampler = UniformSpecSampler(
            period_range=(50, 200),
            capacity_range=(1, 10),
            deadline_range=(5, 100),
        )
        generator = rng()
        for _ in range(200):
            spec = sampler.sample(generator)
            assert 50 <= spec.period <= 200
            assert 1 <= spec.capacity <= 10
            assert spec.capacity <= spec.period
            assert spec.deadline >= 2 * spec.capacity  # partitionable floor

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ConfigurationError):
            UniformSpecSampler((0, 10), (1, 2), (1, 5))
        with pytest.raises(ConfigurationError):
            UniformSpecSampler((10, 5), (1, 2), (1, 5))


class TestHarmonicSpecSampler:
    def test_periods_from_set(self):
        sampler = HarmonicSpecSampler(periods=(50, 100, 200))
        generator = rng()
        for _ in range(100):
            spec = sampler.sample(generator)
            assert spec.period in (50, 100, 200)
            assert spec.deadline >= 2 * spec.capacity

    def test_non_harmonic_rejected(self):
        with pytest.raises(ConfigurationError, match="harmonic"):
            HarmonicSpecSampler(periods=(50, 75))

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            HarmonicSpecSampler(deadline_fraction=0)


class TestMasterSlave:
    def test_names(self):
        masters, slaves = master_slave_names(2, 3)
        assert masters == ["m0", "m1"]
        assert slaves == ["s0", "s1", "s2"]
        with pytest.raises(ConfigurationError):
            master_slave_names(0, 3)

    def test_all_master_to_slave_by_default(self):
        masters, slaves = master_slave_names(3, 10)
        requests = master_slave_requests(
            masters, slaves, 50, FixedSpecSampler.paper_default(), rng()
        )
        assert len(requests) == 50
        for request in requests:
            assert request.source in masters
            assert request.destination in slaves

    def test_reverse_fraction(self):
        masters, slaves = master_slave_names(3, 10)
        requests = master_slave_requests(
            masters,
            slaves,
            200,
            FixedSpecSampler.paper_default(),
            rng(),
            master_to_slave_fraction=0.0,
        )
        for request in requests:
            assert request.source in slaves
            assert request.destination in masters

    def test_mixed_fraction_has_both_directions(self):
        masters, slaves = master_slave_names(3, 10)
        requests = master_slave_requests(
            masters,
            slaves,
            300,
            FixedSpecSampler.paper_default(),
            rng(),
            master_to_slave_fraction=0.5,
        )
        m2s = sum(r.source in masters for r in requests)
        assert 0 < m2s < 300

    def test_invalid_fraction_rejected(self):
        masters, slaves = master_slave_names(1, 1)
        with pytest.raises(ConfigurationError):
            master_slave_requests(
                masters, slaves, 5, FixedSpecSampler.paper_default(), rng(),
                master_to_slave_fraction=1.5,
            )

    def test_reproducible_for_same_seed(self):
        masters, slaves = master_slave_names(3, 10)
        sampler = FixedSpecSampler.paper_default()
        a = master_slave_requests(
            masters, slaves, 20, sampler, np.random.default_rng(7)
        )
        b = master_slave_requests(
            masters, slaves, 20, sampler, np.random.default_rng(7)
        )
        assert a == b


class TestUniform:
    def test_no_self_loops(self):
        nodes = [f"n{i}" for i in range(5)]
        requests = uniform_requests(
            nodes, 300, FixedSpecSampler.paper_default(), rng()
        )
        assert all(r.source != r.destination for r in requests)

    def test_covers_many_pairs(self):
        nodes = [f"n{i}" for i in range(6)]
        requests = uniform_requests(
            nodes, 500, FixedSpecSampler.paper_default(), rng()
        )
        pairs = {(r.source, r.destination) for r in requests}
        assert len(pairs) > 20

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            uniform_requests(["only"], 5, FixedSpecSampler.paper_default(), rng())


class TestHotspotAndFunnel:
    def test_hotspot_receives_requested_fraction(self):
        nodes = [f"n{i}" for i in range(10)]
        requests = hotspot_requests(
            nodes, "n0", 500, FixedSpecSampler.paper_default(), rng(),
            hotspot_fraction=0.5,
        )
        toward = sum(r.destination == "n0" for r in requests)
        assert 200 < toward < 320  # ~50% with slack

    def test_hotspot_must_be_member(self):
        with pytest.raises(ConfigurationError):
            hotspot_requests(
                ["a", "b"], "z", 5, FixedSpecSampler.paper_default(), rng()
            )

    def test_funnel_all_to_sink(self):
        requests = funnel_requests(
            ["a", "b", "c"], "sink", 50, FixedSpecSampler.paper_default(), rng()
        )
        assert all(r.destination == "sink" for r in requests)
        assert all(r.source in ("a", "b", "c") for r in requests)

    def test_funnel_sink_not_source(self):
        with pytest.raises(ConfigurationError):
            funnel_requests(
                ["a", "sink"], "sink", 5, FixedSpecSampler.paper_default(), rng()
            )
