"""Tests for the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class TestScheduling:
    def test_time_ordering(self):
        sim = Simulator()
        seen = []
        sim.schedule(300, lambda: seen.append("c"))
        sim.schedule(100, lambda: seen.append("a"))
        sim.schedule(200, lambda: seen.append("b"))
        sim.run()
        assert seen == ["a", "b", "c"]
        assert sim.now == 300

    def test_fifo_at_same_instant(self):
        sim = Simulator()
        seen = []
        for i in range(5):
            sim.schedule(50, lambda i=i: seen.append(i))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_zero_delay_runs_after_current_event(self):
        sim = Simulator()
        seen = []

        def outer():
            sim.schedule(0, lambda: seen.append("inner"))
            seen.append("outer")

        sim.schedule(10, outer)
        sim.run()
        assert seen == ["outer", "inner"]
        assert sim.now == 10

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(50, lambda: None)

    def test_non_callable_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(1, "not callable")  # type: ignore[arg-type]


class TestRun:
    def test_run_until_horizon(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: seen.append(10))
        sim.schedule(20, lambda: seen.append(20))
        sim.schedule(30, lambda: seen.append(30))
        fired = sim.run(until=20)
        assert fired == 2
        assert seen == [10, 20]
        assert sim.now == 20
        sim.run()
        assert seen == [10, 20, 30]

    def test_run_advances_clock_to_horizon_when_idle(self):
        sim = Simulator()
        sim.run(until=500)
        assert sim.now == 500

    def test_run_past_horizon_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=5)

    def test_reentrant_run_rejected(self):
        sim = Simulator()
        errors = []

        def recurse():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1, recurse)
        sim.run()
        assert len(errors) == 1

    def test_events_scheduled_during_run_are_dispatched(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 5:
                sim.schedule(10, lambda: chain(n + 1))

        sim.schedule(0, lambda: chain(0))
        sim.run()
        assert seen == [0, 1, 2, 3, 4, 5]
        assert sim.now == 50

    def test_dispatched_counter(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule(i, lambda: None)
        sim.run()
        assert sim.dispatched_events == 7


class TestStep:
    def test_step_one_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(5, lambda: seen.append(1))
        sim.schedule(10, lambda: seen.append(2))
        assert sim.step()
        assert seen == [1]
        assert sim.now == 5
        assert sim.step()
        assert not sim.step()

    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        sim.schedule(42, lambda: None)
        assert sim.peek_time() == 42


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(10, lambda: seen.append("x"))
        assert handle.pending
        assert handle.cancel()
        sim.run()
        assert seen == []
        assert handle.cancelled

    def test_cancel_after_fire_returns_false(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        sim.run()
        assert not handle.cancel()

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2

    def test_handle_metadata(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None, label="hello")
        assert handle.time == 10
        assert handle.label == "hello"
