"""Tests for the RNG registry and the trace recorder."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import FORK_MODULUS, RngRegistry
from repro.sim.trace import TraceRecorder


class TestRngRegistry:
    def test_streams_are_memoized(self):
        rngs = RngRegistry(seed=1)
        assert rngs.stream("a") is rngs.stream("a")

    def test_streams_are_independent(self):
        rngs = RngRegistry(seed=1)
        a = rngs.stream("a").integers(0, 1_000_000, size=10)
        b = rngs.stream("b").integers(0, 1_000_000, size=10)
        assert list(a) != list(b)

    def test_reproducible_across_registries(self):
        one = RngRegistry(seed=7).stream("x").integers(0, 10**9, size=5)
        two = RngRegistry(seed=7).stream("x").integers(0, 10**9, size=5)
        assert list(one) == list(two)

    def test_different_seeds_differ(self):
        one = RngRegistry(seed=1).stream("x").integers(0, 10**9, size=5)
        two = RngRegistry(seed=2).stream("x").integers(0, 10**9, size=5)
        assert list(one) != list(two)

    def test_decoupling_property(self):
        """Creating extra streams never perturbs an existing stream."""
        lone = RngRegistry(seed=3)
        values_alone = lone.stream("main").integers(0, 10**9, size=5)
        busy = RngRegistry(seed=3)
        busy.stream("noise1")
        busy.stream("noise2")
        values_busy = busy.stream("main").integers(0, 10**9, size=5)
        assert list(values_alone) == list(values_busy)

    def test_fork_is_deterministic_and_distinct(self):
        root = RngRegistry(seed=5)
        t0 = root.fork(0).stream("x").integers(0, 10**9, size=3)
        t0_again = RngRegistry(seed=5).fork(0).stream("x").integers(
            0, 10**9, size=3
        )
        t1 = root.fork(1).stream("x").integers(0, 10**9, size=3)
        assert list(t0) == list(t0_again)
        assert list(t0) != list(t1)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            RngRegistry(seed=-1)
        with pytest.raises(ConfigurationError):
            RngRegistry(seed=1).stream("")
        with pytest.raises(ConfigurationError):
            RngRegistry(seed=1).fork(-2)

    def test_fork_rejects_sub_seed_at_modulus(self):
        """fork(FORK_MODULUS) would alias RngRegistry(seed+1).fork(0)."""
        root = RngRegistry(seed=5)
        with pytest.raises(ConfigurationError):
            root.fork(FORK_MODULUS)
        with pytest.raises(ConfigurationError):
            root.fork(FORK_MODULUS + 17)

    def test_in_range_forks_never_collide_across_registries(self):
        # the exact collision the guard exists to prevent: without it,
        # seed*M + M == (seed+1)*M + 0
        last_valid = RngRegistry(seed=5).fork(FORK_MODULUS - 1)
        neighbour = RngRegistry(seed=6).fork(0)
        assert last_valid.seed != neighbour.seed

    def test_fork_guard_keeps_existing_streams_byte_identical(self):
        """The guard must not change any in-range fork's derived seed."""
        assert RngRegistry(seed=9).fork(3).seed == 9 * FORK_MODULUS + 3
        values = RngRegistry(seed=9).fork(3).stream("x").integers(
            0, 10**9, size=4
        )
        again = RngRegistry(seed=9).fork(3).stream("x").integers(
            0, 10**9, size=4
        )
        assert list(values) == list(again)


class TestTraceRecorder:
    def test_disabled_recorder_stores_nothing(self):
        trace = TraceRecorder(enabled=False)
        trace.record(1, "x", "s")
        assert len(trace) == 0

    def test_enabled_recorder_stores(self):
        trace = TraceRecorder(enabled=True)
        trace.record(1, "frame.delivered", "f1", "detail")
        trace.record(2, "frame.delivered", "f2")
        trace.record(3, "edf.enqueue", "f3")
        assert len(trace) == 3
        assert [r.subject for r in trace] == ["f1", "f2", "f3"]

    def test_filters(self):
        trace = TraceRecorder(enabled=True)
        trace.record(1, "frame.delivered", "a")
        trace.record(2, "frame.dropped", "b")
        trace.record(3, "edf.enqueue", "c")
        assert len(trace.by_category("frame.delivered")) == 1
        assert len(trace.by_prefix("frame.")) == 2
        assert trace.categories() == {
            "frame.delivered": 1,
            "frame.dropped": 1,
            "edf.enqueue": 1,
        }

    def test_capacity_cap_drops_oldest(self):
        trace = TraceRecorder(enabled=True, capacity=3)
        for i in range(5):
            trace.record(i, "x", f"s{i}")
        assert len(trace) == 3
        assert [r.subject for r in trace] == ["s2", "s3", "s4"]
        assert trace.dropped == 2

    def test_clear(self):
        trace = TraceRecorder(enabled=True)
        trace.record(1, "x", "s")
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped == 0

    def test_extend_appends_in_order_with_drop_accounting(self):
        source = TraceRecorder(enabled=True)
        source.record(1, "a", "s1", fields={"k": 1})
        source.record(2, "b", "s2")
        target = TraceRecorder(enabled=True)
        target.record(0, "pre", "s0")
        target.extend(tuple(source), dropped=3)
        assert [r.subject for r in target] == ["s0", "s1", "s2"]
        assert target.by_category("a")[0].fields == {"k": 1}
        assert target.dropped == 3

    def test_extend_respects_capacity_cap(self):
        source = TraceRecorder(enabled=True)
        for i in range(4):
            source.record(i, "x", f"s{i}")
        target = TraceRecorder(enabled=True, capacity=2)
        target.extend(tuple(source))
        assert [r.subject for r in target] == ["s2", "s3"]
        assert target.dropped == 2

    def test_summary_mentions_counts(self):
        trace = TraceRecorder(enabled=True)
        for _ in range(4):
            trace.record(0, "hot.path", "s")
        text = trace.summary()
        assert "4 records" in text
        assert "hot.path" in text
