"""Determinism: the same seeded scenario twice → byte-identical traces.

Every experiment in this repo claims "seeded and deterministic". That
claim is load-bearing -- the Figure 18.5 CSV regression, the recorded
oracle campaign, and every EXPERIMENTS.md number depend on it -- so it
is asserted here at the strictest possible level: two independently
constructed runs of one seeded scenario must produce *byte-identical*
serialized traces (:mod:`repro.sim.trace`), not merely equal summary
statistics. Any nondeterminism -- iteration over an unordered set, an
unseeded RNG (:mod:`repro.sim.rng` is the only sanctioned source), a
time tie broken by object identity -- shows up as a first diverging
trace line.
"""

from __future__ import annotations

from dataclasses import fields

from repro.core.partitioning import AsymmetricDPS
from repro.network.topology import build_star
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecord
from repro.traffic.besteffort import BestEffortInjector
from repro.traffic.patterns import master_slave_names, master_slave_requests
from repro.traffic.spec import UniformSpecSampler

SEED = 1234


def _trace_bytes(records) -> bytes:
    lines = [
        f"{r.time}|{r.category}|{r.subject}|{r.detail}"
        f"|{sorted(r.fields.items()) if r.fields else ''}"
        for r in records
    ]
    return "\n".join(lines).encode("utf-8")


def _run_scenario(seed: int) -> tuple[bytes, dict]:
    """One full seeded run: handshake admission, RT + BE traffic."""
    masters, slaves = master_slave_names(2, 6)
    net = build_star(masters + slaves, dps=AsymmetricDPS(),
                     trace_enabled=True)
    rngs = RngRegistry(seed)
    sampler = UniformSpecSampler(
        period_range=(50, 150),
        capacity_range=(1, 4),
        deadline_range=(10, 60),
    )
    requests = master_slave_requests(
        masters, slaves, 25, sampler, rngs.stream("requests")
    )
    for request in requests:
        net.establish(request.source, request.destination, request.spec)
    injector = BestEffortInjector(
        sim=net.sim,
        node=net.nodes["m0"],
        destinations=slaves,
        mode="poisson",
        offered_load=0.3,
        rng=rngs.stream("besteffort"),
    )
    injector.start()
    net.start_all_sources(stop_after_messages=3)
    horizon = net.sim.now + 500 * net.phy.slot_ns
    net.sim.run(until=horizon)
    injector.stop()
    net.sim.run(until=horizon + 20 * net.phy.slot_ns)
    digest = {
        "now": net.sim.now,
        "grants": tuple(g.channel_id for g in net.grants),
        "rt_messages": net.metrics.total_rt_messages,
        "rt_frames": net.metrics.total_rt_frames,
        "be_delivered": net.metrics.be_frames_delivered,
        "misses": net.metrics.total_deadline_misses,
        "worst_delay_ns": net.metrics.worst_rt_delay_ns,
    }
    return _trace_bytes(net.trace), digest


def test_trace_serialization_is_lossless_per_record():
    # the serialization covers every TraceRecord field, so byte
    # equality of traces really is record equality.
    assert {f.name for f in fields(TraceRecord)} == {
        "time", "category", "subject", "detail", "fields",
    }


def test_same_seed_twice_gives_byte_identical_traces():
    first_trace, first_digest = _run_scenario(SEED)
    second_trace, second_digest = _run_scenario(SEED)
    assert len(first_trace) > 10_000, "scenario produced a trivial trace"
    assert first_digest == second_digest
    assert first_trace == second_trace


def test_different_seeds_actually_diverge():
    """Guards the guard: if traces were identical across *different*
    seeds, the byte-equality test above would be vacuous."""
    first_trace, _ = _run_scenario(SEED)
    other_trace, _ = _run_scenario(SEED + 1)
    assert first_trace != other_trace
