"""Direct tests for Event/EventHandle semantics."""

from __future__ import annotations

import pytest

from repro.sim.events import Event, EventHandle
from repro.sim.kernel import Simulator


class TestEvent:
    def test_sort_key_orders_time_then_seq(self):
        early = Event(time=10, seq=0, action=lambda: None)
        later = Event(time=10, seq=1, action=lambda: None)
        other = Event(time=5, seq=9, action=lambda: None)
        assert other.sort_key() < early.sort_key() < later.sort_key()


class TestEventHandle:
    def test_pending_lifecycle(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None, label="x")
        assert handle.pending
        assert not handle.cancelled
        sim.run()
        assert not handle.pending
        assert not handle.cancelled

    def test_cancel_before_fire(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        assert handle.cancel()
        assert handle.cancelled
        assert not handle.pending
        sim.run()
        assert sim.dispatched_events == 0

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        assert handle.cancel()
        assert handle.cancel()  # still reports success pre-fire

    def test_cancel_after_fire_fails(self):
        sim = Simulator()
        handle = sim.schedule(10, lambda: None)
        sim.run()
        assert not handle.cancel()

    def test_fired_event_never_redispatched(self):
        """The sentinel guards against double dispatch even under heap
        corruption scenarios (defence in depth)."""
        from repro.sim.events import _fired

        with pytest.raises(AssertionError):
            _fired()

    def test_cancel_from_within_another_event(self):
        """An event may cancel a later event at the same instant."""
        sim = Simulator()
        fired = []
        second = None

        def first():
            assert second is not None
            assert second.cancel()
            fired.append("first")

        sim.schedule(5, first)
        second = sim.schedule(5, lambda: fired.append("second"))
        sim.run()
        assert fired == ["first"]

    def test_self_rescheduling_event(self):
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 4:
                sim.schedule(10, tick)

        sim.schedule(0, tick)
        sim.run()
        assert count == 4
        assert sim.now == 30
