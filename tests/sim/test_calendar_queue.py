"""Differential tests: the calendar queue is the heap, observably.

The kernel's two pending-set implementations must dispatch every
program in the identical ``(time, seq)`` total order. These tests replay
randomized event programs -- mixed delays with heavy same-instant
collisions, weak observers, mid-run scheduling, cancellations, horizon
runs and compaction -- on one ``queue="heap"`` and one
``queue="calendar"`` kernel and require identical fired streams, clocks
and dispatch counts. The calendar's bucket layout (width, resize
thresholds) is a pure performance heuristic; nothing here may depend
on it.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator


def replay(queue: str, program, horizon=None):
    """Run one randomized program; return (fired, now, dispatched)."""
    rng = random.Random(program)
    sim = Simulator(queue=queue)
    fired: list[tuple[int, int]] = []
    handles = []

    def make(tag):
        def action():
            fired.append((sim.now, tag))
            # Mid-run scheduling: events spawn more events.
            if rng.random() < 0.35 and len(fired) < 400:
                sim.schedule(rng.randrange(0, 50), make(tag + 1000))
            # Mid-run cancellation of a random live handle.
            if handles and rng.random() < 0.2:
                handles[rng.randrange(len(handles))].cancel()

        return action

    for tag in range(120):
        delay = rng.choice((0, 1, 1, 7, 7, 7, 64, 512, 4096))
        handles.append(
            sim.schedule(delay, make(tag), weak=rng.random() < 0.1)
        )
    if rng.random() < 0.5:
        sim.compact()
    sim.run(until=horizon)
    return fired, sim.now, sim.dispatched_events


@pytest.mark.parametrize("program", range(15))
def test_calendar_replays_heap_exactly(program):
    assert replay("heap", program) == replay("calendar", program)


@pytest.mark.parametrize("program", range(15, 25))
def test_calendar_replays_heap_exactly_with_horizon(program):
    horizon = 300 + 77 * program
    assert replay("heap", program, horizon) == replay(
        "calendar", program, horizon
    )


class TestCalendarQueueKernel:
    def test_unknown_queue_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown event queue"):
            Simulator(queue="wheel")

    def test_queue_kind_reported(self):
        assert Simulator().queue_kind == "heap"
        assert Simulator(queue="calendar").queue_kind == "calendar"

    def test_fifo_at_same_instant(self):
        sim = Simulator(queue="calendar")
        seen = []
        for i in range(50):
            sim.schedule(7, lambda i=i: seen.append(i))
        sim.run()
        assert seen == list(range(50))

    def test_sparse_far_future_events_fire_in_order(self):
        # Widely spread times exercise the direct min-search fallback
        # (no bucket matches the scan year).
        sim = Simulator(queue="calendar")
        seen = []
        for t in (10**9, 3, 10**6, 44, 10**12, 500):
            sim.schedule(t, lambda t=t: seen.append(t))
        sim.run()
        assert seen == sorted(seen)
        assert sim.now == 10**12

    def test_resize_churn_keeps_order(self):
        # Push enough to trigger growth, drain to trigger shrink, twice.
        sim = Simulator(queue="calendar")
        seen = []
        for round_base in (0, 100_000):
            for i in range(300):
                sim.schedule_at(
                    round_base + (i * 37) % 991,
                    lambda i=i: seen.append(i),
                )
            sim.run(until=round_base + 2_000)
        assert len(seen) == 600

    def test_step_and_peek_time(self):
        sim = Simulator(queue="calendar")
        seen = []
        sim.schedule(5, lambda: seen.append("a"))
        sim.schedule(9, lambda: seen.append("b"))
        assert sim.peek_time() == 5
        assert sim.step()
        assert seen == ["a"]
        assert sim.peek_time() == 9

    def test_compact_drops_cancelled_entries(self):
        sim = Simulator(queue="calendar")
        keep = sim.schedule(10, lambda: None)
        for _ in range(20):
            sim.schedule(20, lambda: None).cancel()
        assert sim.pending_events == 21
        removed = sim.compact()
        assert removed == 20
        assert sim.pending_events == 1
        assert sim.live_pending_events == 1
        keep.cancel()
