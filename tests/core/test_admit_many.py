"""Tests for the batch admission engine (``admit_many`` / ``preview_many``).

The contract under test is *stream equality*: admit_many over any burst
must produce exactly the decisions, counters and final state the scalar
``request()`` loop would -- including mid-burst failures, which must
leave the controller byte-identical (per the persistence snapshot) to a
scalar controller that processed the same prefix.
"""

from __future__ import annotations

import pytest

from repro.core import persistence
from repro.core.admission import (
    AdmissionController,
    RejectionReason,
    SystemState,
)
from repro.core.channel import ChannelSpec
from repro.core.partitioning import AsymmetricDPS, SymmetricDPS
from repro.errors import ChannelParameterError
from repro.multiswitch.admission import MultiSwitchAdmission
from repro.multiswitch.fabric import SwitchFabric
from repro.multiswitch.partitioning import MultiHopSymmetric

SPEC = ChannelSpec(period=100, capacity=3, deadline=40)
#: valid spec the symmetric split cannot partition (d/2 < C).
TIGHT = ChannelSpec(period=100, capacity=3, deadline=4)

NODES = [f"m{i}" for i in range(4)] + [f"s{i}" for i in range(6)]


def build(scheme="sdps", use_cache=True):
    dps = SymmetricDPS() if scheme == "sdps" else AsymmetricDPS()
    return AdmissionController(
        SystemState(list(NODES)), dps, use_cache=use_cache
    )


def saturating_burst():
    """A burst that accepts, saturates, repeats, and hits every
    state-independent rejection at least once."""
    burst = []
    for m in ("m0", "m1", "m2", "m3"):
        for s in ("s0", "s1", "s2", "s3", "s4", "s5"):
            burst.append((m, s, SPEC))
    burst.append(("m0", "ghost", SPEC))       # UNKNOWN_NODE
    burst.append(("m0", "s0", TIGHT))         # NOT_PARTITIONABLE
    # Saturated tail: repeats of already-decided keys.
    burst.extend(burst[:20] * 3)
    burst.append(("ghost", "s0", SPEC))
    return burst


def assert_streams_equal(scalar, batched):
    assert len(scalar) == len(batched)
    for i, (a, b) in enumerate(zip(scalar, batched)):
        assert a.accepted == b.accepted, i
        assert a.reason == b.reason, i
        assert a.channel.channel_id == b.channel.channel_id, i
        assert a.partition == b.partition, i
        assert a.uplink_report == b.uplink_report, i
        assert a.downlink_report == b.downlink_report, i


def assert_controllers_identical(a, b):
    assert a.accept_count == b.accept_count
    assert a.reject_count == b.reject_count
    assert a.rejections_by_reason == b.rejections_by_reason
    assert persistence.dumps(a) == persistence.dumps(b)


class TestAdmitManyEquality:
    @pytest.mark.parametrize("scheme", ["sdps", "adps"])
    def test_stream_equal_to_scalar_loop(self, scheme):
        burst = saturating_burst()
        scalar_ctrl, batch_ctrl = build(scheme), build(scheme)
        scalar = [scalar_ctrl.request(s, d, sp) for s, d, sp in burst]
        batched = batch_ctrl.admit_many(burst)
        assert_streams_equal(scalar, batched)
        assert_controllers_identical(scalar_ctrl, batch_ctrl)

    @pytest.mark.parametrize("scheme", ["sdps", "adps"])
    def test_uncached_fallback_is_stream_equal(self, scheme):
        burst = saturating_burst()
        scalar_ctrl = build(scheme, use_cache=False)
        batch_ctrl = build(scheme, use_cache=False)
        scalar = [scalar_ctrl.request(s, d, sp) for s, d, sp in burst]
        batched = batch_ctrl.admit_many(burst)
        assert_streams_equal(scalar, batched)
        assert_controllers_identical(scalar_ctrl, batch_ctrl)

    def test_repeats_hit_the_template_path(self):
        ctrl = build()
        decisions = ctrl.admit_many(saturating_burst())
        assert ctrl.batch_count == 1
        assert ctrl.batch_template_hits > 0
        # Hits only ever answer rejected repeats: acceptances always
        # run the fresh path (each consumes a channel ID).
        accepted = sum(1 for d in decisions if d.accepted)
        assert accepted == ctrl.accept_count

    def test_interleaved_bursts_and_releases(self):
        scalar_ctrl, batch_ctrl = build(), build()
        burst = saturating_burst()
        assert_streams_equal(
            [scalar_ctrl.request(s, d, sp) for s, d, sp in burst],
            batch_ctrl.admit_many(burst),
        )
        for channel_id in sorted(scalar_ctrl.state.channels)[::2]:
            scalar_ctrl.release(channel_id)
            batch_ctrl.release(channel_id)
        # Freed capacity must be re-admittable identically.
        assert_streams_equal(
            [scalar_ctrl.request(s, d, sp) for s, d, sp in burst],
            batch_ctrl.admit_many(burst),
        )
        assert_controllers_identical(scalar_ctrl, batch_ctrl)

    def test_empty_burst_is_a_counted_noop(self):
        ctrl = build()
        before = persistence.dumps(ctrl)
        assert ctrl.admit_many([]) == []
        assert persistence.dumps(ctrl) == before
        assert ctrl.batch_count == 1
        assert ctrl.batch_template_hits == 0


class TestPartialBatchFailure:
    def test_mid_burst_error_leaves_scalar_prefix_state(self):
        """A poisoned request mid-burst must leave zero residue beyond
        the already-decided prefix: counters and snapshot byte-identical
        to the scalar loop failing at the same element."""
        burst = saturating_burst()
        poisoned = burst[:31] + [("m0", "m0", SPEC)] + burst[31:]
        scalar_ctrl, batch_ctrl = build(), build()
        with pytest.raises(ChannelParameterError):
            for s, d, sp in poisoned:
                scalar_ctrl.request(s, d, sp)
        with pytest.raises(ChannelParameterError):
            batch_ctrl.admit_many(poisoned)
        assert_controllers_identical(scalar_ctrl, batch_ctrl)

    def test_poisoned_burst_counts_only_the_prefix(self):
        ctrl = build()
        with pytest.raises(ChannelParameterError):
            ctrl.admit_many(
                [("m0", "s0", SPEC), ("m0", "m0", SPEC), ("m1", "s1", SPEC)]
            )
        assert ctrl.accept_count == 1
        assert ctrl.reject_count == 0
        assert ctrl.batch_count == 1


class TestPreviewMany:
    def test_zero_side_effects(self):
        ctrl = build()
        ctrl.admit_many(saturating_burst()[:10])
        before = persistence.dumps(ctrl)
        counters = (ctrl.accept_count, ctrl.reject_count, ctrl.batch_count)
        ctrl.preview_many(saturating_burst())
        assert persistence.dumps(ctrl) == before
        assert (
            ctrl.accept_count, ctrl.reject_count, ctrl.batch_count
        ) == counters

    def test_matches_scalar_preview(self):
        ctrl = build()
        ctrl.admit_many(saturating_burst()[:25])
        burst = saturating_burst()
        scalar = [ctrl.preview(s, d, sp) for s, d, sp in burst]
        batched = ctrl.preview_many(burst)
        for a, b in zip(scalar, batched):
            assert a.accepted == b.accepted
            assert a.reason == b.reason
            assert a.partition == b.partition

    def test_agrees_with_would_accept_and_admit(self):
        ctrl = build()
        burst = saturating_burst()
        previews = ctrl.preview_many(burst)
        # would_accept must agree with the preview at the same state...
        for (s, d, sp), decision in zip(burst[:10], previews[:10]):
            assert ctrl.would_accept(s, d, sp) == decision.accepted
        # ...and the first decision of a real burst matches its preview.
        first = ctrl.admit_many(burst[:1])[0]
        assert first.accepted == previews[0].accepted


class TestMultiSwitchAdmitMany:
    def make(self, use_cache=True):
        return MultiSwitchAdmission(
            fabric=SwitchFabric.chain(2, 2),
            dps=MultiHopSymmetric(),
            use_cache=use_cache,
        )

    def multihop_burst(self):
        nodes = ("n0_0", "n0_1", "n1_0", "n1_1")
        burst = [
            (a, b, SPEC) for a in nodes for b in nodes if a != b
        ]
        return burst * 4

    def test_stream_equal_to_scalar_loop(self):
        burst = self.multihop_burst()
        scalar_adm, batch_adm = self.make(), self.make()
        scalar = [scalar_adm.request(s, d, sp) for s, d, sp in burst]
        batched = batch_adm.admit_many(burst)
        assert len(scalar) == len(batched)
        for i, (a, b) in enumerate(zip(scalar, batched)):
            assert a.accepted == b.accepted, i
            assert a.channel_id == b.channel_id, i
            assert a.parts == b.parts, i
            assert a.failed_link == b.failed_link, i
        assert scalar_adm.accept_count == batch_adm.accept_count
        assert scalar_adm.reject_count == batch_adm.reject_count
        touched = {
            link for d in scalar if d.accepted for link in d.links
        }
        for link in touched:
            assert scalar_adm.link_load(link) == batch_adm.link_load(link)
