"""Tests for SDPS / ADPS and the partitioning helpers (Section 18.4)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.channel import ChannelSpec
from repro.core.partitioning import (
    AsymmetricDPS,
    SymmetricDPS,
    clamp_partition,
    split_round_half_up,
)
from repro.core.task import LinkRef
from repro.errors import PartitioningError


class StubLoads:
    """Minimal LoadView backed by a dict of loads."""

    def __init__(self, loads: dict[LinkRef, int] | None = None):
        self._loads = loads or {}

    def link_load(self, link: LinkRef) -> int:
        return self._loads.get(link, 0)

    def link_utilization(self, link: LinkRef) -> Fraction:
        return Fraction(self.link_load(link), 100)


class TestClampPartition:
    def test_in_range_untouched(self, paper_spec):
        part = clamp_partition(paper_spec, 25)
        assert (part.uplink, part.downlink) == (25, 15)

    def test_clamps_low(self, paper_spec):
        part = clamp_partition(paper_spec, 0)
        assert part.uplink == paper_spec.capacity
        assert part.total == paper_spec.deadline

    def test_clamps_high(self, paper_spec):
        part = clamp_partition(paper_spec, 1000)
        assert part.downlink == paper_spec.capacity
        assert part.total == paper_spec.deadline

    def test_unpartitionable_rejected(self):
        spec = ChannelSpec(period=10, capacity=3, deadline=5)
        with pytest.raises(PartitioningError, match="18.9"):
            clamp_partition(spec, 3)

    def test_exact_boundary_d_equals_2c(self):
        spec = ChannelSpec(period=10, capacity=3, deadline=6)
        part = clamp_partition(spec, 1)
        assert (part.uplink, part.downlink) == (3, 3)


class TestSplitRoundHalfUp:
    def test_half_rounds_up(self):
        assert split_round_half_up(5, 1, 2) == 3  # 2.5 -> 3

    def test_exact_division(self):
        assert split_round_half_up(40, 1, 2) == 20
        assert split_round_half_up(40, 2, 3) == 27  # 26.67 -> 27

    def test_zero_numerator(self):
        assert split_round_half_up(40, 0, 3) == 0

    def test_full_share(self):
        assert split_round_half_up(40, 3, 3) == 40

    def test_invalid_denominator(self):
        with pytest.raises(PartitioningError):
            split_round_half_up(40, 1, 0)

    def test_negative_numerator(self):
        with pytest.raises(PartitioningError):
            split_round_half_up(40, -1, 2)


class TestSymmetricDPS:
    def test_even_deadline_halved(self, paper_spec):
        part = SymmetricDPS().partition("a", "b", paper_spec, StubLoads())
        assert (part.uplink, part.downlink) == (20, 20)

    def test_odd_deadline_floor_to_uplink(self):
        spec = ChannelSpec(period=100, capacity=3, deadline=41)
        part = SymmetricDPS().partition("a", "b", spec, StubLoads())
        assert (part.uplink, part.downlink) == (20, 21)

    def test_state_invariant(self, paper_spec):
        """SDPS ignores loads entirely (Eq. 18.15)."""
        dps = SymmetricDPS()
        loaded = StubLoads({LinkRef.uplink("a"): 99})
        assert dps.partition("a", "b", paper_spec, StubLoads()) == dps.partition(
            "a", "b", paper_spec, loaded
        )

    def test_tight_deadline_clamped(self):
        spec = ChannelSpec(period=100, capacity=10, deadline=21)
        part = SymmetricDPS().partition("a", "b", spec, StubLoads())
        # d//2 = 10 == C, fine; downlink 11.
        assert (part.uplink, part.downlink) == (10, 11)

    def test_unpartitionable_raises(self):
        spec = ChannelSpec(period=100, capacity=10, deadline=19)
        with pytest.raises(PartitioningError):
            SymmetricDPS().partition("a", "b", spec, StubLoads())


class TestAsymmetricDPS:
    def test_balanced_loads_give_even_split(self, paper_spec):
        loads = StubLoads(
            {LinkRef.uplink("a"): 3, LinkRef.downlink("b"): 3}
        )
        part = AsymmetricDPS().partition("a", "b", paper_spec, loads)
        assert (part.uplink, part.downlink) == (20, 20)

    def test_eq_18_16_ratio(self, paper_spec):
        # LL(src)=2, LL(dst)=1 -> Upart = 2/3 -> d_iu = 27 (round-half-up).
        loads = StubLoads(
            {LinkRef.uplink("a"): 2, LinkRef.downlink("b"): 1}
        )
        part = AsymmetricDPS().partition("a", "b", paper_spec, loads)
        assert (part.uplink, part.downlink) == (27, 13)

    def test_heavy_uplink_gets_most_budget(self, paper_spec):
        loads = StubLoads(
            {LinkRef.uplink("a"): 10, LinkRef.downlink("b"): 1}
        )
        part = AsymmetricDPS().partition("a", "b", paper_spec, loads)
        # 40 * 10/11 = 36.36 -> 36; downlink 4 >= C.
        assert (part.uplink, part.downlink) == (36, 4)

    def test_heavy_downlink_mirrors(self, paper_spec):
        loads = StubLoads(
            {LinkRef.uplink("a"): 1, LinkRef.downlink("b"): 10}
        )
        part = AsymmetricDPS().partition("a", "b", paper_spec, loads)
        assert (part.uplink, part.downlink) == (4, 36)

    def test_extreme_ratio_clamped_to_capacity_floor(self, paper_spec):
        loads = StubLoads(
            {LinkRef.uplink("a"): 1000, LinkRef.downlink("b"): 1}
        )
        part = AsymmetricDPS().partition("a", "b", paper_spec, loads)
        assert part.downlink == paper_spec.capacity
        assert part.total == paper_spec.deadline

    def test_zero_loads_fall_back_to_half(self, paper_spec):
        part = AsymmetricDPS().partition("a", "b", paper_spec, StubLoads())
        assert (part.uplink, part.downlink) == (20, 20)

    def test_negative_load_rejected(self, paper_spec):
        loads = StubLoads({LinkRef.uplink("a"): -1})
        with pytest.raises(PartitioningError):
            AsymmetricDPS().partition("a", "b", paper_spec, loads)

    def test_partition_with_probe_ignores_probe(self, paper_spec):
        dps = AsymmetricDPS()
        loads = StubLoads(
            {LinkRef.uplink("a"): 2, LinkRef.downlink("b"): 1}
        )
        part = dps.partition_with_probe(
            "a", "b", paper_spec, loads, probe=lambda p: False
        )
        assert part == dps.partition("a", "b", paper_spec, loads)

    def test_partition_always_legal(self, paper_spec):
        """Any load combination yields a partition meeting Eq. 18.8/18.9."""
        dps = AsymmetricDPS()
        for up in range(0, 20):
            for down in range(0, 20):
                loads = StubLoads(
                    {
                        LinkRef.uplink("a"): up,
                        LinkRef.downlink("b"): down,
                    }
                )
                part = dps.partition("a", "b", paper_spec, loads)
                part.validate_for(paper_spec)
