"""Tests for SystemState and AdmissionController (Sections 18.3/18.4)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.admission import (
    AdmissionController,
    RejectionReason,
    SystemState,
)
from repro.core.channel import ChannelSpec, ChannelState
from repro.core.partitioning import AsymmetricDPS, SymmetricDPS
from repro.core.partitioning_ext import SearchDPS
from repro.core.task import LinkRef
from repro.errors import (
    AdmissionError,
    InfeasibleChannelError,
    UnknownChannelError,
)

NODES = ["a", "b", "c", "d"]


def controller(dps=None, nodes=NODES):
    return AdmissionController(SystemState(nodes), dps or SymmetricDPS())


class TestSystemState:
    def test_nodes(self):
        state = SystemState(["x", "y"])
        assert state.nodes == {"x", "y"}
        state.add_node("z")
        assert state.has_node("z")
        state.add_node("z")  # idempotent
        assert len(state.nodes) == 3

    def test_empty_node_name_rejected(self):
        with pytest.raises(Exception):
            SystemState([""])

    def test_initial_loads_zero(self):
        state = SystemState(NODES)
        assert state.link_load(LinkRef.uplink("a")) == 0
        assert state.link_utilization(LinkRef.uplink("a")) == 0
        assert state.tasks_on(LinkRef.uplink("a")) == ()
        assert len(state) == 0

    def test_candidate_view_counts_candidate(self, paper_spec):
        state = SystemState(NODES)
        view = state.with_candidate("a", "b", paper_spec)
        assert view.link_load(LinkRef.uplink("a")) == 1
        assert view.link_load(LinkRef.downlink("b")) == 1
        assert view.link_load(LinkRef.uplink("b")) == 0
        assert view.link_utilization(LinkRef.uplink("a")) == Fraction(3, 100)


class TestAdmissionAccept:
    def test_first_channel_accepted(self, paper_spec):
        ctrl = controller()
        decision = ctrl.request("a", "b", paper_spec)
        assert decision.accepted
        assert bool(decision)
        assert decision.channel.state is ChannelState.ACTIVE
        assert decision.channel.channel_id == 1  # IDs start at 1
        assert decision.partition is not None
        assert decision.uplink_report is not None
        assert decision.uplink_report.feasible

    def test_state_updated_after_accept(self, paper_spec):
        ctrl = controller()
        ctrl.request("a", "b", paper_spec)
        state = ctrl.state
        assert state.link_load(LinkRef.uplink("a")) == 1
        assert state.link_load(LinkRef.downlink("b")) == 1
        assert state.link_load(LinkRef.downlink("a")) == 0
        assert len(state) == 1

    def test_ids_monotone(self, paper_spec):
        ctrl = controller()
        ids = [
            ctrl.request("a", "b", paper_spec).channel.channel_id
            for _ in range(4)
        ]
        assert ids == [1, 2, 3, 4]

    def test_counters(self, paper_spec):
        ctrl = controller()
        ctrl.request("a", "b", paper_spec)
        ctrl.request("a", "nope", paper_spec)
        assert ctrl.accept_count == 1
        assert ctrl.reject_count == 1


class TestAdmissionReject:
    def test_unknown_node(self, paper_spec):
        ctrl = controller()
        decision = ctrl.request("a", "ghost", paper_spec)
        assert not decision.accepted
        assert decision.reason is RejectionReason.UNKNOWN_NODE
        decision = ctrl.request("ghost", "a", paper_spec)
        assert decision.reason is RejectionReason.UNKNOWN_NODE

    def test_not_partitionable(self):
        ctrl = controller()
        spec = ChannelSpec(period=100, capacity=3, deadline=5)
        decision = ctrl.request("a", "b", spec)
        assert decision.reason is RejectionReason.NOT_PARTITIONABLE

    def test_uplink_saturation_sdps(self, paper_spec):
        """SDPS caps a single uplink at 6 of the Figure 18.5 channels."""
        ctrl = controller(SymmetricDPS())
        accepted = 0
        for dest in ["b", "c", "d"] * 3:
            if ctrl.request("a", dest, paper_spec).accepted:
                accepted += 1
        assert accepted == 6
        last = ctrl.request("a", "b", paper_spec)
        assert last.reason is RejectionReason.UPLINK_INFEASIBLE

    def test_downlink_saturation_detected(self, paper_spec):
        ctrl = controller(SymmetricDPS())
        for source in ["b", "c", "d"] * 2:
            assert ctrl.request(source, "a", paper_spec).accepted
        decision = ctrl.request("b", "a", paper_spec)
        assert not decision.accepted
        assert decision.reason is RejectionReason.DOWNLINK_INFEASIBLE

    def test_rejected_channel_leaves_no_trace(self, paper_spec):
        ctrl = controller(SymmetricDPS())
        for dest in ["b", "c"] * 3:
            ctrl.request("a", dest, paper_spec)
        before = ctrl.state.link_load(LinkRef.uplink("a"))
        ctrl.request("a", "b", paper_spec)  # rejected
        assert ctrl.state.link_load(LinkRef.uplink("a")) == before

    def test_utilization_overload_rejected(self):
        ctrl = controller()
        fat = ChannelSpec(period=10, capacity=5, deadline=20)
        assert ctrl.request("a", "b", fat).accepted
        assert ctrl.request("a", "c", fat).accepted
        decision = ctrl.request("a", "d", fat)
        assert not decision.accepted


class TestAdpsBeatsSdpsOnBottleneck:
    def test_adps_accepts_more_from_one_master(self, paper_spec):
        """The core Figure 18.5 mechanism at the single-uplink scale."""
        nodes = ["m"] + [f"s{i}" for i in range(20)]
        sdps = controller(SymmetricDPS(), nodes)
        adps = controller(AsymmetricDPS(), nodes)
        sdps_count = adps_count = 0
        for i in range(20):
            dest = f"s{i}"
            if sdps.request("m", dest, paper_spec).accepted:
                sdps_count += 1
            if adps.request("m", dest, paper_spec).accepted:
                adps_count += 1
        assert sdps_count == 6
        assert adps_count > sdps_count


class TestRelease:
    def test_release_returns_capacity(self, paper_spec):
        ctrl = controller(SymmetricDPS())
        channels = [
            ctrl.request("a", dest, paper_spec).channel
            for dest in ["b", "c", "d"] * 2
        ]
        assert not ctrl.request("a", "b", paper_spec).accepted
        released = ctrl.release(channels[0].channel_id)
        assert released.state is ChannelState.TORN_DOWN
        assert ctrl.request("a", "b", paper_spec).accepted

    def test_release_unknown_raises(self):
        ctrl = controller()
        with pytest.raises(UnknownChannelError):
            ctrl.release(42)

    def test_double_release_raises(self, paper_spec):
        ctrl = controller()
        channel = ctrl.request("a", "b", paper_spec).channel
        ctrl.release(channel.channel_id)
        with pytest.raises(UnknownChannelError):
            ctrl.release(channel.channel_id)


class TestConvenienceAPIs:
    def test_admit_or_raise_success(self, paper_spec):
        ctrl = controller()
        channel = ctrl.admit_or_raise("a", "b", paper_spec)
        assert channel.state is ChannelState.ACTIVE

    def test_admit_or_raise_failure(self):
        ctrl = controller()
        with pytest.raises(InfeasibleChannelError) as excinfo:
            ctrl.admit_or_raise("a", "ghost", ChannelSpec(100, 3, 40))
        assert excinfo.value.decision is not None

    def test_would_accept_is_non_mutating(self, paper_spec):
        ctrl = controller()
        assert ctrl.would_accept("a", "b", paper_spec)
        assert len(ctrl.state) == 0
        assert ctrl.accept_count == 0
        assert ctrl.reject_count == 0

    def test_would_accept_negative(self):
        ctrl = controller()
        assert not ctrl.would_accept("a", "ghost", ChannelSpec(100, 3, 40))
        assert ctrl.reject_count == 0


class TestSearchDpsIntegration:
    def test_search_beats_fixed_partitions(self):
        """SearchDPS admits a channel ADPS would bounce.

        Load the uplink so only a small d_iu remains feasible while the
        downlink is empty: ADPS (load-proportional) over-allocates to
        the uplink and fails; SearchDPS probes until it finds the
        asymmetric split that fits.
        """
        spec = ChannelSpec(period=100, capacity=10, deadline=40)
        nodes = ["m", "x", "y", "z", "w"]
        searching = controller(SearchDPS(), nodes)
        fixed = controller(SymmetricDPS(), nodes)
        search_accepted = fixed_accepted = 0
        for dest in ("x", "y", "z", "w"):
            if searching.request("m", dest, spec).accepted:
                search_accepted += 1
            if fixed.request("m", dest, spec).accepted:
                fixed_accepted += 1
        # SDPS gives every channel d_iu=20; h(20) = 10*Q <= 20 caps the
        # uplink at 2 channels. SearchDPS staggers the deadlines
        # (20, 27, 30, ...) and fits more.
        assert fixed_accepted == 2
        assert search_accepted > fixed_accepted


class TestChannelIdExhaustion:
    def test_exhaustion_raises(self):
        ctrl = controller()
        ctrl.MAX_CHANNEL_ID = 3  # shrink the space for the test
        spec = ChannelSpec(period=1000, capacity=1, deadline=1000)
        for _ in range(3):
            ctrl.admit_or_raise("a", "b", spec)
        with pytest.raises(AdmissionError, match="16-bit|exhausted"):
            ctrl.admit_or_raise("a", "b", spec)


class TestPreviewPurity:
    """preview()/would_accept() must be observably side-effect free.

    The historical would_accept() installed the channel and rolled it
    back, permanently consuming a 16-bit channel ID per accepted
    preview (an availability bug: ~65k previews bricked the
    controller) and leaving stale zero-count keys in the rejection
    histogram. These tests pin the repaired contract.
    """

    def test_preview_consumes_no_channel_ids(self, paper_spec):
        """70,000 previews -- more than the whole 16-bit ID space --
        then a real request still succeeds with the next sequential
        ID."""
        ctrl = controller()
        assert ctrl.request("a", "b", paper_spec).channel.channel_id == 1
        for _ in range(70_000):
            assert ctrl.would_accept("a", "b", paper_spec)
        decision = ctrl.request("a", "b", paper_spec)
        assert decision.accepted
        assert decision.channel.channel_id == 2

    def test_preview_leaves_snapshot_byte_identical(self, paper_spec):
        from repro.core.persistence import dumps

        ctrl = controller()
        ctrl.request("a", "b", paper_spec)
        before = dumps(ctrl)
        # Accept-path preview, reject-path previews (every reason).
        assert ctrl.preview("a", "c", paper_spec).accepted
        assert not ctrl.preview("a", "ghost", paper_spec).accepted
        assert not ctrl.preview(
            "a", "b", ChannelSpec(period=100, capacity=3, deadline=5)
        ).accepted
        assert dumps(ctrl) == before

    def test_preview_touches_no_counters_or_histogram(self, paper_spec):
        ctrl = controller()
        ctrl.preview("a", "ghost", paper_spec)
        ctrl.preview("a", "b", ChannelSpec(100, 3, 5))
        ctrl.preview("a", "b", paper_spec)
        assert ctrl.accept_count == 0
        assert ctrl.reject_count == 0
        assert ctrl.rejections_by_reason == {}
        assert len(ctrl.state) == 0

    def test_preview_reports_would_be_partition(self, paper_spec):
        ctrl = controller()
        decision = ctrl.preview("a", "b", paper_spec)
        assert decision.accepted
        assert decision.partition is not None
        assert decision.channel.channel_id == -1  # no ID consumed
        assert decision.channel.state is ChannelState.REQUESTED

    def test_preview_matches_subsequent_request(self, paper_spec):
        """A preview's verdict agrees with an immediately following
        request, accept and reject alike."""
        ctrl = controller(SymmetricDPS())
        for _ in range(8):  # SDPS caps the uplink at 6 paper channels
            previewed = ctrl.preview("a", "b", paper_spec)
            decided = ctrl.request("a", "b", paper_spec)
            assert previewed.accepted == decided.accepted
            assert previewed.reason == decided.reason


class TestNoFeasiblePartition:
    """A probing DPS exhausting every split is a load problem, not a
    spec problem: the rejection must be NO_FEASIBLE_PARTITION (not
    NOT_PARTITIONABLE, which is reserved for d < 2C) and must keep the
    histogram consistent."""

    def _saturate(self, ctrl, spec):
        while True:
            decision = ctrl.request("m", "x", spec)
            if not decision.accepted:
                return decision

    def test_strict_search_reports_no_feasible_partition(self):
        spec = ChannelSpec(period=100, capacity=10, deadline=40)
        assert spec.is_partitionable()
        ctrl = controller(SearchDPS(strict=True), ["m", "x"])
        decision = self._saturate(ctrl, spec)
        assert decision.reason is RejectionReason.NO_FEASIBLE_PARTITION
        assert decision.partition is None
        assert (
            ctrl.rejections_by_reason[
                RejectionReason.NO_FEASIBLE_PARTITION
            ]
            == 1
        )
        assert sum(ctrl.rejections_by_reason.values()) == ctrl.reject_count

    def test_non_strict_search_reports_link_instead(self):
        """Without strict mode the centre split is returned and the
        rejection is attributed to the infeasible link, as before."""
        spec = ChannelSpec(period=100, capacity=10, deadline=40)
        ctrl = controller(SearchDPS(), ["m", "x"])
        decision = self._saturate(ctrl, spec)
        assert decision.reason in (
            RejectionReason.UPLINK_INFEASIBLE,
            RejectionReason.DOWNLINK_INFEASIBLE,
        )

    def test_histogram_has_no_zero_count_keys(self, paper_spec):
        ctrl = controller(SearchDPS(strict=True))
        ctrl.request("a", "ghost", paper_spec)
        ctrl.request("a", "b", ChannelSpec(100, 3, 5))
        ctrl.would_accept("a", "b", paper_spec)
        assert all(v > 0 for v in ctrl.rejections_by_reason.values())
        assert sum(ctrl.rejections_by_reason.values()) == ctrl.reject_count


class TestCachedControllerEquivalence:
    """The cached fast path is an implementation detail: a cached and a
    from-scratch controller fed the same requests must be
    indistinguishable through the public API."""

    def test_decision_streams_identical_under_saturation(self, paper_spec):
        cached = controller(AsymmetricDPS())
        naive = AdmissionController(
            SystemState(NODES), AsymmetricDPS(), use_cache=False
        )
        assert cached.uses_cache and not naive.uses_cache
        pairs = [
            ("a", "b"), ("a", "c"), ("b", "a"), ("c", "d"), ("d", "a"),
        ]
        for source, dest in pairs * 6:
            got = cached.request(source, dest, paper_spec)
            want = naive.request(source, dest, paper_spec)
            assert got.accepted == want.accepted
            assert got.reason == want.reason
            assert got.partition == want.partition
            if got.accepted:
                assert (
                    got.channel.channel_id == want.channel.channel_id
                )
        assert cached.rejections_by_reason == naive.rejections_by_reason
        for node in NODES:
            for link in (LinkRef.uplink(node), LinkRef.downlink(node)):
                assert cached.state.link_utilization(
                    link
                ) == naive.state.link_utilization(link)

    def test_release_keeps_cache_in_lockstep(self, paper_spec):
        ctrl = controller(SymmetricDPS())
        ids = [
            ctrl.request("a", dest, paper_spec).channel.channel_id
            for dest in ("b", "c", "d")
        ]
        ctrl.release(ids[1])
        up = LinkRef.uplink("a")
        assert ctrl.cache is not None
        assert ctrl.cache.link_load(up) == ctrl.state.link_load(up) == 2
        assert ctrl.cache.link_utilization(
            up
        ) == ctrl.state.link_utilization(up)
        # The freed capacity is immediately usable again.
        assert ctrl.request("a", "b", paper_spec).accepted
