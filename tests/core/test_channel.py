"""Tests for ChannelSpec, DeadlinePartition and RTChannel."""

from __future__ import annotations

import pytest

from repro.core.channel import (
    ChannelSpec,
    ChannelState,
    DeadlinePartition,
    RTChannel,
)
from repro.errors import ChannelParameterError, PartitioningError


class TestChannelSpec:
    def test_paper_parameters(self, paper_spec):
        assert paper_spec.period == 100
        assert paper_spec.capacity == 3
        assert paper_spec.deadline == 40

    def test_utilization(self, paper_spec):
        assert paper_spec.utilization == 0.03

    @pytest.mark.parametrize("field", ["period", "capacity", "deadline"])
    def test_nonpositive_rejected(self, field):
        kwargs = {"period": 10, "capacity": 2, "deadline": 8}
        kwargs[field] = 0
        with pytest.raises(ChannelParameterError):
            ChannelSpec(**kwargs)
        kwargs[field] = -3
        with pytest.raises(ChannelParameterError):
            ChannelSpec(**kwargs)

    def test_non_integer_rejected(self):
        with pytest.raises(ChannelParameterError):
            ChannelSpec(period=10.5, capacity=2, deadline=8)  # type: ignore[arg-type]

    def test_capacity_above_period_rejected(self):
        with pytest.raises(ChannelParameterError):
            ChannelSpec(period=5, capacity=6, deadline=10)

    def test_capacity_equal_period_allowed(self):
        spec = ChannelSpec(period=5, capacity=5, deadline=10)
        assert spec.utilization == 1.0

    def test_partitionable_boundary(self):
        assert ChannelSpec(period=10, capacity=3, deadline=6).is_partitionable()
        assert not ChannelSpec(
            period=10, capacity=3, deadline=5
        ).is_partitionable()

    def test_deadline_beyond_period_allowed(self):
        spec = ChannelSpec(period=10, capacity=2, deadline=25)
        assert spec.is_partitionable()

    def test_with_deadline(self, paper_spec):
        other = paper_spec.with_deadline(80)
        assert other.deadline == 80
        assert other.period == paper_spec.period
        assert paper_spec.deadline == 40  # original untouched

    def test_specs_are_ordered_and_hashable(self):
        a = ChannelSpec(period=10, capacity=1, deadline=5)
        b = ChannelSpec(period=10, capacity=2, deadline=5)
        assert a < b
        assert len({a, b, a}) == 2


class TestDeadlinePartition:
    def test_fractions(self):
        part = DeadlinePartition(uplink=30, downlink=10)
        assert part.total == 40
        assert part.uplink_fraction == 0.75
        assert part.downlink_fraction == 0.25

    def test_fractions_sum_to_one(self):
        part = DeadlinePartition(uplink=7, downlink=13)
        assert part.uplink_fraction + part.downlink_fraction == pytest.approx(1)

    @pytest.mark.parametrize("up,down", [(0, 5), (5, 0), (-1, 6), (6, -1)])
    def test_nonpositive_parts_rejected(self, up, down):
        with pytest.raises(PartitioningError):
            DeadlinePartition(uplink=up, downlink=down)

    def test_validate_for_accepts_legal(self, paper_spec):
        DeadlinePartition(uplink=20, downlink=20).validate_for(paper_spec)
        DeadlinePartition(uplink=3, downlink=37).validate_for(paper_spec)
        DeadlinePartition(uplink=37, downlink=3).validate_for(paper_spec)

    def test_validate_for_rejects_wrong_sum(self, paper_spec):
        with pytest.raises(PartitioningError, match="18.8"):
            DeadlinePartition(uplink=20, downlink=19).validate_for(paper_spec)

    def test_validate_for_rejects_below_capacity(self, paper_spec):
        with pytest.raises(PartitioningError, match="18.9"):
            DeadlinePartition(uplink=2, downlink=38).validate_for(paper_spec)
        with pytest.raises(PartitioningError, match="18.9"):
            DeadlinePartition(uplink=38, downlink=2).validate_for(paper_spec)


class TestChannelState:
    def test_terminal_states(self):
        assert ChannelState.REJECTED.is_terminal()
        assert ChannelState.TORN_DOWN.is_terminal()
        assert not ChannelState.ACTIVE.is_terminal()
        assert not ChannelState.REQUESTED.is_terminal()
        assert not ChannelState.OFFERED.is_terminal()


class TestRTChannel:
    def test_initial_state(self, paper_spec):
        channel = RTChannel(source="a", destination="b", spec=paper_spec)
        assert channel.state is ChannelState.REQUESTED
        assert channel.channel_id == -1
        assert channel.partition is None

    def test_self_loop_rejected(self, paper_spec):
        with pytest.raises(ChannelParameterError):
            RTChannel(source="a", destination="a", spec=paper_spec)

    def test_partition_accessors_require_partition(self, paper_spec):
        channel = RTChannel(source="a", destination="b", spec=paper_spec)
        with pytest.raises(PartitioningError):
            _ = channel.uplink_deadline
        with pytest.raises(PartitioningError):
            _ = channel.downlink_deadline

    def test_assign_partition_validates(self, paper_spec):
        channel = RTChannel(source="a", destination="b", spec=paper_spec)
        with pytest.raises(PartitioningError):
            channel.assign_partition(DeadlinePartition(uplink=1, downlink=39))
        channel.assign_partition(DeadlinePartition(uplink=25, downlink=15))
        assert channel.uplink_deadline == 25
        assert channel.downlink_deadline == 15

    def test_describe_contains_key_facts(self, paper_spec):
        channel = RTChannel(source="a", destination="b", spec=paper_spec)
        channel.channel_id = 7
        channel.assign_partition(DeadlinePartition(uplink=20, downlink=20))
        text = channel.describe()
        assert "#7" in text
        assert "a->b" in text
        assert "P=100" in text
        assert "d_iu=20" in text
