"""Tests for the switch-side channel manager (pure protocol logic)."""

from __future__ import annotations

import pytest

from repro.core.admission import AdmissionController, SystemState
from repro.core.channel import ChannelSpec, ChannelState
from repro.core.channel_manager import (
    NodeDirectory,
    SwitchChannelManager,
)
from repro.core.partitioning import SymmetricDPS
from repro.core.task import LinkRef
from repro.errors import ProtocolError
from repro.protocol.frames import RequestFrame, ResponseFrame, TeardownFrame

SWITCH_MAC = 0xFF_EE_DD_CC_BB_AA


def make_directory() -> NodeDirectory:
    directory = NodeDirectory()
    directory.register("a", mac=0x01, ip=0x0A000001)
    directory.register("b", mac=0x02, ip=0x0A000002)
    directory.register("c", mac=0x03, ip=0x0A000003)
    return directory


def make_manager(dps=None):
    directory = make_directory()
    admission = AdmissionController(
        SystemState(["a", "b", "c"]), dps or SymmetricDPS()
    )
    return SwitchChannelManager(
        admission=admission, directory=directory, switch_mac=SWITCH_MAC
    )


def request_frame(req_id=5, src=0x01, dst=0x02, p=100, c=3, d=40):
    return RequestFrame(
        connect_request_id=req_id,
        rt_channel_id=0,
        source_mac=src,
        destination_mac=dst,
        source_ip=0x0A000001,
        destination_ip=0x0A000002,
        period=p,
        capacity=c,
        deadline=d,
    )


class TestNodeDirectory:
    def test_lookup_both_ways(self):
        directory = make_directory()
        assert directory.by_name("a").mac == 0x01
        assert directory.by_mac(0x02).name == "b"
        assert directory.names() == ("a", "b", "c")

    def test_duplicate_name_rejected(self):
        directory = make_directory()
        with pytest.raises(ProtocolError):
            directory.register("a", mac=0x99, ip=0x01)

    def test_duplicate_mac_rejected(self):
        directory = make_directory()
        with pytest.raises(ProtocolError):
            directory.register("d", mac=0x01, ip=0x01)

    def test_unknown_lookups_raise(self):
        directory = make_directory()
        with pytest.raises(ProtocolError):
            directory.by_name("ghost")
        with pytest.raises(ProtocolError):
            directory.by_mac(0x42)


class TestHandleRequest:
    def test_feasible_request_forwarded_to_destination(self):
        manager = make_manager()
        actions = manager.handle_request(request_frame())
        assert len(actions) == 1
        action = actions[0]
        assert action.target == "b"
        assert isinstance(action.frame, RequestFrame)
        assert action.frame.rt_channel_id == 1  # stamped
        assert action.grant is None
        assert manager.pending_offers == 1

    def test_channel_reserved_while_offered(self):
        manager = make_manager()
        manager.handle_request(request_frame())
        state = manager.admission.state
        assert state.link_load(LinkRef.uplink("a")) == 1
        channel = state.channel(1)
        assert channel.state is ChannelState.OFFERED

    def test_infeasible_request_answered_directly(self):
        manager = make_manager()
        bad = request_frame(d=5)  # d < 2C
        actions = manager.handle_request(bad)
        assert len(actions) == 1
        action = actions[0]
        assert action.target == "a"  # straight back to the source
        assert isinstance(action.frame, ResponseFrame)
        assert not action.frame.ok
        assert action.frame.rt_channel_id == 0
        assert manager.pending_offers == 0

    def test_saturated_link_rejection(self, paper_spec):
        manager = make_manager()
        for i in range(6):
            actions = manager.handle_request(request_frame(req_id=i))
            manager.handle_response(
                ResponseFrame(
                    connect_request_id=i,
                    rt_channel_id=actions[0].frame.rt_channel_id,
                    switch_mac=SWITCH_MAC,
                    ok=True,
                )
            )
        actions = manager.handle_request(request_frame(req_id=7))
        assert isinstance(actions[0].frame, ResponseFrame)
        assert not actions[0].frame.ok

    def test_unknown_mac_raises(self):
        manager = make_manager()
        with pytest.raises(ProtocolError):
            manager.handle_request(request_frame(src=0x77))


class TestHandleResponse:
    def test_accept_produces_grant(self):
        manager = make_manager()
        offered = manager.handle_request(request_frame())[0]
        actions = manager.handle_response(
            ResponseFrame(
                connect_request_id=5,
                rt_channel_id=offered.frame.rt_channel_id,
                switch_mac=SWITCH_MAC,
                ok=True,
            )
        )
        assert len(actions) == 1
        action = actions[0]
        assert action.target == "a"
        assert isinstance(action.frame, ResponseFrame)
        assert action.frame.ok
        assert action.grant is not None
        assert action.grant.channel_id == offered.frame.rt_channel_id
        assert action.grant.uplink_deadline_slots == 20  # SDPS of 40
        channel = manager.admission.state.channel(action.grant.channel_id)
        assert channel.state is ChannelState.ACTIVE
        assert manager.pending_offers == 0

    def test_decline_releases_reservation(self):
        manager = make_manager()
        offered = manager.handle_request(request_frame())[0]
        actions = manager.handle_response(
            ResponseFrame(
                connect_request_id=5,
                rt_channel_id=offered.frame.rt_channel_id,
                switch_mac=SWITCH_MAC,
                ok=False,
            )
        )
        assert not actions[0].frame.ok
        assert actions[0].grant is None
        state = manager.admission.state
        assert state.link_load(LinkRef.uplink("a")) == 0
        assert len(state) == 0

    def test_unexpected_response_absorbed(self):
        # A response for an unknown channel (already resolved or its
        # lease reclaimed) is expected network behaviour under loss with
        # retransmission: count it, emit nothing, never raise.
        manager = make_manager()
        actions = manager.handle_response(
            ResponseFrame(
                connect_request_id=1,
                rt_channel_id=9,
                switch_mac=SWITCH_MAC,
                ok=True,
            )
        )
        assert actions == []
        assert manager.stale_frames == 1

    def test_duplicate_response_absorbed(self):
        manager = make_manager()
        offered = manager.handle_request(request_frame())[0]
        response = ResponseFrame(
            connect_request_id=5,
            rt_channel_id=offered.frame.rt_channel_id,
            switch_mac=SWITCH_MAC,
            ok=True,
        )
        first = manager.handle_response(response)
        assert first[0].grant is not None
        duplicate = manager.handle_response(response)
        assert duplicate == []
        assert manager.stale_frames == 1
        # the channel stays ACTIVE; the duplicate released nothing
        channel = manager.admission.state.channel(
            offered.frame.rt_channel_id
        )
        assert channel.state is ChannelState.ACTIVE


class TestTeardown:
    def test_teardown_releases_and_confirms(self):
        manager = make_manager()
        offered = manager.handle_request(request_frame())[0]
        channel_id = offered.frame.rt_channel_id
        manager.handle_response(
            ResponseFrame(
                connect_request_id=5,
                rt_channel_id=channel_id,
                switch_mac=SWITCH_MAC,
                ok=True,
            )
        )
        actions = manager.handle_teardown(
            TeardownFrame(connect_request_id=6, rt_channel_id=channel_id)
        )
        assert actions == []  # fire-and-forget release
        assert len(manager.admission.state) == 0
        state = manager.admission.state
        assert state.link_load(LinkRef.uplink("a")) == 0

    def test_duplicate_teardown_absorbed(self):
        # Nodes repeat TeardownFrames on lossy wires; the second copy
        # must be a counted no-op, not a crash.
        manager = make_manager()
        offered = manager.handle_request(request_frame())[0]
        channel_id = offered.frame.rt_channel_id
        manager.handle_response(
            ResponseFrame(
                connect_request_id=5,
                rt_channel_id=channel_id,
                switch_mac=SWITCH_MAC,
                ok=True,
            )
        )
        teardown = TeardownFrame(connect_request_id=0, rt_channel_id=channel_id)
        assert manager.handle_teardown(teardown) == []
        assert manager.handle_teardown(teardown) == []
        assert manager.stale_frames == 1
        assert len(manager.admission.state) == 0

    def test_teardown_for_never_established_channel_absorbed(self):
        manager = make_manager()
        actions = manager.handle_teardown(
            TeardownFrame(connect_request_id=0, rt_channel_id=999)
        )
        assert actions == []
        assert manager.stale_frames == 1


def make_lease_manager(lease_ns=1000):
    directory = make_directory()
    admission = AdmissionController(
        SystemState(["a", "b", "c"]), SymmetricDPS()
    )
    return SwitchChannelManager(
        admission=admission,
        directory=directory,
        switch_mac=SWITCH_MAC,
        lease_ns=lease_ns,
    )


class TestReservationLeases:
    def test_expired_offer_reclaims_capacity(self):
        manager = make_lease_manager(lease_ns=1000)
        manager.handle_request(request_frame(), now=0)
        assert manager.pending_offers == 1
        assert manager.reclaim_expired(now=999) == ()
        assert manager.reclaim_expired(now=1000) == (1,)
        assert manager.pending_offers == 0
        assert manager.lease_reclaims == 1
        state = manager.admission.state
        assert len(state) == 0
        assert state.link_load(LinkRef.uplink("a")) == 0

    def test_late_response_after_reclaim_absorbed(self):
        manager = make_lease_manager(lease_ns=1000)
        offered = manager.handle_request(request_frame(), now=0)[0]
        manager.reclaim_expired(now=2000)
        actions = manager.handle_response(
            ResponseFrame(
                connect_request_id=5,
                rt_channel_id=offered.frame.rt_channel_id,
                switch_mac=SWITCH_MAC,
                ok=True,
            ),
            now=2000,
        )
        assert actions == []
        assert manager.stale_frames == 1

    def test_duplicate_request_reforwards_offer_and_refreshes_lease(self):
        manager = make_lease_manager(lease_ns=1000)
        first = manager.handle_request(request_frame(), now=0)
        again = manager.handle_request(request_frame(), now=500)
        # identical stamped offer re-forwarded, no second admission run
        assert again[0].frame == first[0].frame
        assert len(manager.decisions) == 1
        assert manager.duplicate_requests == 1
        assert manager.pending_offers == 1
        # the lease was refreshed: expiry moved from 1000 to 1500
        assert manager.reclaim_expired(now=1000) == ()
        assert manager.reclaim_expired(now=1500) == (1,)

    def test_duplicate_request_after_verdict_reanswers(self):
        manager = make_lease_manager(lease_ns=1000)
        offered = manager.handle_request(request_frame(), now=0)[0]
        channel_id = offered.frame.rt_channel_id
        final = manager.handle_response(
            ResponseFrame(
                connect_request_id=5,
                rt_channel_id=channel_id,
                switch_mac=SWITCH_MAC,
                ok=True,
            ),
            now=100,
        )[0]
        # the final response was lost; the source retransmits
        replay = manager.handle_request(request_frame(), now=200)
        assert len(manager.decisions) == 1  # no second admission run
        assert replay[0].target == "a"
        assert replay[0].frame.ok
        assert replay[0].frame.rt_channel_id == channel_id
        assert replay[0].grant == final.grant

    def test_duplicate_request_after_rejection_reanswers(self):
        manager = make_lease_manager(lease_ns=1000)
        bad = request_frame(d=5)  # d < 2C: rejected outright
        manager.handle_request(bad, now=0)
        replay = manager.handle_request(bad, now=100)
        assert len(manager.decisions) == 1
        assert not replay[0].frame.ok
        assert replay[0].grant is None

    def test_teardown_purges_reanswer_cache(self):
        manager = make_lease_manager(lease_ns=1000)
        offered = manager.handle_request(request_frame(), now=0)[0]
        channel_id = offered.frame.rt_channel_id
        manager.handle_response(
            ResponseFrame(
                connect_request_id=5,
                rt_channel_id=channel_id,
                switch_mac=SWITCH_MAC,
                ok=True,
            ),
            now=100,
        )
        manager.handle_teardown(
            TeardownFrame(connect_request_id=0, rt_channel_id=channel_id)
        )
        # the channel is dead: a same-keyed request must be admitted
        # fresh, never answered with the stale grant.
        fresh = manager.handle_request(request_frame(), now=200)
        assert len(manager.decisions) == 2
        assert isinstance(fresh[0].frame, RequestFrame)

    def test_verdict_cache_expires(self):
        manager = make_lease_manager(lease_ns=1000)
        bad = request_frame(d=5)
        manager.handle_request(bad, now=0)
        # past the response-cache TTL the key is treated as a new request
        from repro.core.channel_manager import DEFAULT_RESPONSE_CACHE_NS

        manager.handle_request(bad, now=DEFAULT_RESPONSE_CACHE_NS + 1)
        assert len(manager.decisions) == 2

    def test_no_lease_means_no_expiry(self):
        manager = make_manager()
        manager.handle_request(request_frame())
        assert manager.reclaim_expired(now=10**15) == ()
        assert manager.pending_offers == 1


class TestForwardingLookup:
    def test_destination_of(self):
        manager = make_manager()
        offered = manager.handle_request(request_frame())[0]
        channel_id = offered.frame.rt_channel_id
        manager.handle_response(
            ResponseFrame(
                connect_request_id=5,
                rt_channel_id=channel_id,
                switch_mac=SWITCH_MAC,
                ok=True,
            )
        )
        assert manager.destination_of(channel_id) == "b"
