"""Tests for the EDF feasibility analysis (Section 18.3.2).

Includes hand-computed demand values, classic schedulability corner
cases, the Liu & Layland shortcut, and differential tests of the fast
(control-point) implementation against the naive integer scan.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.core.feasibility import (
    busy_period,
    control_points,
    demand,
    demand_many,
    hyperperiod,
    is_feasible,
    is_feasible_naive,
    utilization,
)
from repro.errors import ConfigurationError
from tests.conftest import make_tasks


class TestUtilization:
    def test_empty_set(self):
        assert utilization([]) == 0

    def test_single_task(self):
        tasks = make_tasks([(100, 3, 20)])
        assert utilization(tasks) == Fraction(3, 100)

    def test_sum_is_exact(self):
        # 1/3 + 1/6 + 1/2 == 1 exactly; floats would wobble.
        tasks = make_tasks([(3, 1, 3), (6, 1, 6), (2, 1, 2)])
        assert utilization(tasks) == 1

    def test_overload_detected_exactly(self):
        tasks = make_tasks([(3, 1, 3), (6, 1, 6), (2, 1, 2), (100, 1, 50)])
        assert utilization(tasks) > 1


class TestHyperperiod:
    def test_empty(self):
        assert hyperperiod([]) == 1

    def test_coprime_periods(self):
        assert hyperperiod(make_tasks([(3, 1, 3), (5, 1, 5)])) == 15

    def test_harmonic_periods(self):
        assert hyperperiod(make_tasks([(10, 1, 10), (20, 1, 20), (40, 1, 40)])) == 40


class TestDemand:
    def test_zero_before_first_deadline(self):
        tasks = make_tasks([(100, 3, 20)])
        assert demand(tasks, 19) == 0
        assert demand(tasks, 0) == 0

    def test_steps_at_deadline(self):
        tasks = make_tasks([(100, 3, 20)])
        assert demand(tasks, 20) == 3
        assert demand(tasks, 119) == 3
        assert demand(tasks, 120) == 6  # second job deadline at P + d

    def test_multiple_tasks_sum(self):
        tasks = make_tasks([(10, 2, 5), (20, 4, 10)])
        # t=10: task0 jobs with deadlines 5 -> 1 job? deadlines 5, 15...
        # 1 + (10-5)//10 = 1 job (deadline 15 > 10); task1: 1 job.
        assert demand(tasks, 10) == 2 * 1 + 4 * 1

    def test_negative_instant_rejected(self):
        with pytest.raises(ConfigurationError):
            demand(make_tasks([(10, 1, 5)]), -1)

    def test_demand_many_matches_scalar(self):
        tasks = make_tasks([(10, 2, 5), (20, 4, 10), (7, 1, 3)])
        instants = np.arange(0, 150, dtype=np.int64)
        vec = demand_many(tasks, instants)
        for t in instants:
            assert vec[t] == demand(tasks, int(t))

    def test_demand_many_empty_inputs(self):
        assert demand_many([], np.array([1, 2, 3])).tolist() == [0, 0, 0]
        tasks = make_tasks([(10, 2, 5)])
        assert demand_many(tasks, np.array([], dtype=np.int64)).size == 0


class TestBusyPeriod:
    def test_empty_set(self):
        assert busy_period([]) == 0

    def test_single_task(self):
        assert busy_period(make_tasks([(100, 3, 20)])) == 3

    def test_identical_tasks_sum_capacity(self):
        # Q tasks of C=3: first busy period = 3Q while 3Q <= P.
        tasks = make_tasks([(100, 3, 20)] * 6)
        assert busy_period(tasks) == 18

    def test_full_utilization(self):
        assert busy_period(make_tasks([(4, 2, 4), (4, 2, 4)])) == 4

    def test_growth_across_periods(self):
        # C=3,P=4 and C=1,P=8: L0=4, W(4)=3+1=4 -> fixpoint 4.
        assert busy_period(make_tasks([(4, 3, 4), (8, 1, 8)])) == 4
        # heavier: C=3,P=4, C=3,P=16: L0=6, W(6)=6+3=9, W(9)=9+3=12,
        # W(12)=9+3=12 -> 12.
        assert busy_period(make_tasks([(4, 3, 4), (16, 3, 16)])) == 12

    def test_overutilized_rejected(self):
        with pytest.raises(ConfigurationError):
            busy_period(make_tasks([(2, 2, 2), (3, 2, 3)]))


class TestControlPoints:
    def test_empty(self):
        assert control_points([], 100).size == 0

    def test_deadline_beyond_horizon_excluded(self):
        tasks = make_tasks([(10, 1, 50)])
        assert control_points(tasks, 49).size == 0
        assert control_points(tasks, 50).tolist() == [50]

    def test_points_are_m_p_plus_d(self):
        tasks = make_tasks([(10, 1, 4)])
        assert control_points(tasks, 40).tolist() == [4, 14, 24, 34]

    def test_deduplication_across_tasks(self):
        tasks = make_tasks([(10, 1, 4), (5, 1, 4)])
        points = control_points(tasks, 20)
        assert points.tolist() == sorted(set([4, 14] + [4, 9, 14, 19]))

    def test_negative_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            control_points(make_tasks([(10, 1, 4)]), -1)


class TestIsFeasible:
    def test_empty_set_feasible(self):
        report = is_feasible([])
        assert report.feasible

    def test_liu_layland_shortcut_taken(self):
        tasks = make_tasks([(10, 3, 10), (20, 8, 20)])
        report = is_feasible(tasks)
        assert report.feasible
        assert report.used_liu_layland
        assert report.points_checked == 0

    def test_liu_layland_overload(self):
        tasks = make_tasks([(10, 6, 10), (20, 10, 20)])
        report = is_feasible(tasks)
        assert not report.feasible
        assert report.link_utilization == Fraction(11, 10)

    def test_paper_sdps_boundary_six_channels(self):
        # SDPS on the Figure 18.5 workload: d_iu = 20, C = 3, P = 100.
        # h(20) = 3Q <= 20 -> feasible up to Q = 6, infeasible at 7.
        six = make_tasks([(100, 3, 20)] * 6)
        seven = make_tasks([(100, 3, 20)] * 7)
        assert is_feasible(six).feasible
        report = is_feasible(seven)
        assert not report.feasible
        assert report.violation == (20, 21)

    def test_constrained_deadline_infeasible_despite_low_utilization(self):
        # Two tasks, each C=3 d=4: h(4) = 6 > 4 although U = 0.06.
        tasks = make_tasks([(100, 3, 4), (100, 3, 4)])
        report = is_feasible(tasks)
        assert not report.feasible
        assert report.link_utilization < 1

    def test_exact_full_utilization_feasible(self):
        # Implicit deadlines, U == 1 exactly: feasible under EDF.
        tasks = make_tasks([(2, 1, 2), (4, 1, 4), (8, 2, 8)])
        assert utilization(tasks) == 1
        assert is_feasible(tasks).feasible

    def test_report_bool(self):
        assert bool(is_feasible([]))
        assert not bool(is_feasible(make_tasks([(10, 6, 10), (10, 6, 10)])))

    def test_violation_instant_is_a_control_point(self):
        tasks = make_tasks([(100, 3, 4), (100, 3, 4)])
        report = is_feasible(tasks)
        assert report.violation is not None
        t, h = report.violation
        assert t == 4 and h == 6


class TestDifferentialFastVsNaive:
    CASES = [
        [(100, 3, 20)] * 5,
        [(100, 3, 20)] * 7,
        [(10, 2, 5), (20, 4, 10)],
        [(10, 2, 5), (20, 4, 10), (7, 1, 3)],
        [(4, 3, 4), (16, 3, 16)],
        [(2, 1, 2), (4, 1, 4), (8, 2, 8)],
        [(100, 3, 4), (100, 3, 4)],
        [(12, 4, 6), (9, 3, 5)],
        [(50, 10, 25), (30, 5, 12), (20, 2, 9)],
    ]

    @pytest.mark.parametrize("params", CASES)
    def test_same_verdict(self, params):
        tasks = make_tasks(params)
        fast = is_feasible(tasks)
        naive = is_feasible_naive(tasks)
        assert fast.feasible == naive.feasible

    @pytest.mark.parametrize("params", CASES)
    def test_fast_checks_no_more_points(self, params):
        tasks = make_tasks(params)
        fast = is_feasible(tasks)
        naive = is_feasible_naive(tasks)
        if not fast.used_liu_layland and naive.points_checked:
            assert fast.points_checked <= naive.points_checked
