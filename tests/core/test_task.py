"""Tests for LinkRef/LinkTask (the supposed tasks of Eq. 18.6/18.7)."""

from __future__ import annotations

import pytest

from repro.core.channel import ChannelSpec, DeadlinePartition, RTChannel
from repro.core.task import LinkDirection, LinkRef, LinkTask
from repro.errors import ChannelParameterError


class TestLinkRef:
    def test_uplink_downlink_distinct(self):
        assert LinkRef.uplink("a") != LinkRef.downlink("a")

    def test_same_direction_same_node_equal(self):
        assert LinkRef.uplink("a") == LinkRef.uplink("a")

    def test_hashable_and_sortable(self):
        refs = {LinkRef.uplink("a"), LinkRef.downlink("a"), LinkRef.uplink("b")}
        assert len(refs) == 3
        assert sorted(refs)  # does not raise

    def test_direction_opposite(self):
        assert LinkDirection.UPLINK.opposite is LinkDirection.DOWNLINK
        assert LinkDirection.DOWNLINK.opposite is LinkDirection.UPLINK


class TestLinkTask:
    def test_valid_task(self, uplink):
        task = LinkTask(link=uplink, period=100, capacity=3, deadline=20)
        assert task.utilization == 0.03

    @pytest.mark.parametrize("field,value", [
        ("period", 0), ("capacity", 0), ("deadline", 0),
        ("period", -1), ("capacity", -2), ("deadline", -3),
    ])
    def test_nonpositive_rejected(self, uplink, field, value):
        kwargs = dict(link=uplink, period=100, capacity=3, deadline=20)
        kwargs[field] = value
        with pytest.raises(ChannelParameterError):
            LinkTask(**kwargs)

    def test_capacity_above_period_rejected(self, uplink):
        with pytest.raises(ChannelParameterError):
            LinkTask(link=uplink, period=2, capacity=3, deadline=5)

    def test_deadline_below_capacity_rejected(self, uplink):
        # Eq. 18.9: deadline < WCET can never be met.
        with pytest.raises(ChannelParameterError, match="18.9"):
            LinkTask(link=uplink, period=100, capacity=3, deadline=2)

    def test_deadline_equal_capacity_allowed(self, uplink):
        LinkTask(link=uplink, period=100, capacity=3, deadline=3)


class TestPairForChannel:
    def test_pair_matches_eq_18_6_and_18_7(self, paper_spec):
        channel = RTChannel(source="src", destination="dst", spec=paper_spec)
        channel.channel_id = 9
        channel.assign_partition(DeadlinePartition(uplink=25, downlink=15))
        up, down = LinkTask.pair_for_channel(channel)
        assert up.link == LinkRef.uplink("src")
        assert down.link == LinkRef.downlink("dst")
        assert up.period == down.period == paper_spec.period
        assert up.capacity == down.capacity == paper_spec.capacity
        assert up.deadline == 25
        assert down.deadline == 15
        assert up.channel_id == down.channel_id == 9

    def test_pair_requires_partition(self, paper_spec):
        channel = RTChannel(source="src", destination="dst", spec=paper_spec)
        with pytest.raises(Exception):
            LinkTask.pair_for_channel(channel)
