"""Tests for the capacity-planning helper and rejection accounting."""

from __future__ import annotations

import pytest

from repro.core.admission import (
    AdmissionController,
    RejectionReason,
    SystemState,
)
from repro.core.channel import ChannelSpec
from repro.core.feasibility import max_additional_tasks
from repro.core.partitioning import SymmetricDPS
from repro.core.task import LinkRef, LinkTask
from repro.errors import ConfigurationError
from tests.conftest import make_tasks

LINK = LinkRef.uplink("m")


def candidate(deadline=20, capacity=3, period=100) -> LinkTask:
    return LinkTask(
        link=LINK, period=period, capacity=capacity, deadline=deadline
    )


class TestMaxAdditionalTasks:
    def test_figure_18_5_saturation_points(self):
        """Analytic confirmation of the figure's plateaus."""
        # SDPS: d_iu = 20 -> 6 channels per uplink.
        assert max_additional_tasks([], candidate(deadline=20)) == 6
        # ADPS end state: d_iu -> 37 (d - C) -> 12 channels per uplink.
        assert max_additional_tasks([], candidate(deadline=37)) == 12

    def test_existing_load_reduces_headroom(self):
        existing = make_tasks([(100, 3, 20)] * 4, node="m")
        assert max_additional_tasks(existing, candidate(deadline=20)) == 2

    def test_utilization_limited_regime(self):
        # d = P = 100: Liu & Layland, U <= 1 -> floor(100/3) = 33.
        assert max_additional_tasks([], candidate(deadline=100)) == 33

    def test_zero_headroom(self):
        existing = make_tasks([(100, 3, 20)] * 6, node="m")
        assert max_additional_tasks(existing, candidate(deadline=20)) == 0

    def test_upper_bound_respected(self):
        assert max_additional_tasks(
            [], candidate(deadline=100), upper_bound=10
        ) == 10

    def test_infeasible_existing_rejected(self):
        existing = make_tasks([(100, 3, 4), (100, 3, 4)], node="m")
        with pytest.raises(ConfigurationError, match="already infeasible"):
            max_additional_tasks(existing, candidate())

    def test_negative_upper_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            max_additional_tasks([], candidate(), upper_bound=-1)


class TestRejectionHistogram:
    def test_reasons_counted(self):
        ctrl = AdmissionController(
            SystemState(["a", "b"]), SymmetricDPS()
        )
        spec = ChannelSpec(period=100, capacity=3, deadline=40)
        ctrl.request("a", "ghost", spec)
        ctrl.request("a", "b", ChannelSpec(period=100, capacity=3, deadline=5))
        for _ in range(8):
            ctrl.request("a", "b", spec)
        histogram = ctrl.rejections_by_reason
        assert histogram[RejectionReason.UNKNOWN_NODE] == 1
        assert histogram[RejectionReason.NOT_PARTITIONABLE] == 1
        assert histogram[RejectionReason.UPLINK_INFEASIBLE] == 2  # 7th, 8th
        assert sum(histogram.values()) == ctrl.reject_count

    def test_would_accept_rolls_back_histogram(self):
        ctrl = AdmissionController(
            SystemState(["a", "b"]), SymmetricDPS()
        )
        ctrl.would_accept("a", "ghost", ChannelSpec(100, 3, 40))
        assert ctrl.rejections_by_reason.get(
            RejectionReason.UNKNOWN_NODE, 0
        ) == 0
        assert ctrl.reject_count == 0
