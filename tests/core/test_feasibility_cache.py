"""Tests for the incremental per-link feasibility cache.

The cache's contract is *verdict equality* with the from-scratch
:func:`repro.core.feasibility.is_feasible` under any interleaving of
``check`` / ``install`` / ``release`` -- these tests drive randomized
histories against a mirrored reference task list and also pin each
internal fast path (density shortcut, beyond-horizon shortcut, sticky
infeasible memo, graft-on-install, drift resync, size-guard fallback)
individually so a regression names the mechanism that broke.
"""

from __future__ import annotations

import random

import pytest

from repro.core.admission import SystemState
from repro.core.channel import (
    ChannelSpec,
    ChannelState,
    DeadlinePartition,
    RTChannel,
)
from repro.core.feasibility import is_feasible
from repro.core.feasibility_cache import (
    FeasibilityCache,
    LinkCacheEntry,
    MAX_CACHED_POINTS,
)
from repro.core.task import LinkRef, LinkTask
from repro.errors import UnknownChannelError

LINK = LinkRef.uplink("cache-node")


def task(period, capacity, deadline, channel_id=-1, link=LINK):
    return LinkTask(
        link=link,
        period=period,
        capacity=capacity,
        deadline=deadline,
        channel_id=channel_id,
    )


def reference(installed, candidate):
    return is_feasible(list(installed) + [candidate])


class TestVerdictParity:
    def test_randomized_histories_match_reference(self):
        """check/install/release in random order: verdicts always agree."""
        rng = random.Random(18_5)
        for _ in range(3):
            cache = FeasibilityCache()
            mirror: list[LinkTask] = []
            next_id = 0
            for _ in range(120):
                period = rng.choice((10, 20, 25, 40, 50, 100))
                capacity = rng.randint(1, max(1, period // 4))
                deadline = rng.randint(capacity, 2 * period)
                candidate = task(period, capacity, deadline, next_id)
                report = cache.check(candidate)
                expected = reference(mirror, candidate)
                assert report.feasible == expected.feasible, (
                    f"verdict diverged for {candidate} over {mirror}"
                )
                assert report.link_utilization == expected.link_utilization
                roll = rng.random()
                if roll < 0.45 and report.feasible:
                    cache.install(candidate)
                    mirror.append(candidate)
                    next_id += 1
                elif roll < 0.60 and mirror:
                    victim = rng.choice(mirror)
                    cache.release(LINK, victim.channel_id)
                    mirror.remove(victim)
            stats = cache.stats
            assert stats.checks == 120
            assert (
                stats.memo_hits
                + stats.incremental_checks
                + stats.shortcut_accepts
                + stats.full_fallbacks
                == stats.checks
            )

    def test_incremental_report_fields_match_reference(self):
        """A fresh (non-shortcut) overlay matches the reference report
        field-for-field, not just in verdict."""
        cache = FeasibilityCache()
        installed = []
        # Dense deadlines keep density > 1, forcing the exact path.
        for cid, deadline in enumerate((12, 14, 16, 18)):
            t = task(100, 6, deadline, cid)
            cache.install(t)
            installed.append(t)
        for deadline in (13, 20, 35, 90):
            candidate = task(100, 6, deadline)
            got = cache.check(candidate)
            want = reference(installed, candidate)
            assert got.feasible == want.feasible
            assert got.link_utilization == want.link_utilization
            assert got.horizon == want.horizon
            assert got.violation == want.violation

    def test_infeasible_verdict_and_violation_point(self):
        cache = FeasibilityCache()
        for cid in range(4):
            cache.install(task(100, 6, 18, cid))
        candidate = task(100, 6, 18)
        got = cache.check(candidate)
        want = reference([task(100, 6, 18, c) for c in range(4)], candidate)
        assert not want.feasible
        assert not got.feasible
        assert got.violation == want.violation


class TestShortcutPaths:
    def test_density_shortcut_accepts_and_matches_reference(self):
        cache = FeasibilityCache()
        base = task(100, 2, 50, 0)
        cache.install(base)
        candidate = task(100, 3, 40)
        report = cache.check(candidate)
        want = reference([base], candidate)
        assert report.feasible and want.feasible
        assert cache.stats.shortcut_accepts == 1
        # The density path still runs the busy-period fixpoint so even
        # the report horizon matches the from-scratch test.
        assert report.horizon == want.horizon
        assert report.points_checked == 0  # the shortcut's signature

    def test_beyond_horizon_shortcut(self):
        cache = FeasibilityCache()
        cache.install(task(100, 2, 4, 0))
        cache.install(task(100, 2, 5, 1))
        cache.check(task(100, 2, 6))  # materialize the base arrays
        before = cache.stats.shortcut_accepts
        # Density 2/4 + 2/5 + 30/95 > 1 forces the exact path; the
        # combined busy period (34) stays below the candidate deadline
        # (95), so the candidate cannot violate anywhere.
        candidate = task(100, 30, 95)
        report = cache.check(candidate)
        assert report.feasible
        assert cache.stats.shortcut_accepts == before + 1
        assert reference(
            [task(100, 2, 4, 0), task(100, 2, 5, 1)], candidate
        ).feasible

    def test_infeasible_memo_survives_installs(self):
        """Sticky rejection: demand monotonicity keeps memo_i valid."""
        cache = FeasibilityCache()
        for cid in range(4):
            cache.install(task(100, 6, 18, cid))
        rejected = task(100, 6, 18)
        assert not cache.check(rejected).feasible
        cache.install(task(100, 2, 90, 99))
        hits_before = cache.stats.memo_hits
        report = cache.check(rejected)
        assert not report.feasible
        assert cache.stats.memo_hits == hits_before + 1
        # And the sticky verdict is still the true verdict.
        mirror = [task(100, 6, 18, c) for c in range(4)]
        mirror.append(task(100, 2, 90, 99))
        assert not reference(mirror, rejected).feasible

    def test_feasible_memo_dies_on_install(self):
        cache = FeasibilityCache()
        cache.install(task(100, 10, 30, 0))
        candidate = task(100, 10, 30)
        assert cache.check(candidate).feasible
        cache.install(task(100, 10, 30, 1))
        hits_before = cache.stats.memo_hits
        cache.check(candidate)  # must re-evaluate, not hit a stale memo
        assert cache.stats.memo_hits == hits_before

    def test_repeated_check_hits_memo(self):
        cache = FeasibilityCache()
        cache.install(task(100, 3, 40, 0))
        candidate = task(100, 3, 40)
        first = cache.check(candidate)
        second = cache.check(candidate)
        assert cache.stats.memo_hits == 1
        assert first is second  # the exact memoized report


class TestInstallGraft:
    def test_grafted_arrays_equal_fresh_rebuild(self):
        """After check-then-install cycles the entry's cached arrays are
        identical to those of a freshly built entry -- the graft (and
        its next_pt bookkeeping) introduces no drift."""
        cache = FeasibilityCache()
        installed = []
        for cid, (c, d) in enumerate(
            ((6, 18), (6, 25), (4, 33), (5, 60), (3, 97))
        ):
            candidate = task(100, c, d, cid)
            if cache.check(candidate).feasible:
                cache.install(candidate)
                installed.append(candidate)
        entry = cache.entry(LINK)
        entry._ensure_base()
        fresh = LinkCacheEntry(LINK, installed)
        fresh._ensure_base()
        assert entry.points == fresh.points
        assert entry.demands == fresh.demands
        assert entry.busy == fresh.busy
        assert entry.horizon == fresh.horizon
        assert entry.next_pt == fresh.next_pt
        assert entry.util == fresh.util

    def test_release_then_check_matches_reference(self):
        cache = FeasibilityCache()
        mirror = []
        for cid in range(5):
            t = task(100, 5, 30 + 10 * cid, cid)
            cache.install(t)
            mirror.append(t)
        cache.release(LINK, 2)
        del mirror[2]
        candidate = task(100, 12, 45)
        got = cache.check(candidate)
        want = reference(mirror, candidate)
        assert got.feasible == want.feasible
        assert got.link_utilization == want.link_utilization

    def test_release_unknown_channel_raises(self):
        cache = FeasibilityCache()
        cache.install(task(100, 3, 40, 7))
        with pytest.raises(UnknownChannelError):
            cache.release(LINK, 8)


class TestFallbacks:
    def test_infeasible_base_falls_back_to_reference(self):
        """A base set that is itself infeasible disables the overlay."""
        cache = FeasibilityCache()
        for cid in range(5):  # five C=6 d=18 tasks: h(18)=30 > 18
            cache.install(task(100, 6, 18, cid))
        candidate = task(100, 1, 90)
        report = cache.check(candidate)
        want = reference([task(100, 6, 18, c) for c in range(5)], candidate)
        assert report.feasible == want.feasible
        assert not report.feasible
        assert cache.stats.full_fallbacks == 1

    def test_size_guard_falls_back_but_stays_correct(self, monkeypatch):
        import repro.core.feasibility_cache as fc

        assert MAX_CACHED_POINTS > 4
        monkeypatch.setattr(fc, "MAX_CACHED_POINTS", 4)
        cache = FeasibilityCache()
        mirror = []
        # Dense deadlines (density > 1) keep the exact path in play, so
        # the overlay's point estimate actually hits the shrunken cap.
        for cid in range(4):
            t = task(100, 6, 18 + 2 * cid, cid)
            cache.install(t)
            mirror.append(t)
        candidate = task(100, 6, 26)
        report = cache.check(candidate)
        want = reference(mirror, candidate)
        assert report.feasible == want.feasible
        assert cache.stats.full_fallbacks >= 1

    def test_overutilized_candidate_rejected_instantly(self):
        cache = FeasibilityCache()
        cache.install(task(10, 6, 10, 0))
        report = cache.check(task(10, 5, 10))
        assert not report.feasible
        assert report.link_utilization > 1

    def test_all_implicit_uses_liu_layland(self):
        cache = FeasibilityCache()
        cache.install(task(50, 10, 50, 0))
        report = cache.check(task(100, 20, 100))
        assert report.feasible
        assert report.used_liu_layland


class TestDriftResync:
    def test_external_state_mutation_triggers_resync(self, paper_spec):
        state = SystemState(["a", "b"])
        cache = FeasibilityCache(state)
        up = LinkRef.uplink("a")
        candidate = task(100, 3, 20, link=up)
        assert cache.check(candidate).feasible
        # Mutate the shared state behind the cache's back (the
        # documented escape hatch is count-changing mutations).
        channel = RTChannel(source="a", destination="b", spec=paper_spec)
        channel.channel_id = 1
        channel.assign_partition(DeadlinePartition(uplink=20, downlink=20))
        channel.state = ChannelState.ACTIVE
        state.install(channel)
        report = cache.check(candidate)
        assert cache.stats.resyncs >= 1
        want = reference(state.tasks_on(up), candidate)
        assert report.feasible == want.feasible
        assert report.link_utilization == want.link_utilization

    def test_epoch_advances_on_every_mutation(self):
        cache = FeasibilityCache()
        first = cache.epoch_of(LINK)
        cache.install(task(100, 3, 40, 0))
        second = cache.epoch_of(LINK)
        cache.release(LINK, 0)
        third = cache.epoch_of(LINK)
        assert first < second < third

    def test_invalidate_forgets_entries(self):
        cache = FeasibilityCache()
        cache.install(task(100, 3, 40, 0))
        assert cache.link_load(LINK) == 1
        cache.invalidate(LINK)
        assert cache.link_load(LINK) == 0  # authoritative cache: empty
        cache.install(task(100, 3, 40, 1))
        cache.invalidate()
        assert cache.link_load(LINK) == 0


class TestMultiLinkIndependence:
    def test_links_do_not_interfere(self):
        cache = FeasibilityCache()
        other = LinkRef.downlink("cache-node-2")
        cache.install(task(100, 6, 18, 0))
        cache.install(task(100, 6, 18, 1, link=other))
        # LINK has one 6/18 task; four more fit exactly (h(18)=30>18 at
        # five), so the fifth is rejected on LINK but the same shape is
        # still fine on the lightly loaded other link.
        for cid in range(2, 4):
            assert cache.check(task(100, 6, 18, cid)).feasible
            cache.install(task(100, 6, 18, cid))
        assert cache.link_load(LINK) == 3
        assert cache.link_load(other) == 1
        assert cache.check(task(100, 6, 18, link=other)).feasible

    def test_spec_to_channel_spec_alignment(self):
        spec = ChannelSpec(period=100, capacity=3, deadline=40)
        assert spec.is_partitionable()
