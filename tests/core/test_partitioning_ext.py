"""Tests for the extension DPS schemes (UDPS, LaxityDPS, SearchDPS)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.core.channel import ChannelSpec, DeadlinePartition
from repro.core.partitioning_ext import LaxityDPS, SearchDPS, UtilizationDPS
from repro.core.task import LinkRef
from repro.errors import PartitioningError


class StubLoads:
    def __init__(self, loads=None, utils=None):
        self._loads = loads or {}
        self._utils = utils or {}

    def link_load(self, link):
        return self._loads.get(link, 0)

    def link_utilization(self, link):
        return self._utils.get(link, Fraction(0))


class TestUtilizationDPS:
    def test_proportional_to_utilization(self, paper_spec):
        utils = {
            LinkRef.uplink("a"): Fraction(30, 100),
            LinkRef.downlink("b"): Fraction(10, 100),
        }
        part = UtilizationDPS().partition(
            "a", "b", paper_spec, StubLoads(utils=utils)
        )
        # 40 * 3/4 = 30
        assert (part.uplink, part.downlink) == (30, 10)

    def test_zero_utilization_falls_back_to_half(self, paper_spec):
        part = UtilizationDPS().partition("a", "b", paper_spec, StubLoads())
        assert (part.uplink, part.downlink) == (20, 20)

    def test_result_always_legal(self, paper_spec):
        for num in range(0, 12):
            utils = {
                LinkRef.uplink("a"): Fraction(num, 12),
                LinkRef.downlink("b"): Fraction(12 - num, 12),
            }
            part = UtilizationDPS().partition(
                "a", "b", paper_spec, StubLoads(utils=utils)
            )
            part.validate_for(paper_spec)


class TestLaxityDPS:
    def test_mandatory_capacity_first(self):
        spec = ChannelSpec(period=100, capacity=10, deadline=22)
        loads = StubLoads({LinkRef.uplink("a"): 100, LinkRef.downlink("b"): 1})
        part = LaxityDPS().partition("a", "b", spec, loads)
        # slack = 2; uplink gets C + ~2, downlink at least C.
        assert part.uplink >= 10 and part.downlink >= 10
        assert part.total == 22

    def test_matches_adps_direction(self, paper_spec):
        loads = StubLoads({LinkRef.uplink("a"): 9, LinkRef.downlink("b"): 1})
        part = LaxityDPS().partition("a", "b", paper_spec, loads)
        # slack 34, uplink extra = 34*0.9 = 30.6 -> 31; d_iu = 34.
        assert part.uplink == 34
        assert part.downlink == 6

    def test_zero_loads_even_slack(self, paper_spec):
        part = LaxityDPS().partition("a", "b", paper_spec, StubLoads())
        assert (part.uplink, part.downlink) == (20, 20)

    def test_never_needs_clamping(self):
        """Outputs satisfy Eq. 18.9 by construction, even extreme loads."""
        spec = ChannelSpec(period=100, capacity=7, deadline=15)
        for up in (0, 1, 5, 1000):
            for down in (0, 1, 5, 1000):
                loads = StubLoads(
                    {LinkRef.uplink("a"): up, LinkRef.downlink("b"): down}
                )
                part = LaxityDPS().partition("a", "b", spec, loads)
                part.validate_for(spec)

    def test_unpartitionable_rejected(self):
        spec = ChannelSpec(period=100, capacity=8, deadline=15)
        with pytest.raises(PartitioningError):
            LaxityDPS().partition("a", "b", spec, StubLoads())


class TestSearchDPS:
    def test_without_probe_acts_like_adps(self, paper_spec):
        loads = StubLoads({LinkRef.uplink("a"): 2, LinkRef.downlink("b"): 1})
        part = SearchDPS().partition("a", "b", paper_spec, loads)
        assert (part.uplink, part.downlink) == (27, 13)

    def test_probe_accepting_centre_returns_centre(self, paper_spec):
        loads = StubLoads({LinkRef.uplink("a"): 2, LinkRef.downlink("b"): 1})
        part = SearchDPS().partition_with_probe(
            "a", "b", paper_spec, loads, probe=lambda p: True
        )
        assert (part.uplink, part.downlink) == (27, 13)

    def test_search_finds_the_only_feasible_split(self, paper_spec):
        target = DeadlinePartition(uplink=5, downlink=35)

        def probe(p: DeadlinePartition) -> bool:
            return p == target

        part = SearchDPS().partition_with_probe(
            "a", "b", paper_spec, StubLoads(), probe
        )
        assert part == target

    def test_search_exhausts_and_returns_heuristic(self, paper_spec):
        loads = StubLoads({LinkRef.uplink("a"): 2, LinkRef.downlink("b"): 1})
        part = SearchDPS().partition_with_probe(
            "a", "b", paper_spec, loads, probe=lambda p: False
        )
        # no split passed -> heuristic (ADPS) split returned
        assert (part.uplink, part.downlink) == (27, 13)

    def test_max_probes_limits_search(self, paper_spec):
        calls = []

        def probe(p):
            calls.append(p)
            return False

        SearchDPS(max_probes=5).partition_with_probe(
            "a", "b", paper_spec, StubLoads(), probe
        )
        assert len(calls) == 5

    def test_invalid_max_probes(self):
        with pytest.raises(PartitioningError):
            SearchDPS(max_probes=0)

    def test_search_prefers_splits_near_centre(self, paper_spec):
        """Among several feasible splits the nearest-to-centre wins."""
        feasible = {10, 12, 20, 30}

        def probe(p):
            return p.uplink in feasible

        part = SearchDPS().partition_with_probe(
            "a", "b", paper_spec, StubLoads(), probe
        )
        # centre is 20 (zero loads -> even split) and 20 is feasible.
        assert part.uplink == 20
