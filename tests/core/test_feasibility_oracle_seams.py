"""Seam tests pinning the feasibility primitives the oracle builds on.

The differential oracle (:mod:`repro.oracle`) trusts three primitives
when it constructs replay horizons and violation certificates:
``busy_period`` (Eq. 18.4), ``control_points`` (Eq. 18.5) and
``demand_many`` (vectorized Eq. 18.3). These tests pin their exact
behaviour on the edge cases the oracle exercises hardest -- single
tasks, ``d > P``, ``d = P`` and zero-slack (``U = 1``) sets -- so that
a future optimization of any of them fails here, in a unit test that
names the broken seam, before it fails as an opaque fuzz mismatch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.feasibility import (
    busy_period,
    control_points,
    demand,
    demand_many,
    hyperperiod,
    utilization,
)
from repro.errors import ConfigurationError

from ..conftest import make_tasks


class TestBusyPeriodSeams:
    def test_empty_set_has_zero_busy_period(self):
        assert busy_period([]) == 0

    def test_single_task_busy_period_is_its_capacity(self):
        assert busy_period(make_tasks([(10, 3, 7)])) == 3
        assert busy_period(make_tasks([(100, 1, 100)])) == 1

    def test_busy_period_ignores_deadlines(self):
        # Eq. 18.4 is a pure workload fixpoint: deadlines don't enter.
        short = make_tasks([(10, 3, 3), (15, 4, 4)])
        long = make_tasks([(10, 3, 30), (15, 4, 45)])  # d > P
        assert busy_period(short) == busy_period(long)

    def test_zero_slack_set_busy_period_is_the_hyperperiod(self):
        # U == 1: the link never idles, so the first busy period spans
        # the whole hyperperiod.
        tasks = make_tasks([(2, 1, 2), (4, 2, 4)])
        assert utilization(tasks) == 1
        assert busy_period(tasks) == hyperperiod(tasks) == 4

    def test_busy_period_never_exceeds_the_hyperperiod(self):
        for params in (
            [(10, 3, 8), (15, 4, 12)],
            [(7, 2, 7), (11, 3, 11), (13, 5, 13)],
            [(100, 3, 20)] * 6,
        ):
            tasks = make_tasks(params)
            assert busy_period(tasks) <= hyperperiod(tasks)

    def test_busy_period_is_the_least_fixpoint(self):
        tasks = make_tasks([(10, 3, 10), (15, 4, 15)])
        length = busy_period(tasks)

        def workload(t: int) -> int:
            return sum(-(-t // task.period) * task.capacity for task in tasks)

        assert workload(length) == length
        # every earlier instant still has pending backlog
        for t in range(1, length):
            assert workload(t) > t

    def test_overutilized_set_is_rejected(self):
        with pytest.raises(ConfigurationError, match="over-utilized"):
            busy_period(make_tasks([(2, 1, 2)] * 3))

    def test_paper_uplink_busy_period(self):
        # 6 channels of C=3 on one uplink: 18 straight busy slots.
        assert busy_period(make_tasks([(100, 3, 20)] * 6)) == 18


class TestControlPointSeams:
    def test_single_task_arithmetic_progression(self):
        points = control_points(make_tasks([(10, 2, 4)]), 35)
        assert points.tolist() == [4, 14, 24, 34]

    def test_deadline_equal_to_period(self):
        points = control_points(make_tasks([(10, 2, 10)]), 30)
        assert points.tolist() == [10, 20, 30]

    def test_deadline_beyond_period_starts_late(self):
        # d > P: the first absolute deadline is d itself, past the
        # first releases.
        points = control_points(make_tasks([(5, 1, 12)]), 30)
        assert points.tolist() == [12, 17, 22, 27]

    def test_horizon_below_first_deadline_is_empty(self):
        points = control_points(make_tasks([(10, 2, 8)]), 7)
        assert points.size == 0

    def test_zero_horizon_and_empty_set(self):
        assert control_points(make_tasks([(10, 2, 8)]), 0).size == 0
        assert control_points([], 100).size == 0

    def test_negative_horizon_rejected(self):
        with pytest.raises(ConfigurationError, match="horizon"):
            control_points(make_tasks([(10, 2, 8)]), -1)

    def test_duplicate_points_are_merged(self):
        tasks = make_tasks([(10, 2, 5), (10, 3, 5)])
        points = control_points(tasks, 25)
        assert points.tolist() == [5, 15, 25]

    def test_points_are_sorted_and_unique(self):
        tasks = make_tasks([(6, 1, 4), (10, 2, 7), (15, 3, 15)])
        points = control_points(tasks, 60)
        assert np.all(np.diff(points) > 0)

    def test_boundary_point_at_exact_horizon_is_included(self):
        points = control_points(make_tasks([(10, 2, 10)]), 20)
        assert 20 in points.tolist()

    def test_every_point_is_a_job_deadline(self):
        tasks = make_tasks([(6, 1, 4), (10, 2, 13)])  # includes d > P
        horizon = 60
        points = set(control_points(tasks, horizon).tolist())
        expected = set()
        for task in tasks:
            deadline = task.deadline
            while deadline <= horizon:
                expected.add(deadline)
                deadline += task.period
        assert points == expected


class TestDemandManySeams:
    def test_empty_instants_give_empty_result(self):
        tasks = make_tasks([(10, 2, 5)])
        out = demand_many(tasks, np.empty(0, dtype=np.int64))
        assert out.shape == (0,)

    def test_empty_task_set_gives_zeros(self):
        out = demand_many([], np.array([0, 10, 100]))
        assert out.tolist() == [0, 0, 0]

    def test_matches_scalar_demand_at_step_boundaries(self):
        tasks = make_tasks([(10, 2, 4), (15, 3, 20)])  # one d > P
        instants = []
        for task in tasks:
            for m in range(4):
                absolute = task.deadline + m * task.period
                instants.extend([absolute - 1, absolute, absolute + 1])
        instants = np.array(sorted(set(i for i in instants if i >= 0)))
        vectorized = demand_many(tasks, instants)
        for instant, value in zip(instants.tolist(), vectorized.tolist()):
            assert value == demand(tasks, instant)

    def test_single_task_step_shape(self):
        tasks = make_tasks([(10, 2, 4)])
        out = demand_many(tasks, np.array([0, 3, 4, 13, 14, 24]))
        # steps of C=2 exactly at t = 4, 14, 24
        assert out.tolist() == [0, 0, 2, 2, 4, 6]

    def test_deadline_beyond_period_counts_overlapping_jobs(self):
        # d = 25, P = 10: at t = 45 the jobs released at 0, 10, 20 are
        # all due (deadlines 25, 35, 45).
        tasks = make_tasks([(10, 2, 25)])
        assert demand(tasks, 45) == 6
        assert demand_many(tasks, np.array([45])).tolist() == [6]

    def test_zero_slack_demand_meets_supply_at_the_hyperperiod(self):
        tasks = make_tasks([(2, 1, 2), (4, 2, 4)])  # U == 1, d == P
        horizon = hyperperiod(tasks)
        assert demand(tasks, horizon) == horizon
        assert demand_many(tasks, np.array([horizon])).tolist() == [horizon]

    def test_negative_instant_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            demand_many(make_tasks([(10, 2, 5)]), np.array([3, -1]))
        with pytest.raises(ConfigurationError, match="non-negative"):
            demand(make_tasks([(10, 2, 5)]), -1)
