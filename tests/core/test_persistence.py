"""Tests for admission-state snapshot/restore."""

from __future__ import annotations

import pytest

from repro.core.admission import AdmissionController, SystemState
from repro.core.channel import ChannelSpec
from repro.core.partitioning import AsymmetricDPS, SymmetricDPS
from repro.core.persistence import dumps, loads, restore, snapshot
from repro.core.task import LinkRef
from repro.errors import ConfigurationError

SPEC = ChannelSpec(period=100, capacity=3, deadline=40)


def loaded_controller():
    ctrl = AdmissionController(
        SystemState(["m", "s0", "s1", "s2"]), AsymmetricDPS()
    )
    for dest in ("s0", "s1", "s2") * 4:
        ctrl.request("m", dest, SPEC)
    ctrl.request("m", "ghost", SPEC)  # one counted rejection
    ctrl.release(2)  # and one hole in the ID sequence
    return ctrl


class TestRoundTrip:
    def test_state_identical_after_restore(self):
        original = loaded_controller()
        restored = restore(snapshot(original), AsymmetricDPS())
        assert restored.state.nodes == original.state.nodes
        assert set(restored.state.channels) == set(original.state.channels)
        for link in original.state.occupied_links():
            assert restored.state.link_load(link) == original.state.link_load(
                link
            )
            assert restored.state.link_utilization(
                link
            ) == original.state.link_utilization(link)
        assert restored.accept_count == original.accept_count
        assert restored.reject_count == original.reject_count
        assert (
            restored.rejections_by_reason == original.rejections_by_reason
        )

    def test_partitions_preserved_exactly(self):
        original = loaded_controller()
        restored = restore(snapshot(original), AsymmetricDPS())
        for channel_id, channel in original.state.channels.items():
            twin = restored.state.channel(channel_id)
            assert twin.partition == channel.partition
            assert twin.spec == channel.spec

    def test_future_decisions_identical(self):
        """The restored controller decides exactly like the original."""
        original = loaded_controller()
        restored = restore(snapshot(original), AsymmetricDPS())
        for dest in ("s0", "s1", "s2") * 3:
            a = original.request("m", dest, SPEC)
            b = restored.request("m", dest, SPEC)
            assert a.accepted == b.accepted
            if a.accepted:
                assert (
                    a.channel.channel_id == b.channel.channel_id
                )
                assert a.partition == b.partition

    def test_channel_ids_never_reused_after_restore(self):
        original = loaded_controller()
        max_id = max(original.state.channels)
        restored = restore(snapshot(original), AsymmetricDPS())
        decision = restored.request("s0", "s1", SPEC)
        assert decision.accepted
        assert decision.channel.channel_id > max_id

    def test_json_round_trip(self):
        original = loaded_controller()
        text = dumps(original)
        restored = loads(text, AsymmetricDPS())
        assert snapshot(restored) == snapshot(original)

    def test_snapshot_does_not_mutate(self):
        original = loaded_controller()
        before = len(original.state)
        expected_next = snapshot(original)["next_channel_id"]
        snapshot(original)  # peeking twice must not consume IDs
        assert len(original.state) == before
        decision = original.request("s0", "s1", SPEC)
        assert decision.accepted
        assert decision.channel.channel_id == expected_next


class TestValidation:
    def test_scheme_mismatch_refused(self):
        original = loaded_controller()
        with pytest.raises(ConfigurationError, match="scheme swap"):
            restore(snapshot(original), SymmetricDPS())

    def test_bad_version_refused(self):
        data = snapshot(loaded_controller())
        data["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            restore(data, AsymmetricDPS())

    def test_garbage_refused(self):
        with pytest.raises(ConfigurationError):
            restore({"no": "version"}, AsymmetricDPS())
        with pytest.raises(ConfigurationError, match="JSON"):
            loads("{broken", AsymmetricDPS())

    def test_empty_controller_round_trips(self):
        ctrl = AdmissionController(SystemState(["a", "b"]), SymmetricDPS())
        restored = restore(snapshot(ctrl), SymmetricDPS())
        assert len(restored.state) == 0
        assert restored.request("a", "b", SPEC).channel.channel_id == 1
