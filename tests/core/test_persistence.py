"""Tests for admission-state snapshot/restore."""

from __future__ import annotations

import json

import pytest

from repro.core.admission import AdmissionController, SystemState
from repro.core.channel import ChannelSpec, ChannelState
from repro.core.channel_manager import NodeDirectory, SwitchChannelManager
from repro.core.partitioning import AsymmetricDPS, SymmetricDPS
from repro.core.persistence import (
    dumps,
    loads,
    restore,
    restore_signalling,
    snapshot,
)
from repro.core.task import LinkRef
from repro.errors import ConfigurationError
from repro.protocol.frames import RequestFrame, ResponseFrame

SPEC = ChannelSpec(period=100, capacity=3, deadline=40)


def loaded_controller():
    ctrl = AdmissionController(
        SystemState(["m", "s0", "s1", "s2"]), AsymmetricDPS()
    )
    for dest in ("s0", "s1", "s2") * 4:
        ctrl.request("m", dest, SPEC)
    ctrl.request("m", "ghost", SPEC)  # one counted rejection
    ctrl.release(2)  # and one hole in the ID sequence
    return ctrl


class TestRoundTrip:
    def test_state_identical_after_restore(self):
        original = loaded_controller()
        restored = restore(snapshot(original), AsymmetricDPS())
        assert restored.state.nodes == original.state.nodes
        assert set(restored.state.channels) == set(original.state.channels)
        for link in original.state.occupied_links():
            assert restored.state.link_load(link) == original.state.link_load(
                link
            )
            assert restored.state.link_utilization(
                link
            ) == original.state.link_utilization(link)
        assert restored.accept_count == original.accept_count
        assert restored.reject_count == original.reject_count
        assert (
            restored.rejections_by_reason == original.rejections_by_reason
        )

    def test_partitions_preserved_exactly(self):
        original = loaded_controller()
        restored = restore(snapshot(original), AsymmetricDPS())
        for channel_id, channel in original.state.channels.items():
            twin = restored.state.channel(channel_id)
            assert twin.partition == channel.partition
            assert twin.spec == channel.spec

    def test_future_decisions_identical(self):
        """The restored controller decides exactly like the original."""
        original = loaded_controller()
        restored = restore(snapshot(original), AsymmetricDPS())
        for dest in ("s0", "s1", "s2") * 3:
            a = original.request("m", dest, SPEC)
            b = restored.request("m", dest, SPEC)
            assert a.accepted == b.accepted
            if a.accepted:
                assert (
                    a.channel.channel_id == b.channel.channel_id
                )
                assert a.partition == b.partition

    def test_channel_ids_never_reused_after_restore(self):
        original = loaded_controller()
        max_id = max(original.state.channels)
        restored = restore(snapshot(original), AsymmetricDPS())
        decision = restored.request("s0", "s1", SPEC)
        assert decision.accepted
        assert decision.channel.channel_id > max_id

    def test_json_round_trip(self):
        original = loaded_controller()
        text = dumps(original)
        restored = loads(text, AsymmetricDPS())
        assert snapshot(restored) == snapshot(original)

    def test_snapshot_does_not_mutate(self):
        original = loaded_controller()
        before = len(original.state)
        expected_next = snapshot(original)["next_channel_id"]
        snapshot(original)  # peeking twice must not consume IDs
        assert len(original.state) == before
        decision = original.request("s0", "s1", SPEC)
        assert decision.accepted
        assert decision.channel.channel_id == expected_next


class TestValidation:
    def test_scheme_mismatch_refused(self):
        original = loaded_controller()
        with pytest.raises(ConfigurationError, match="scheme swap"):
            restore(snapshot(original), SymmetricDPS())

    def test_bad_version_refused(self):
        data = snapshot(loaded_controller())
        data["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            restore(data, AsymmetricDPS())

    def test_garbage_refused(self):
        with pytest.raises(ConfigurationError):
            restore({"no": "version"}, AsymmetricDPS())
        with pytest.raises(ConfigurationError, match="JSON"):
            loads("{broken", AsymmetricDPS())

    def test_empty_controller_round_trips(self):
        ctrl = AdmissionController(SystemState(["a", "b"]), SymmetricDPS())
        restored = restore(snapshot(ctrl), SymmetricDPS())
        assert len(restored.state) == 0
        assert restored.request("a", "b", SPEC).channel.channel_id == 1

    def test_version_1_refused_with_migration_message(self):
        data = snapshot(loaded_controller())
        data["version"] = 1
        with pytest.raises(ConfigurationError, match="version 1"):
            restore(data, AsymmetricDPS())

    def test_bad_channel_state_refused(self):
        data = snapshot(loaded_controller())
        data["channels"][0]["state"] = "torn_down"
        with pytest.raises(ConfigurationError, match="snapshot state"):
            restore(data, AsymmetricDPS())


SWITCH_MAC = 0xFF_EE_DD_CC_BB_AA
LEASE_NS = 5_000


def make_directory() -> NodeDirectory:
    directory = NodeDirectory()
    directory.register("a", mac=0x01, ip=0x0A000001)
    directory.register("b", mac=0x02, ip=0x0A000002)
    directory.register("c", mac=0x03, ip=0x0A000003)
    return directory


def make_manager(admission=None, lease_ns=LEASE_NS) -> SwitchChannelManager:
    if admission is None:
        admission = AdmissionController(
            SystemState(["a", "b", "c"]), SymmetricDPS()
        )
    return SwitchChannelManager(
        admission=admission,
        directory=make_directory(),
        switch_mac=SWITCH_MAC,
        lease_ns=lease_ns,
    )


def request_frame(req_id, src=0x01, dst=0x02):
    return RequestFrame(
        connect_request_id=req_id,
        rt_channel_id=0,
        source_mac=src,
        destination_mac=dst,
        source_ip=0x0A000001,
        destination_ip=0x0A000002,
        period=SPEC.period,
        capacity=SPEC.capacity,
        deadline=SPEC.deadline,
    )


def busy_manager() -> SwitchChannelManager:
    """A manager with established channels, pending offers and cached
    verdicts -- every kind of state the v2 schema must round-trip."""
    manager = make_manager()
    # Two established channels (leave completed verdicts with grants).
    for req_id in (1, 2):
        offered = manager.handle_request(request_frame(req_id), now=100)[0]
        manager.handle_response(
            ResponseFrame(
                connect_request_id=req_id,
                rt_channel_id=offered.frame.rt_channel_id,
                switch_mac=SWITCH_MAC,
                ok=True,
            ),
            now=200,
        )
    # One destination-declined request (verdict with ok=False).
    offered = manager.handle_request(request_frame(3, dst=0x03), now=300)[0]
    manager.handle_response(
        ResponseFrame(
            connect_request_id=3,
            rt_channel_id=offered.frame.rt_channel_id,
            switch_mac=SWITCH_MAC,
            ok=False,
        ),
        now=350,
    )
    # Two offers still awaiting the destination's verdict (leases live).
    manager.handle_request(request_frame(4, src=0x02, dst=0x03), now=400)
    manager.handle_request(request_frame(5, src=0x03, dst=0x01), now=450)
    return manager


def restored_twin(manager: SwitchChannelManager) -> SwitchChannelManager:
    """Snapshot ``manager``, JSON round-trip, restore into a fresh twin."""
    data = json.loads(
        dumps(manager.admission, manager=manager)
    )
    controller = restore(data, SymmetricDPS())
    twin = make_manager(admission=controller)
    restore_signalling(data, twin)
    return twin


class TestSignallingRoundTrip:
    def test_snapshot_records_offered_state(self):
        manager = busy_manager()
        data = snapshot(manager.admission, manager=manager)
        states = {c["id"]: c["state"] for c in data["channels"]}
        assert sorted(states.values()) == [
            "active", "active", "offered", "offered",
        ]

    def test_round_trip_is_byte_identical(self):
        manager = busy_manager()
        twin = restored_twin(manager)
        assert dumps(manager.admission, manager=manager) == dumps(
            twin.admission, manager=twin
        )

    def test_pending_offers_and_states_survive(self):
        manager = busy_manager()
        twin = restored_twin(manager)
        assert twin.pending_offers == manager.pending_offers == 2
        for channel_id, channel in manager.admission.state.channels.items():
            assert (
                twin.admission.state.channel(channel_id).state
                == channel.state
            )

    def test_duplicate_request_still_answered_from_cache(self):
        manager = busy_manager()
        twin = restored_twin(manager)
        before = twin.admission.accept_count
        actions = twin.handle_request(request_frame(1), now=500)
        # Re-answered from the restored verdict cache, not re-admitted.
        assert twin.duplicate_requests == manager.duplicate_requests + 1
        assert twin.admission.accept_count == before
        assert actions[0].grant is not None

    def test_pending_offer_completes_after_restore(self):
        manager = busy_manager()
        twin = restored_twin(manager)
        # Complete a still-pending offer on the twin exactly as the
        # original would: find it via the exported state.
        record = manager.export_signalling_state()["pending_offers"][0]
        actions = twin.handle_response(
            ResponseFrame(
                connect_request_id=record["request"]["connect_request_id"],
                rt_channel_id=record["channel_id"],
                switch_mac=SWITCH_MAC,
                ok=True,
            ),
            now=460,
        )
        assert actions[0].frame.ok
        assert actions[0].grant is not None
        assert (
            twin.admission.state.channel(record["channel_id"]).state
            is ChannelState.ACTIVE
        )

    def test_lease_expiry_survives_restore(self):
        manager = busy_manager()
        twin = restored_twin(manager)
        reclaimed = twin.reclaim_expired(now=400 + LEASE_NS)
        assert len(reclaimed) == 1  # offer stamped at 400 expired
        assert twin.lease_reclaims == manager.lease_reclaims + 1
        assert twin.reclaim_expired(now=450 + LEASE_NS) != ()

    def test_counters_survive(self):
        manager = busy_manager()
        manager.handle_request(request_frame(1), now=500)  # duplicate
        twin = restored_twin(manager)
        assert twin.duplicate_requests == manager.duplicate_requests
        assert twin.stale_frames == manager.stale_frames
        assert twin.lease_reclaims == manager.lease_reclaims

    def test_signalling_absent_raises(self):
        ctrl = AdmissionController(SystemState(["a", "b"]), SymmetricDPS())
        data = snapshot(ctrl)
        assert data["signalling"] is None
        restored = restore(data, SymmetricDPS())
        with pytest.raises(ConfigurationError, match="no signalling"):
            restore_signalling(data, make_manager(admission=restored))

    def test_config_mismatch_refused(self):
        manager = busy_manager()
        data = snapshot(manager.admission, manager=manager)
        controller = restore(data, SymmetricDPS())
        other = make_manager(admission=controller, lease_ns=LEASE_NS * 2)
        with pytest.raises(ConfigurationError, match="lease_ns"):
            restore_signalling(data, other)

    def test_import_into_dirty_manager_refused(self):
        manager = busy_manager()
        data = snapshot(manager.admission, manager=manager)
        with pytest.raises(ConfigurationError, match="fresh manager"):
            restore_signalling(data, manager)
