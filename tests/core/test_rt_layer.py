"""Tests for the end-node RT layer (grants, segmentation, mangling)."""

from __future__ import annotations

import pytest

from repro.core.channel import ChannelSpec
from repro.core.rt_layer import ChannelGrant, RTLayer
from repro.errors import ProtocolError, UnknownChannelError
from repro.protocol.ethernet import FrameKind
from repro.units import ETH_MAX_PAYLOAD

SLOT = 123_040  # fast Ethernet


def make_grant(channel_id=1, d_iu=25, spec=None) -> ChannelGrant:
    return ChannelGrant(
        channel_id=channel_id,
        source="src",
        destination="dst",
        spec=spec or ChannelSpec(period=100, capacity=3, deadline=40),
        uplink_deadline_slots=d_iu,
    )


class TestChannelGrant:
    def test_invalid_id_rejected(self):
        with pytest.raises(ProtocolError):
            make_grant(channel_id=0)
        with pytest.raises(ProtocolError):
            make_grant(channel_id=-1)

    def test_uplink_deadline_bounds(self):
        with pytest.raises(ProtocolError):
            make_grant(d_iu=0)
        with pytest.raises(ProtocolError):
            make_grant(d_iu=40)  # must be strictly inside (0, d)
        make_grant(d_iu=39)


class TestRTLayer:
    def test_install_and_list(self):
        layer = RTLayer("src", SLOT)
        grant = make_grant()
        layer.install_grant(grant)
        assert layer.grants == {1: grant}

    def test_install_wrong_source_rejected(self):
        layer = RTLayer("other", SLOT)
        with pytest.raises(ProtocolError):
            layer.install_grant(make_grant())

    def test_duplicate_install_rejected(self):
        layer = RTLayer("src", SLOT)
        layer.install_grant(make_grant())
        with pytest.raises(ProtocolError):
            layer.install_grant(make_grant())

    def test_remove_grant(self):
        layer = RTLayer("src", SLOT)
        layer.install_grant(make_grant())
        layer.remove_grant(1)
        assert layer.grants == {}
        with pytest.raises(UnknownChannelError):
            layer.remove_grant(1)

    def test_invalid_slot_ns(self):
        with pytest.raises(ProtocolError):
            RTLayer("src", 0)


class TestEmitMessage:
    def test_segments_into_capacity_frames(self):
        layer = RTLayer("src", SLOT)
        layer.install_grant(make_grant())
        outgoing = layer.emit_message(1, release_ns=0)
        assert len(outgoing) == 3
        assert [o.frame.fragment_index for o in outgoing] == [0, 1, 2]
        assert all(o.frame.message_seq == 0 for o in outgoing)

    def test_frames_are_max_sized_rt_data(self):
        layer = RTLayer("src", SLOT)
        layer.install_grant(make_grant())
        frame = layer.emit_message(1, 0)[0].frame
        assert frame.kind is FrameKind.RT_DATA
        assert frame.payload_bytes == ETH_MAX_PAYLOAD
        assert frame.source == "src"
        assert frame.destination == "dst"
        assert frame.channel_id == 1

    def test_end_to_end_deadline_in_header(self):
        layer = RTLayer("src", SLOT)
        layer.install_grant(make_grant())
        release = 10 * SLOT
        frame = layer.emit_message(1, release)[0].frame
        assert frame.absolute_deadline == release + 40 * SLOT

    def test_uplink_deadline_uses_partition(self):
        layer = RTLayer("src", SLOT)
        layer.install_grant(make_grant(d_iu=25))
        release = 7 * SLOT
        outgoing = layer.emit_message(1, release)
        assert all(
            o.uplink_deadline_ns == release + 25 * SLOT for o in outgoing
        )

    def test_message_seq_increments(self):
        layer = RTLayer("src", SLOT)
        layer.install_grant(make_grant())
        layer.emit_message(1, 0)
        second = layer.emit_message(1, 100 * SLOT)
        assert all(o.frame.message_seq == 1 for o in second)
        assert layer.message_count(1) == 2

    def test_unknown_channel_raises(self):
        layer = RTLayer("src", SLOT)
        with pytest.raises(UnknownChannelError):
            layer.emit_message(99, 0)
        with pytest.raises(UnknownChannelError):
            layer.message_count(99)

    def test_created_at_matches_release(self):
        layer = RTLayer("src", SLOT)
        layer.install_grant(make_grant())
        release = 5 * SLOT
        assert all(
            o.frame.created_at == release
            for o in layer.emit_message(1, release)
        )
