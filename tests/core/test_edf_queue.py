"""Tests for the EDF and FCFS output queues."""

from __future__ import annotations

import pytest

from repro.core.edf_queue import EDFQueue, FCFSQueue, QueuedFrame
from repro.errors import SchedulingError


def qf(deadline: int, tag: str = "", at: int = 0) -> QueuedFrame[str]:
    return QueuedFrame(
        payload=tag or f"f{deadline}",
        absolute_deadline=deadline,
        enqueued_at=at,
    )


class TestEDFQueue:
    def test_pops_earliest_deadline(self):
        q = EDFQueue()
        q.push(qf(30))
        q.push(qf(10))
        q.push(qf(20))
        assert [q.pop().absolute_deadline for _ in range(3)] == [10, 20, 30]

    def test_fifo_tiebreak(self):
        q = EDFQueue()
        q.push(qf(10, "first"))
        q.push(qf(10, "second"))
        q.push(qf(10, "third"))
        assert [q.pop().payload for _ in range(3)] == [
            "first",
            "second",
            "third",
        ]

    def test_interleaved_push_pop(self):
        q = EDFQueue()
        q.push(qf(50))
        q.push(qf(10))
        assert q.pop().absolute_deadline == 10
        q.push(qf(5))
        q.push(qf(40))
        assert q.pop().absolute_deadline == 5
        assert q.pop().absolute_deadline == 40
        assert q.pop().absolute_deadline == 50

    def test_peek_does_not_remove(self):
        q = EDFQueue()
        q.push(qf(7))
        assert q.peek().absolute_deadline == 7
        assert len(q) == 1

    def test_empty_operations_raise(self):
        q = EDFQueue()
        with pytest.raises(SchedulingError):
            q.pop()
        with pytest.raises(SchedulingError):
            q.peek()

    def test_len_and_bool(self):
        q = EDFQueue()
        assert not q and len(q) == 0
        q.push(qf(1))
        assert q and len(q) == 1

    def test_iteration_in_edf_order(self):
        q = EDFQueue()
        for d in (5, 1, 9, 3):
            q.push(qf(d))
        assert [f.absolute_deadline for f in q] == [1, 3, 5, 9]
        assert len(q) == 4  # iteration non-destructive

    def test_lifetime_counters(self):
        q = EDFQueue()
        for d in range(5):
            q.push(qf(d))
        for _ in range(3):
            q.pop()
        assert q.total_pushed == 5
        assert q.total_popped == 3

    def test_clear(self):
        q = EDFQueue()
        q.push(qf(1))
        q.clear()
        assert not q


class TestFCFSQueue:
    def test_fifo_order(self):
        q = FCFSQueue()
        for tag in ("a", "b", "c"):
            assert q.push(qf(0, tag))
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_bounded_capacity_drops(self):
        q = FCFSQueue(capacity=2)
        assert q.push(qf(0, "a"))
        assert q.push(qf(0, "b"))
        assert not q.push(qf(0, "c"))
        assert q.total_dropped == 1
        assert len(q) == 2

    def test_drain_frees_capacity(self):
        q = FCFSQueue(capacity=1)
        assert q.push(qf(0, "a"))
        q.pop()
        assert q.push(qf(0, "b"))

    def test_invalid_capacity(self):
        with pytest.raises(SchedulingError):
            FCFSQueue(capacity=0)

    def test_empty_operations_raise(self):
        q = FCFSQueue()
        with pytest.raises(SchedulingError):
            q.pop()
        with pytest.raises(SchedulingError):
            q.peek()

    def test_peek(self):
        q = FCFSQueue()
        q.push(qf(0, "x"))
        assert q.peek().payload == "x"
        assert len(q) == 1

    def test_counters(self):
        q = FCFSQueue(capacity=1)
        q.push(qf(0))
        q.push(qf(0))
        q.pop()
        assert (q.total_pushed, q.total_popped, q.total_dropped) == (1, 1, 1)

    def test_iteration(self):
        q = FCFSQueue()
        for tag in ("a", "b"):
            q.push(qf(0, tag))
        assert [f.payload for f in q] == ["a", "b"]

    def test_clear(self):
        q = FCFSQueue()
        q.push(qf(0))
        q.clear()
        assert not q
