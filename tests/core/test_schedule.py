"""Tests for the offline EDF schedule builder."""

from __future__ import annotations

import pytest

from repro.core.feasibility import is_feasible
from repro.core.schedule import build_schedule
from repro.errors import ConfigurationError
from tests.conftest import make_tasks


class TestBasicSchedules:
    def test_empty_set(self):
        schedule = build_schedule([])
        assert schedule.feasible
        assert schedule.table == ()

    def test_single_task_runs_immediately(self):
        tasks = make_tasks([(10, 3, 5)])
        schedule = build_schedule(tasks)
        assert schedule.horizon == 10
        assert schedule.table[:3] == (0, 0, 0)
        assert schedule.table[3:10] == (-1,) * 7
        assert schedule.worst_response_of(0) == 3
        assert schedule.feasible

    def test_two_tasks_edf_order(self):
        # task 0: d=8; task 1: d=3 -> task 1 runs first despite index.
        tasks = make_tasks([(10, 2, 8), (10, 2, 3)])
        schedule = build_schedule(tasks)
        assert schedule.table[:4] == (1, 1, 0, 0)
        assert schedule.worst_response_of(1) == 2
        assert schedule.worst_response_of(0) == 4

    def test_tie_broken_by_task_index(self):
        tasks = make_tasks([(10, 1, 5), (10, 1, 5)])
        schedule = build_schedule(tasks)
        assert schedule.table[:2] == (0, 1)

    def test_periodic_rereleases(self):
        tasks = make_tasks([(5, 2, 5)])
        schedule = build_schedule(tasks, horizon=15)
        assert schedule.table == (0, 0, -1, -1, -1) * 3
        assert schedule.responses[0].jobs == 3

    def test_full_utilization_no_idle(self):
        tasks = make_tasks([(2, 1, 2), (4, 2, 4)])
        schedule = build_schedule(tasks)
        assert schedule.idle_slots == 0
        assert schedule.feasible

    def test_overrun_detected(self):
        # h(4) = 6 > 4: infeasible; the schedule must show an overrun.
        tasks = make_tasks([(100, 3, 4), (100, 3, 4)])
        schedule = build_schedule(tasks)
        assert not schedule.feasible
        assert schedule.responses[1].overruns == 1
        assert schedule.responses[1].worst_response == 6
        assert schedule.responses[1].slack == -2

    def test_boundary_jobs_followed_to_completion(self):
        """A job released near the horizon completes past it; response
        accounting must not truncate."""
        tasks = make_tasks([(10, 4, 20)])
        schedule = build_schedule(tasks, horizon=10)
        # one job, runs slots 0-3
        assert schedule.responses[0].jobs == 1
        assert schedule.worst_response_of(0) == 4


class TestValidation:
    def test_overutilized_rejected(self):
        tasks = make_tasks([(2, 2, 2), (2, 1, 2)])
        with pytest.raises(ConfigurationError, match="over-utilized"):
            build_schedule(tasks)

    def test_bad_horizon_rejected(self):
        tasks = make_tasks([(10, 1, 5)])
        with pytest.raises(ConfigurationError):
            build_schedule(tasks, horizon=0)
        with pytest.raises(ConfigurationError):
            build_schedule(tasks, horizon=10**9)

    def test_render(self):
        tasks = make_tasks([(10, 2, 5)])
        text = build_schedule(tasks).render(width=5)
        assert "|00..." in text


class TestDifferentialAgainstDemandCriterion:
    CASES = [
        [(100, 3, 20)] * 6,
        [(100, 3, 20)] * 7,
        [(10, 2, 5), (20, 4, 10)],
        [(10, 2, 5), (20, 4, 10), (7, 1, 3)],
        [(4, 3, 4), (16, 3, 16)],
        [(2, 1, 2), (4, 1, 4), (8, 2, 8)],
        [(100, 3, 4), (100, 3, 4)],
        [(12, 4, 6), (9, 3, 5)],
        [(6, 2, 9), (4, 1, 7)],  # deadlines beyond periods
        [(50, 10, 25), (30, 5, 12), (20, 2, 9)],
    ]

    @pytest.mark.parametrize("params", CASES)
    def test_schedule_agrees_with_demand_test(self, params):
        """The constructed schedule meets all deadlines iff the demand
        criterion says the set is feasible -- the core cross-check."""
        tasks = make_tasks(params)
        assert build_schedule(tasks).feasible == is_feasible(tasks).feasible

    @pytest.mark.parametrize("params", CASES)
    def test_feasible_sets_respect_deadline_budget(self, params):
        tasks = make_tasks(params)
        schedule = build_schedule(tasks)
        if schedule.feasible:
            for task, response in zip(tasks, schedule.responses):
                assert response.worst_response <= task.deadline


class TestSdpsBoundaryExactness:
    def test_six_channels_exactly_fill_the_budget(self):
        """6 SDPS channels: the last frame completes in slot 18 of a
        20-slot budget -- the same tightness the DES observes."""
        tasks = make_tasks([(100, 3, 20)] * 6)
        schedule = build_schedule(tasks)
        assert schedule.feasible
        assert schedule.worst_response_of(5) == 18

    def test_seventh_channel_overruns_by_one(self):
        tasks = make_tasks([(100, 3, 20)] * 7)
        schedule = build_schedule(tasks)
        assert schedule.responses[6].worst_response == 21
        assert schedule.responses[6].overruns == 1
