"""Property test: cached and from-scratch admission are one controller.

Hypothesis drives random request/release histories -- random endpoints,
random (sometimes non-partitionable, sometimes unknown-node) specs and
random release interleavings -- through two controllers that differ
only in ``use_cache``, and requires the complete observable behaviour
to match: the ``accepted``/``reason`` decision stream, assigned channel
IDs, rejection histograms, and the exact per-link ``link_utilization``
(:class:`~fractions.Fraction`, so equality is exact) on every link of
the system. Shrinking then reduces any divergence to a minimal op
sequence, which is considerably more readable than a failing seed from
the campaign in :mod:`repro.oracle.admission_diff`.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.admission import AdmissionController, SystemState
from repro.core.channel import ChannelSpec
from repro.core.partitioning import AsymmetricDPS, SymmetricDPS
from repro.core.partitioning_ext import LaxityDPS, SearchDPS, UtilizationDPS
from repro.core.task import LinkRef

NODES = ("n0", "n1", "n2", "n3")
#: Includes one never-registered name so UNKNOWN_NODE paths interleave.
ENDPOINTS = NODES + ("ghost",)

SCHEMES = (
    SymmetricDPS,
    AsymmetricDPS,
    UtilizationDPS,
    LaxityDPS,
    lambda: SearchDPS(max_probes=10, strict=True),
)


@st.composite
def spec(draw):
    period = draw(st.integers(min_value=4, max_value=80))
    capacity = draw(st.integers(min_value=1, max_value=max(1, period // 2)))
    # Deliberately allows d < 2C (NOT_PARTITIONABLE) and d > P.
    deadline = draw(st.integers(min_value=capacity, max_value=2 * period))
    return ChannelSpec(period=period, capacity=capacity, deadline=deadline)


@st.composite
def operation(draw):
    if draw(st.integers(min_value=0, max_value=9)) < 3:
        # Release: an index into the active set at execution time.
        return ("release", draw(st.integers(min_value=0, max_value=31)))
    return (
        "request",
        draw(st.sampled_from(ENDPOINTS)),
        draw(st.sampled_from(ENDPOINTS)),
        draw(spec()),
    )


histories = st.tuples(
    st.integers(min_value=0, max_value=len(SCHEMES) - 1),
    st.lists(operation(), min_size=1, max_size=40),
)


def _all_links():
    for node in NODES:
        yield LinkRef.uplink(node)
        yield LinkRef.downlink(node)


@given(histories)
@settings(max_examples=120, deadline=None)
def test_cached_and_fresh_controllers_are_indistinguishable(history):
    scheme_index, ops = history
    cached = AdmissionController(
        SystemState(NODES), SCHEMES[scheme_index](), use_cache=True
    )
    naive = AdmissionController(
        SystemState(NODES), SCHEMES[scheme_index](), use_cache=False
    )
    for op in ops:
        if op[0] == "release":
            active = sorted(cached.state.channels)
            if not active:
                continue
            victim = active[op[1] % len(active)]
            cached.release(victim)
            naive.release(victim)
        else:
            _, source, destination, requested = op
            if source == destination:  # RTChannel forbids self-loops
                continue
            got = cached.request(source, destination, requested)
            want = naive.request(source, destination, requested)
            assert got.accepted == want.accepted, (
                f"verdict diverged on {source}->{destination} {requested}"
            )
            assert got.reason == want.reason
            assert got.partition == want.partition
            if got.accepted:
                assert (
                    got.channel.channel_id == want.channel.channel_id
                )
        # After *every* op the reservation ledgers must agree exactly.
        for link in _all_links():
            assert cached.state.link_load(link) == naive.state.link_load(
                link
            )
            assert cached.state.link_utilization(
                link
            ) == naive.state.link_utilization(link), f"drift on {link}"
            assert cached.cache is not None
            assert cached.cache.link_utilization(
                link
            ) == cached.state.link_utilization(link)
    assert cached.accept_count == naive.accept_count
    assert cached.reject_count == naive.reject_count
    assert cached.rejections_by_reason == naive.rejections_by_reason


@given(histories)
@settings(max_examples=40, deadline=None)
def test_preview_never_changes_subsequent_decisions(history):
    """Interleaving previews into a history is a no-op: the control
    controller (no previews) and the previewing controller produce the
    same decisions."""
    scheme_index, ops = history
    plain = AdmissionController(
        SystemState(NODES), SCHEMES[scheme_index]()
    )
    previewing = AdmissionController(
        SystemState(NODES), SCHEMES[scheme_index]()
    )
    for op in ops:
        if op[0] == "release":
            active = sorted(plain.state.channels)
            if not active:
                continue
            victim = active[op[1] % len(active)]
            plain.release(victim)
            previewing.release(victim)
        else:
            _, source, destination, requested = op
            if source == destination:  # RTChannel forbids self-loops
                continue
            previewed = previewing.preview(source, destination, requested)
            want = plain.request(source, destination, requested)
            got = previewing.request(source, destination, requested)
            assert previewed.accepted == got.accepted
            assert previewed.reason == got.reason
            assert got.accepted == want.accepted
            assert got.reason == want.reason
            if got.accepted:
                assert (
                    got.channel.channel_id == want.channel.channel_id
                )
