"""End-to-end property: random admitted workloads never miss deadlines.

This is the repository's capstone property -- the analytical admission
test and the event-driven EDF data plane agree on *randomly generated*
workloads, not just the curated cases. Each example builds a small star,
admits a random request mix (whatever admission accepts), drives it at
the critical instant, and asserts zero end-to-end and per-link misses.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.channel import ChannelSpec
from repro.core.partitioning import (
    AsymmetricDPS,
    SymmetricDPS,
)
from repro.core.partitioning_ext import LaxityDPS
from repro.network.topology import build_star


@st.composite
def workload(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=5))
    nodes = [f"n{i}" for i in range(n_nodes)]
    n_requests = draw(st.integers(min_value=1, max_value=10))
    requests = []
    for _ in range(n_requests):
        i = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        j = draw(st.integers(min_value=0, max_value=n_nodes - 2))
        if j >= i:
            j += 1
        capacity = draw(st.integers(min_value=1, max_value=4))
        # period from a small harmonic menu keeps hyperperiods short
        period = draw(st.sampled_from([20, 40, 80]))
        deadline = draw(
            st.integers(min_value=2 * capacity, max_value=2 * period)
        )
        requests.append(
            (nodes[i], nodes[j],
             ChannelSpec(period=period, capacity=min(capacity, period),
                         deadline=deadline))
        )
    scheme = draw(
        st.sampled_from(["sdps", "adps", "ldps"])
    )
    return nodes, requests, scheme


_SCHEMES = {
    "sdps": SymmetricDPS,
    "adps": AsymmetricDPS,
    "ldps": LaxityDPS,
}


@given(workload())
@settings(max_examples=40, deadline=None)
def test_admitted_workloads_never_miss(case):
    nodes, requests, scheme_name = case
    net = build_star(nodes, dps=_SCHEMES[scheme_name]())
    admitted = 0
    for source, destination, spec in requests:
        if net.establish_analytically(source, destination, spec) is not None:
            admitted += 1
    # two periods of every channel from the synchronous critical instant
    net.start_all_sources(stop_after_messages=2)
    net.sim.run()
    assert net.metrics.total_deadline_misses == 0, (
        f"misses with {scheme_name} on {requests}"
    )
    per_link = sum(
        node.uplink.stats.rt_link_deadline_misses
        for node in net.nodes.values()
        if node.uplink is not None
    ) + sum(
        port.stats.rt_link_deadline_misses
        for port in net.switch.ports.values()
    )
    assert per_link == 0
    assert net.metrics.total_rt_messages == 2 * admitted
