"""Property-based tests for partitioning schemes and codecs."""

from __future__ import annotations

from fractions import Fraction

from hypothesis import assume, given, settings, strategies as st

from repro.core.channel import ChannelSpec
from repro.core.partitioning import (
    AsymmetricDPS,
    SymmetricDPS,
    clamp_partition,
    split_round_half_up,
)
from repro.core.partitioning_ext import LaxityDPS, SearchDPS, UtilizationDPS
from repro.core.task import LinkRef
from repro.multiswitch.partitioning import split_deadline
from repro.protocol.bitfields import BitPacker, BitUnpacker
from repro.protocol.headers import decode_rt_header, encode_rt_header


@st.composite
def partitionable_spec(draw):
    capacity = draw(st.integers(min_value=1, max_value=20))
    period = draw(st.integers(min_value=capacity, max_value=500))
    deadline = draw(st.integers(min_value=2 * capacity, max_value=600))
    return ChannelSpec(period=period, capacity=capacity, deadline=deadline)


class Loads:
    def __init__(self, up, down, u_up=0, u_down=0):
        self._map = {
            LinkRef.uplink("a"): up,
            LinkRef.downlink("b"): down,
        }
        self._u = {
            LinkRef.uplink("a"): Fraction(u_up, 100),
            LinkRef.downlink("b"): Fraction(u_down, 100),
        }

    def link_load(self, link):
        return self._map.get(link, 0)

    def link_utilization(self, link):
        return self._u.get(link, Fraction(0))


loads_strategy = st.builds(
    Loads,
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=99),
    st.integers(min_value=0, max_value=99),
)


@given(partitionable_spec(), loads_strategy)
@settings(max_examples=200, deadline=None)
def test_every_scheme_satisfies_eq_18_8_and_18_9(spec, loads):
    """All five DPS implementations always emit legal partitions."""
    for scheme in (
        SymmetricDPS(),
        AsymmetricDPS(),
        UtilizationDPS(),
        LaxityDPS(),
        SearchDPS(),
    ):
        partition = scheme.partition("a", "b", spec, loads)
        partition.validate_for(spec)  # raises on violation


@given(partitionable_spec(), loads_strategy)
@settings(max_examples=100, deadline=None)
def test_adps_gives_heavier_link_at_least_half(spec, loads):
    up = loads.link_load(LinkRef.uplink("a"))
    down = loads.link_load(LinkRef.downlink("b"))
    if up + down == 0:
        return
    partition = AsymmetricDPS().partition("a", "b", spec, loads)
    lo, hi = spec.capacity, spec.deadline - spec.capacity
    if up > down and partition.uplink < hi:
        assert partition.uplink >= spec.deadline // 2
    if down > up and partition.downlink < hi:
        assert partition.downlink >= spec.deadline // 2


@given(
    partitionable_spec(),
    st.integers(min_value=-100, max_value=1000),
)
@settings(max_examples=200, deadline=None)
def test_clamp_partition_always_legal(spec, wish):
    clamp_partition(spec, wish).validate_for(spec)


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=1, max_value=1000),
)
@settings(max_examples=200, deadline=None)
def test_split_round_half_up_error_below_one(deadline, num, den):
    if num > den:
        num = den
    result = split_round_half_up(deadline, num, den)
    exact = deadline * num / den
    assert abs(result - exact) <= 0.5 + 1e-9


@st.composite
def k_way_case(draw):
    k = draw(st.integers(min_value=1, max_value=6))
    capacity = draw(st.integers(min_value=1, max_value=10))
    deadline = draw(st.integers(min_value=k * capacity, max_value=500))
    weights = draw(
        st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=k,
            max_size=k,
        )
    )
    return deadline, capacity, weights


@given(k_way_case())
@settings(max_examples=200, deadline=None)
def test_split_deadline_invariants(case):
    deadline, capacity, weights = case
    parts = split_deadline(deadline, capacity, weights)
    assert sum(parts) == deadline
    assert all(part >= capacity for part in parts)
    assert len(parts) == len(weights)


def _legacy_repair_loop(parts, capacity):
    """The historical one-unit-per-iteration repair (reference)."""
    parts = list(parts)
    k = len(parts)
    for i in range(k):
        while parts[i] < capacity:
            donor = max(
                (j for j in range(k) if parts[j] > capacity),
                key=lambda j: parts[j],
                default=None,
            )
            assert donor is not None
            parts[donor] -= 1
            parts[i] += 1
    return parts


def _legacy_split_deadline_float(deadline, capacity, weights):
    """The pre-Fraction float apportionment (reference)."""
    k = len(weights)
    total_weight = float(sum(weights))
    if total_weight <= 0:
        weights = [1.0] * k
        total_weight = float(k)
    exact = [deadline * w / total_weight for w in weights]
    parts = [int(x) for x in exact]
    shortfall = deadline - sum(parts)
    remainders = sorted(
        range(k), key=lambda i: (-(exact[i] - parts[i]), i)
    )
    for i in remainders[:shortfall]:
        parts[i] += 1
    return _legacy_repair_loop(parts, capacity)


@st.composite
def repairable_parts(draw):
    k = draw(st.integers(min_value=1, max_value=10))
    capacity = draw(st.integers(min_value=0, max_value=12))
    parts = draw(
        st.lists(
            st.integers(min_value=0, max_value=60),
            min_size=k,
            max_size=k,
        )
    )
    # the repair precondition split_deadline guarantees
    deficit = k * capacity - sum(parts)
    if deficit > 0:
        parts = [p + -(-deficit // k) for p in parts]
    return parts, capacity


@given(repairable_parts())
@settings(max_examples=300, deadline=None)
def test_single_pass_repair_matches_legacy_loop(case):
    """The threshold-drain repair is end-state identical to the old
    one-unit-per-iteration donor loop, including its first-index
    tie-break."""
    from repro.multiswitch.partitioning import _repair_floor

    parts, capacity = case
    assert _repair_floor(list(parts), capacity) == _legacy_repair_loop(
        parts, capacity
    )


@st.composite
def benign_k_way_case(draw):
    """Small integer weights: float apportionment is still exact here,
    so the legacy float path must agree with the Fraction path."""
    k = draw(st.integers(min_value=1, max_value=6))
    capacity = draw(st.integers(min_value=1, max_value=8))
    deadline = draw(st.integers(min_value=k * capacity, max_value=400))
    weights = draw(
        st.lists(
            st.integers(min_value=0, max_value=20),
            min_size=k,
            max_size=k,
        )
    )
    return deadline, capacity, weights


@given(benign_k_way_case())
@settings(max_examples=300, deadline=None)
def test_fraction_split_agrees_with_float_on_benign_inputs(case):
    """Where no two *different* weights tie in exact remainder, the old
    float path and the Fraction path agree -- the divergence (and the
    bug the Fraction rewrite fixes) lives exactly in cross-weight
    remainder ties, where float noise reordered the tie-break."""
    deadline, capacity, weights = case
    total = sum(weights)
    rems = {}
    for w in set(weights):
        share = Fraction(deadline * w, total) if total else Fraction(1)
        rem = share - int(share)
        if rem in rems and rems[rem] != w:
            assume(False)  # cross-weight tie: not a benign input
        rems[rem] = w
    assert split_deadline(
        deadline, capacity, weights
    ) == _legacy_split_deadline_float(deadline, capacity, weights)


@given(
    st.integers(min_value=0, max_value=(1 << 48) - 1),
    st.integers(min_value=0, max_value=(1 << 16) - 1),
)
@settings(max_examples=200, deadline=None)
def test_rt_header_roundtrip(deadline, channel):
    header = encode_rt_header(deadline, channel)
    assert decode_rt_header(header) == (deadline, channel)
    assert header.tos == 255


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=64),  # width
            st.integers(min_value=0),  # raw value, masked below
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=200, deadline=None)
def test_bitfield_roundtrip(fields):
    packer = BitPacker()
    expected = []
    for width, raw in fields:
        value = raw & ((1 << width) - 1)
        packer.put(value, width)
        expected.append((width, value))
    unpacker = BitUnpacker(packer.to_bytes())
    for width, value in expected:
        assert unpacker.take(width) == value
    unpacker.expect_zero_padding()
