"""Property-based tests for the feasibility analysis (hypothesis).

These pin down the *theory* invariants that individual example tests
cannot exhaust: monotonicity of the demand function, the control-point
reduction's equivalence to the naive scan, and the sustainability of
the feasibility verdict under task removal.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.feasibility import (
    busy_period,
    control_points,
    demand,
    demand_many,
    hyperperiod,
    is_feasible,
    is_feasible_naive,
    utilization,
)
from repro.core.task import LinkRef, LinkTask

LINK = LinkRef.uplink("prop")


@st.composite
def link_task(draw):
    period = draw(st.integers(min_value=1, max_value=60))
    capacity = draw(st.integers(min_value=1, max_value=period))
    deadline = draw(st.integers(min_value=capacity, max_value=120))
    return LinkTask(
        link=LINK, period=period, capacity=capacity, deadline=deadline
    )


task_sets = st.lists(link_task(), min_size=0, max_size=6)
small_task_sets = st.lists(link_task(), min_size=1, max_size=4)


@given(task_sets)
@settings(max_examples=150, deadline=None)
def test_fast_and_naive_always_agree(tasks):
    """The control-point + busy-period reductions change nothing."""
    assert is_feasible(tasks).feasible == is_feasible_naive(tasks).feasible


@given(small_task_sets, st.integers(min_value=0, max_value=300))
@settings(max_examples=100, deadline=None)
def test_demand_monotone_in_time(tasks, t):
    assert demand(tasks, t) <= demand(tasks, t + 1)


@given(small_task_sets, st.integers(min_value=0, max_value=300))
@settings(max_examples=100, deadline=None)
def test_demand_many_matches_scalar(tasks, t):
    values = demand_many(tasks, np.array([t, t + 7], dtype=np.int64))
    assert values[0] == demand(tasks, t)
    assert values[1] == demand(tasks, t + 7)


@given(small_task_sets)
@settings(max_examples=100, deadline=None)
def test_demand_jumps_only_at_control_points(tasks):
    """h is constant between consecutive control points."""
    horizon = min(
        int(hyperperiod(tasks)), 400
    )
    points = set(control_points(tasks, horizon).tolist())
    previous = demand(tasks, 0)
    for t in range(1, horizon + 1):
        current = demand(tasks, t)
        if current != previous:
            assert t in points, f"h jumped at {t} which is not a control point"
        previous = current


@given(task_sets)
@settings(max_examples=100, deadline=None)
def test_feasible_set_stays_feasible_after_removal(tasks):
    """Feasibility is sustainable under dropping any one task."""
    if utilization(tasks) > 1:
        return
    if not is_feasible(tasks).feasible:
        return
    for i in range(len(tasks)):
        remaining = tasks[:i] + tasks[i + 1 :]
        assert is_feasible(remaining).feasible


@given(small_task_sets)
@settings(max_examples=100, deadline=None)
def test_busy_period_is_a_fixpoint(tasks):
    if utilization(tasks) > 1:
        return
    length = busy_period(tasks)
    workload = sum(-(-length // t.period) * t.capacity for t in tasks)
    assert workload == length
    assert length >= sum(t.capacity for t in tasks) or length == 0


@given(small_task_sets)
@settings(max_examples=100, deadline=None)
def test_busy_period_bounded_by_hyperperiod(tasks):
    if utilization(tasks) > 1:
        return
    assert busy_period(tasks) <= hyperperiod(tasks)


@given(small_task_sets)
@settings(max_examples=80, deadline=None)
def test_implicit_deadline_feasibility_iff_utilization(tasks):
    """Liu & Layland: with d == P, feasible <=> U <= 1."""
    implicit = [
        LinkTask(
            link=LINK,
            period=t.period,
            capacity=t.capacity,
            deadline=t.period,
        )
        for t in tasks
    ]
    report = is_feasible(implicit)
    assert report.feasible == (utilization(implicit) <= 1)


@given(small_task_sets)
@settings(max_examples=80, deadline=None)
def test_shrinking_a_deadline_never_helps(tasks):
    """Feasibility is monotone in deadlines: tightening one deadline
    cannot turn an infeasible set feasible."""
    if is_feasible(tasks).feasible:
        return
    loosened = [
        LinkTask(
            link=LINK,
            period=t.period,
            capacity=t.capacity,
            deadline=t.deadline + 10,
        )
        for t in tasks
    ]
    # the CONTRAPOSITIVE: loosening may or may not fix it, but tightening
    # the loosened set back must reproduce the infeasible verdict.
    tightened_back = [
        LinkTask(
            link=LINK,
            period=t.period,
            capacity=t.capacity,
            deadline=t.deadline - 10,
        )
        for t in loosened
    ]
    assert not is_feasible(tightened_back).feasible


@given(task_sets)
@settings(max_examples=100, deadline=None)
def test_offline_schedule_agrees_with_demand_criterion(tasks):
    """Third implementation cross-check: the tabular EDF schedule meets
    every deadline exactly when the analytical test says feasible."""
    from repro.core.schedule import build_schedule

    if utilization(tasks) > 1:
        return
    if hyperperiod(tasks) > 5000:
        return  # keep the property suite fast
    schedule = build_schedule(tasks)
    assert schedule.feasible == is_feasible(tasks).feasible


@given(task_sets)
@settings(max_examples=80, deadline=None)
def test_offline_worst_response_within_deadline_when_feasible(tasks):
    from repro.core.schedule import build_schedule

    if utilization(tasks) > 1 or hyperperiod(tasks) > 5000:
        return
    if not is_feasible(tasks).feasible:
        return
    schedule = build_schedule(tasks)
    for task, response in zip(tasks, schedule.responses):
        assert response.worst_response <= task.deadline
