"""Property tests: the analytical admission test vs the executed schedule.

The central theorems this repo relies on, stated as hypothesis
properties over random task sets:

* **Soundness of admission** -- analytically feasible ⇒ the brute-force
  EDF replay of the first busy period finishes with zero misses.
* **Completeness of rejection** -- analytically infeasible with a
  demand violation at control point ``t*`` ⇒ the replay witnesses a
  miss at some absolute deadline ``<= t*``.
* **Busy-period exactness** -- for a feasible set the replay drains at
  exactly the analytical busy period (Eq. 18.4): the fixpoint really is
  the first idle instant.
* **Third-implementation agreement** -- over a full hyperperiod the
  replay's per-task worst responses equal those of the independent
  tabular scheduler (:func:`repro.core.schedule.build_schedule`).
"""

from __future__ import annotations

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.core.feasibility import (
    busy_period,
    hyperperiod,
    is_feasible,
    utilization,
)
from repro.core.schedule import build_schedule
from repro.core.task import LinkRef, LinkTask
from repro.oracle.differential import (
    Agreement,
    cross_check,
    first_demand_violation,
)
from repro.oracle.edf_timeline import default_release_horizon, simulate_edf

LINK = LinkRef.uplink("oracle-prop")

#: Keep replay horizons honest but bounded: periods up to 60, at most 6
#: tasks. Sets whose busy period still explodes are assumed away.
MAX_HORIZON = 30_000


@st.composite
def link_task(draw):
    period = draw(st.integers(min_value=1, max_value=60))
    capacity = draw(st.integers(min_value=1, max_value=period))
    deadline = draw(st.integers(min_value=capacity, max_value=120))
    return LinkTask(
        link=LINK, period=period, capacity=capacity, deadline=deadline
    )


@st.composite
def harmonic_task(draw):
    """Periods from divisors of 60: hyperperiods stay <= 60."""
    period = draw(st.sampled_from([2, 3, 4, 5, 6, 10, 12, 15, 20, 30, 60]))
    capacity = draw(st.integers(min_value=1, max_value=period))
    deadline = draw(st.integers(min_value=capacity, max_value=90))
    return LinkTask(
        link=LINK, period=period, capacity=capacity, deadline=deadline
    )


@st.composite
def tight_task(draw):
    """Constrained deadlines (d <= P): demand violations are common."""
    period = draw(st.integers(min_value=4, max_value=40))
    capacity = draw(st.integers(min_value=1, max_value=max(1, period // 2)))
    deadline = draw(st.integers(min_value=capacity, max_value=period))
    return LinkTask(
        link=LINK, period=period, capacity=capacity, deadline=deadline
    )


@st.composite
def heavy_task(draw):
    """Capacities of at least half the period: U > 1 is common."""
    period = draw(st.integers(min_value=2, max_value=30))
    capacity = draw(st.integers(min_value=max(1, period // 2), max_value=period))
    deadline = draw(st.integers(min_value=capacity, max_value=60))
    return LinkTask(
        link=LINK, period=period, capacity=capacity, deadline=deadline
    )


task_sets = st.lists(link_task(), min_size=0, max_size=6)
tight_sets = st.lists(tight_task(), min_size=3, max_size=7)
heavy_sets = st.lists(heavy_task(), min_size=2, max_size=5)
harmonic_sets = st.lists(harmonic_task(), min_size=1, max_size=5)


@given(task_sets)
@settings(max_examples=200, deadline=None)
def test_feasible_implies_no_simulated_miss(tasks):
    """Admission soundness: a feasible verdict survives execution."""
    assume(is_feasible(tasks).feasible)
    assume(default_release_horizon(tasks) <= MAX_HORIZON)
    result = simulate_edf(tasks, stop_on_miss=False)
    assert result.first_miss is None
    assert result.schedulable
    for stats in result.task_stats:
        assert stats.worst_response <= stats.deadline


@given(tight_sets)
@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much],
)
def test_infeasible_witnessed_at_the_reported_control_point(tasks):
    """Rejection completeness: the violation certificate is executable."""
    report = is_feasible(tasks)
    assume(not report.feasible and report.violation is not None)
    t_star, h_star = report.violation
    assert h_star > t_star
    result = simulate_edf(tasks, t_star)
    assert result.first_miss is not None
    assert result.first_miss.time <= t_star


@given(heavy_sets)
@settings(
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much],
)
def test_overutilized_sets_miss_in_practice(tasks):
    """U > 1 has no analytical certificate from ``is_feasible`` (it
    stops at the utilization test); the oracle finds one and executes
    it."""
    assume(tasks and utilization(tasks) > 1)
    violation = first_demand_violation(tasks, MAX_HORIZON)
    assume(violation is not None)
    t_star, _ = violation
    result = simulate_edf(tasks, t_star)
    assert result.first_miss is not None
    assert result.first_miss.time <= t_star


@given(task_sets)
@settings(max_examples=100, deadline=None)
def test_feasible_replay_drains_at_the_busy_period(tasks):
    """Eq. 18.4 exactness: the fixpoint is the first idle instant."""
    assume(tasks and is_feasible(tasks).feasible)
    horizon = default_release_horizon(tasks)
    assume(horizon <= MAX_HORIZON)
    result = simulate_edf(tasks)
    assert result.makespan == busy_period(tasks)
    assert result.slots_executed == result.makespan


@given(task_sets)
@settings(max_examples=150, deadline=None)
def test_cross_check_never_finds_a_disagreement(tasks):
    """The three oracles agree on arbitrary task sets."""
    verdict = cross_check(tasks, max_horizon=MAX_HORIZON)
    assert verdict.ok, verdict.summary()
    assert verdict.agreement in (
        Agreement.AGREE_FEASIBLE,
        Agreement.AGREE_INFEASIBLE,
        Agreement.HORIZON_CAPPED,
    )


@given(harmonic_sets)
@settings(max_examples=120, deadline=None)
def test_timeline_matches_the_tabular_scheduler(tasks):
    """Replay vs ``build_schedule``: same jobs, same worst responses."""
    assume(utilization(tasks) <= 1)
    schedule = build_schedule(tasks)
    replay = simulate_edf(
        tasks, hyperperiod(tasks), stop_on_miss=False
    )
    assert len(schedule.responses) == len(replay.task_stats)
    for tabular, timeline in zip(schedule.responses, replay.task_stats):
        assert tabular.jobs == timeline.jobs_released
        assert tabular.worst_response == timeline.worst_response
        assert tabular.overruns == timeline.overruns
