"""Property-based tests: EDF queue ordering and admission soundness."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.admission import AdmissionController, SystemState
from repro.core.channel import ChannelSpec
from repro.core.edf_queue import EDFQueue, QueuedFrame
from repro.core.feasibility import is_feasible
from repro.core.partitioning import AsymmetricDPS, SymmetricDPS
from repro.core.partitioning_ext import LaxityDPS


@given(st.lists(st.integers(min_value=0, max_value=10**9), max_size=60))
@settings(max_examples=150, deadline=None)
def test_edf_queue_drains_sorted(deadlines):
    queue: EDFQueue[int] = EDFQueue()
    for i, deadline in enumerate(deadlines):
        queue.push(
            QueuedFrame(payload=i, absolute_deadline=deadline, enqueued_at=0)
        )
    drained = [queue.pop().absolute_deadline for _ in range(len(deadlines))]
    assert drained == sorted(deadlines)


@given(
    st.lists(
        st.tuples(
            st.booleans(),  # push (True) or pop (False)
            st.integers(min_value=0, max_value=1000),
        ),
        max_size=80,
    )
)
@settings(max_examples=100, deadline=None)
def test_edf_queue_interleaved_operations_keep_heap_invariant(ops):
    queue: EDFQueue[int] = EDFQueue()
    model: list[int] = []
    for is_push, deadline in ops:
        if is_push or not model:
            queue.push(
                QueuedFrame(
                    payload=0, absolute_deadline=deadline, enqueued_at=0
                )
            )
            model.append(deadline)
        else:
            popped = queue.pop().absolute_deadline
            assert popped == min(model)
            model.remove(popped)
    assert len(queue) == len(model)


@st.composite
def request_sequence(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=6))
    nodes = [f"n{i}" for i in range(n_nodes)]
    count = draw(st.integers(min_value=0, max_value=25))
    requests = []
    for _ in range(count):
        i = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        j = draw(st.integers(min_value=0, max_value=n_nodes - 2))
        if j >= i:
            j += 1
        capacity = draw(st.integers(min_value=1, max_value=5))
        period = draw(st.integers(min_value=capacity, max_value=60))
        deadline = draw(st.integers(min_value=1, max_value=80))
        requests.append(
            (nodes[i], nodes[j], period, capacity, deadline)
        )
    return nodes, requests


@given(
    request_sequence(),
    st.sampled_from(["sdps", "adps", "ldps"]),
)
@settings(max_examples=120, deadline=None)
def test_admission_soundness_every_link_stays_feasible(case, scheme_name):
    """THE soundness property: whatever the request mix and scheme, the
    installed task set on every link passes the exact feasibility test
    after every decision."""
    nodes, requests = case
    scheme = {
        "sdps": SymmetricDPS(),
        "adps": AsymmetricDPS(),
        "ldps": LaxityDPS(),
    }[scheme_name]
    state = SystemState(nodes)
    controller = AdmissionController(state, scheme)
    for source, destination, period, capacity, deadline in requests:
        try:
            spec = ChannelSpec(
                period=period, capacity=capacity, deadline=deadline
            )
        except Exception:
            continue  # structurally invalid draw (e.g. C > P filtered)
        controller.request(source, destination, spec)
        for link in state.occupied_links():
            assert is_feasible(list(state.tasks_on(link))).feasible, (
                f"link {link} became infeasible after admitting on "
                f"{source}->{destination}"
            )


@given(request_sequence())
@settings(max_examples=60, deadline=None)
def test_release_restores_exact_state(case):
    """Admitting then releasing a channel leaves link loads unchanged."""
    nodes, requests = case
    state = SystemState(nodes)
    controller = AdmissionController(state, AsymmetricDPS())
    admitted = []
    for source, destination, period, capacity, deadline in requests:
        try:
            spec = ChannelSpec(
                period=period, capacity=capacity, deadline=deadline
            )
        except Exception:
            continue
        decision = controller.request(source, destination, spec)
        if decision.accepted:
            admitted.append(decision.channel.channel_id)
    snapshot = {
        link: state.link_load(link) for link in state.occupied_links()
    }
    if not admitted:
        return
    victim = admitted[len(admitted) // 2]
    channel = state.channel(victim)
    controller.release(victim)
    from repro.core.task import LinkRef

    assert (
        state.link_load(LinkRef.uplink(channel.source))
        == snapshot.get(LinkRef.uplink(channel.source), 0) - 1
    )


@given(request_sequence())
@settings(max_examples=40, deadline=None)
def test_snapshot_restore_preserves_future_decisions(case):
    """Persistence round-trip: a restored controller is decision-for-
    decision identical to the original on any continuation."""
    from repro.core.persistence import restore, snapshot

    nodes, requests = case
    if len(requests) < 2:
        return
    half = len(requests) // 2
    original = AdmissionController(SystemState(nodes), AsymmetricDPS())
    for source, destination, period, capacity, deadline in requests[:half]:
        try:
            spec = ChannelSpec(
                period=period, capacity=capacity, deadline=deadline
            )
        except Exception:
            continue
        original.request(source, destination, spec)
    clone = restore(snapshot(original), AsymmetricDPS())
    for source, destination, period, capacity, deadline in requests[half:]:
        try:
            spec = ChannelSpec(
                period=period, capacity=capacity, deadline=deadline
            )
        except Exception:
            continue
        a = original.request(source, destination, spec)
        b = clone.request(source, destination, spec)
        assert a.accepted == b.accepted
        assert a.partition == b.partition
        if a.accepted:
            assert a.channel.channel_id == b.channel.channel_id
