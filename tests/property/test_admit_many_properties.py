"""Property tests: the batch admission engine is the scalar loop.

Hypothesis drives random churn -- bursts of requests (with deliberate
repeats, unknown nodes and non-partitionable specs) interleaved with
releases -- through one controller using ``admit_many`` and one using
the scalar ``request`` loop, and requires complete observable equality:
the decision stream (verdict, reason, channel ID, partition), the
counters and rejection histograms, the exact per-link utilization
(:class:`~fractions.Fraction`), the network-calculus delay bounds of
every admitted channel, and the persistence snapshot, byte for byte.
A second property cuts the batch-driven history at a random point with
a snapshot/restore cycle and requires the restored controller to finish
the history exactly like the original.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import persistence
from repro.core.admission import AdmissionController, SystemState
from repro.core.channel import ChannelSpec
from repro.core.partitioning import AsymmetricDPS, SymmetricDPS
from repro.core.task import LinkRef

NODES = ("n0", "n1", "n2", "n3")
ENDPOINTS = NODES + ("ghost",)

SCHEMES = (SymmetricDPS, AsymmetricDPS)

#: A small spec pool (rather than fully random specs) so bursts repeat
#: keys often enough to exercise the template/memo fast paths; includes
#: a non-partitionable deadline (d < 2C for the symmetric split).
SPECS = (
    ChannelSpec(period=20, capacity=2, deadline=12),
    ChannelSpec(period=40, capacity=6, deadline=30),
    ChannelSpec(period=16, capacity=1, deadline=16),
    ChannelSpec(period=30, capacity=5, deadline=11),
)

request = st.tuples(
    st.sampled_from(ENDPOINTS),
    st.sampled_from(ENDPOINTS),
    st.sampled_from(SPECS),
).filter(lambda r: r[0] != r[1])


@st.composite
def step(draw):
    if draw(st.integers(min_value=0, max_value=9)) < 3:
        return ("release", draw(st.integers(min_value=0, max_value=31)))
    return ("burst", draw(st.lists(request, min_size=1, max_size=12)))


histories = st.tuples(
    st.integers(min_value=0, max_value=len(SCHEMES) - 1),
    st.lists(step(), min_size=1, max_size=16),
)


def _controller(scheme_index):
    return AdmissionController(
        SystemState(NODES), SCHEMES[scheme_index]()
    )


def _assert_decisions_equal(batched, scalar):
    assert len(batched) == len(scalar)
    for b, s in zip(batched, scalar):
        assert b.accepted == s.accepted
        assert b.reason == s.reason
        assert b.channel.channel_id == s.channel.channel_id
        assert b.partition == s.partition


def _assert_observably_identical(batch_ctrl, scalar_ctrl):
    assert batch_ctrl.accept_count == scalar_ctrl.accept_count
    assert batch_ctrl.reject_count == scalar_ctrl.reject_count
    assert (
        batch_ctrl.rejections_by_reason == scalar_ctrl.rejections_by_reason
    )
    for node in NODES:
        for link in (LinkRef.uplink(node), LinkRef.downlink(node)):
            assert batch_ctrl.state.link_utilization(
                link
            ) == scalar_ctrl.state.link_utilization(link)
    assert persistence.dumps(batch_ctrl) == persistence.dumps(scalar_ctrl)


@given(histories)
@settings(max_examples=80, deadline=None)
def test_admit_many_churn_matches_scalar_loop(history):
    scheme_index, steps = history
    batch_ctrl = _controller(scheme_index)
    scalar_ctrl = _controller(scheme_index)
    for op in steps:
        if op[0] == "release":
            active = sorted(batch_ctrl.state.channels)
            if not active:
                continue
            victim = active[op[1] % len(active)]
            batch_ctrl.release(victim)
            scalar_ctrl.release(victim)
            continue
        burst = op[1]
        _assert_decisions_equal(
            batch_ctrl.admit_many(burst),
            [scalar_ctrl.request(s, d, spec) for s, d, spec in burst],
        )
    _assert_observably_identical(batch_ctrl, scalar_ctrl)
    # Network-calculus bounds are a function of the installed task
    # sets; they must agree exactly (Fraction arithmetic) per channel.
    assert (
        batch_ctrl.state.channel_delay_bounds()
        == scalar_ctrl.state.channel_delay_bounds()
    )


@given(histories, st.integers(min_value=0, max_value=15))
@settings(max_examples=60, deadline=None)
def test_snapshot_restore_mid_history_continues_identically(history, cut):
    scheme_index, steps = history
    original = _controller(scheme_index)
    cut %= len(steps)

    def run(ctrl, ops):
        out = []
        for op in ops:
            if op[0] == "release":
                active = sorted(ctrl.state.channels)
                if not active:
                    continue
                ctrl.release(active[op[1] % len(active)])
            else:
                out.extend(ctrl.admit_many(op[1]))
        return out

    run(original, steps[:cut])
    restored = persistence.restore(
        persistence.snapshot(original), SCHEMES[scheme_index]()
    )
    _assert_decisions_equal(
        run(original, steps[cut:]), run(restored, steps[cut:])
    )
    _assert_observably_identical(original, restored)
