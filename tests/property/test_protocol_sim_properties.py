"""Property tests: codec fuzzing and simulator ordering invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.errors import CodecError, ReproError
from repro.protocol.frames import (
    RequestFrame,
    ResponseFrame,
    TeardownFrame,
    decode_signaling,
)
from repro.sim.kernel import Simulator


@given(st.binary(min_size=0, max_size=64))
@settings(max_examples=300, deadline=None)
def test_decoder_never_crashes_on_garbage(data):
    """Any byte string either decodes to a frame or raises CodecError --
    never an unhandled exception, never a silently wrong type."""
    try:
        frame = decode_signaling(data)
    except CodecError:
        return
    except ReproError as exc:  # any other library error is a bug
        raise AssertionError(f"wrong error type: {type(exc).__name__}")
    assert isinstance(frame, (RequestFrame, ResponseFrame, TeardownFrame))


@given(st.binary(min_size=1, max_size=64))
@settings(max_examples=200, deadline=None)
def test_decode_encode_decode_is_stable(data):
    """When garbage *does* decode, re-encoding reproduces a frame that
    decodes to the same value (the codec is a retraction)."""
    try:
        frame = decode_signaling(data)
    except CodecError:
        return
    assert decode_signaling(frame.encode()) == frame


@given(
    st.lists(
        st.integers(min_value=0, max_value=10_000),
        min_size=0,
        max_size=60,
    )
)
@settings(max_examples=150, deadline=None)
def test_simulator_dispatch_order_is_sorted_and_stable(delays):
    """Events fire in nondecreasing time order; equal times keep
    submission order (the determinism contract every model relies on)."""
    sim = Simulator()
    fired: list[tuple[int, int]] = []
    for index, delay in enumerate(delays):
        sim.schedule(
            delay, lambda i=index: fired.append((sim.now, i))
        )
    sim.run()
    assert len(fired) == len(delays)
    times = [t for t, _ in fired]
    assert times == sorted(times)
    # stability: among equal times, indices ascend
    for (t1, i1), (t2, i2) in zip(fired, fired[1:]):
        if t1 == t2:
            assert i1 < i2
    # each event fired at exactly its scheduled time
    for time, index in fired:
        assert time == delays[index]


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),  # delay
            st.booleans(),  # cancel?
        ),
        max_size=40,
    )
)
@settings(max_examples=150, deadline=None)
def test_cancelled_events_never_fire(plan):
    sim = Simulator()
    fired: list[int] = []
    handles = []
    for index, (delay, _) in enumerate(plan):
        handles.append(
            sim.schedule(delay, lambda i=index: fired.append(i))
        )
    cancelled = {
        index for index, (_, cancel) in enumerate(plan) if cancel
    }
    for index in cancelled:
        assert handles[index].cancel()
    sim.run()
    assert set(fired) == set(range(len(plan))) - cancelled
