"""Property tests: churn + snapshot/resume never change a decision.

Two generators attack the long-lived service from different angles:

* random kill points against :class:`~repro.service.AdmissionService`
  -- resuming from the latest checkpoint must reproduce the
  uninterrupted run's ledger and final admission state byte for byte,
  whatever the (seed, kill instant, checkpoint period) triple;
* the churn-mode oracle trial
  (:func:`~repro.oracle.admission_diff.run_churn_trial`) -- random
  interleavings of admit/depart/snapshot/resume diffed against a
  never-snapshotted from-scratch controller must never disagree.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.core.admission import AdmissionController, SystemState
from repro.core.partitioning import SymmetricDPS
from repro.oracle.admission_diff import run_churn_trial
from repro.service import (
    AdmissionService,
    ChurnConfig,
    ChurnProcess,
    resume,
)
from repro.sim.rng import RngRegistry

NODES = tuple(f"m{i}" for i in range(5))
HORIZON = 20_000_000


def build_service(seed: int, checkpoint_every_ns: int) -> AdmissionService:
    controller = AdmissionController(SystemState(NODES), SymmetricDPS())
    churn = ChurnProcess(RngRegistry(seed), ChurnConfig(nodes=NODES))
    return AdmissionService(
        controller, churn, checkpoint_every_ns=checkpoint_every_ns
    )


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    kill_fraction=st.floats(min_value=0.15, max_value=0.9),
    checkpoint_every_ms=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_kill_and_resume_reproduces_the_run(
    seed, kill_fraction, checkpoint_every_ms
):
    checkpoint_every_ns = checkpoint_every_ms * 1_000_000
    kill_at = max(checkpoint_every_ns, int(HORIZON * kill_fraction))

    reference = build_service(seed, checkpoint_every_ns)
    reference.start()
    reference.run_until(HORIZON)

    victim = build_service(seed, checkpoint_every_ns)
    victim.start()
    victim.run_until(kill_at)
    checkpoint = victim.last_checkpoint
    assert checkpoint is not None
    resumed = resume(
        json.loads(json.dumps(checkpoint.data)),
        SymmetricDPS(),
        RngRegistry(seed),
        ChurnConfig(nodes=NODES),
    )
    resumed.run_until(HORIZON)

    prefix = victim.ledger[: checkpoint.data["ledger_len"] + 1]
    assert list(reference.ledger) == list(prefix) + list(resumed.ledger)
    assert reference.final_state_json() == resumed.final_state_json()
    assert reference.counters == resumed.counters


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    trial=st.integers(min_value=0, max_value=9),
)
@settings(max_examples=30, deadline=None)
def test_churn_trial_never_disagrees(seed, trial):
    disagreement, counts = run_churn_trial(seed, trial, ops=40)
    assert disagreement is None, disagreement
    assert counts["decisions"] > 0
