"""Tests for fault injection: lossy wires and request timeouts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.channel import ChannelSpec
from repro.core.partitioning import SymmetricDPS
from repro.errors import ProtocolError, SimulationError
from repro.network.link import HalfLink
from repro.network.phy import PhyProfile
from repro.network.topology import build_star
from repro.protocol.ethernet import EthernetFrame, FrameKind
from repro.protocol.signaling import ConnectionRequestState
from repro.sim.kernel import Simulator


def be_frame():
    return EthernetFrame(
        kind=FrameKind.BEST_EFFORT,
        source="a",
        destination="b",
        payload_bytes=100,
    )


class TestLossyLink:
    def test_loss_rate_validation(self):
        sim = Simulator()
        phy = PhyProfile.fast_ethernet()
        with pytest.raises(SimulationError):
            HalfLink(sim, phy, "x", lambda f: None, loss_rate=1.0,
                     loss_rng=np.random.default_rng(1))
        with pytest.raises(SimulationError):
            HalfLink(sim, phy, "x", lambda f: None, loss_rate=-0.1,
                     loss_rng=np.random.default_rng(1))
        with pytest.raises(SimulationError, match="loss_rng"):
            HalfLink(sim, phy, "x", lambda f: None, loss_rate=0.5)

    def test_all_or_nothing_statistics(self):
        sim = Simulator()
        phy = PhyProfile.fast_ethernet()
        delivered = []
        link = HalfLink(
            sim, phy, "x", delivered.append,
            loss_rate=0.5, loss_rng=np.random.default_rng(42),
        )

        def pump():
            if link.frames_carried < 200 and not link.busy:
                link.transmit(be_frame())

        link.on_idle = pump
        pump()
        sim.run()
        assert link.frames_carried == 200
        assert link.frames_lost + len(delivered) == 200
        # with p=0.5 and n=200, both counts are safely in (60, 140)
        assert 60 < link.frames_lost < 140

    def test_zero_loss_default(self):
        sim = Simulator()
        phy = PhyProfile.fast_ethernet()
        delivered = []
        link = HalfLink(sim, phy, "x", delivered.append)
        link.transmit(be_frame())
        sim.run()
        assert link.frames_lost == 0
        assert len(delivered) == 1

    def test_loss_is_reproducible(self):
        def run(seed):
            net = build_star(
                ["a", "b"], dps=SymmetricDPS(),
                loss_rate=0.2, loss_seed=seed,
            )
            grant = net.establish_analytically(
                "a", "b", ChannelSpec(period=10, capacity=1, deadline=8)
            )
            net.nodes["a"].start_periodic_source(
                grant.channel_id, stop_after_messages=50
            )
            net.sim.run()
            return net.metrics.total_rt_frames

        assert run(1) == run(1)
        # different seeds almost surely differ over 50 Bernoulli draws
        outcomes = {run(seed) for seed in range(5)}
        assert len(outcomes) > 1

    def test_lost_frames_never_late(self):
        """Loss degrades completeness, never timeliness (EXP-R1 core)."""
        net = build_star(
            ["a", "b"], dps=SymmetricDPS(), loss_rate=0.3, loss_seed=3
        )
        grant = net.establish_analytically(
            "a", "b", ChannelSpec(period=10, capacity=2, deadline=8)
        )
        net.nodes["a"].start_periodic_source(
            grant.channel_id, stop_after_messages=40
        )
        net.sim.run()
        stats = net.metrics.channels[grant.channel_id]
        assert stats.frames_delivered < 80  # some were lost
        assert stats.deadline_misses == 0  # none arrived late


class TestRequestTimeout:
    def test_timeout_fires_on_total_loss(self):
        """With a near-certain loss rate the handshake cannot complete;
        the timeout completes the request as TIMED_OUT."""
        net = build_star(
            ["a", "b"], dps=SymmetricDPS(),
            loss_rate=0.99, loss_seed=7,
        )
        outcomes = []
        net.nodes["a"].request_channel(
            destination_mac=net.nodes["b"].mac,
            destination_ip=net.nodes["b"].ip,
            destination_name="b",
            spec=ChannelSpec(period=100, capacity=3, deadline=40),
            on_complete=lambda req, grant: outcomes.append((req.state, grant)),
            timeout_ns=10_000_000,
        )
        net.sim.run()
        assert outcomes == [(ConnectionRequestState.TIMED_OUT, None)]
        assert net.nodes["a"].rt_layer.grants == {}

    def test_response_wins_race_when_wire_is_clean(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        outcomes = []
        net.nodes["a"].request_channel(
            destination_mac=net.nodes["b"].mac,
            destination_ip=net.nodes["b"].ip,
            destination_name="b",
            spec=ChannelSpec(period=100, capacity=3, deadline=40),
            on_complete=lambda req, grant: outcomes.append(req.state),
            timeout_ns=1_000_000_000,  # generous
        )
        net.sim.run()
        assert outcomes == [ConnectionRequestState.ACCEPTED]

    def test_invalid_timeout_rejected(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        with pytest.raises(SimulationError):
            net.nodes["a"].request_channel(
                destination_mac=net.nodes["b"].mac,
                destination_ip=net.nodes["b"].ip,
                destination_name="b",
                spec=ChannelSpec(period=100, capacity=3, deadline=40),
                timeout_ns=0,
            )

    def test_late_response_releases_orphaned_reservation(self):
        """Timeout shorter than the handshake RTT: the switch accepts,
        but the source has given up -- the node's automatic teardown must
        free the reservation."""
        net = build_star(["a", "b"], dps=SymmetricDPS())
        outcomes = []
        net.nodes["a"].request_channel(
            destination_mac=net.nodes["b"].mac,
            destination_ip=net.nodes["b"].ip,
            destination_name="b",
            spec=ChannelSpec(period=100, capacity=3, deadline=40),
            on_complete=lambda req, grant: outcomes.append(req.state),
            timeout_ns=1_000,  # far below the ~300 us handshake RTT
        )
        net.sim.run()
        assert outcomes == [ConnectionRequestState.TIMED_OUT]
        # the late positive response triggered an automatic teardown:
        assert len(net.admission.state) == 0
        assert net.nodes["a"].rt_layer.grants == {}

    def test_timeout_id_not_reused_while_reserved(self):
        from repro.protocol.signaling import SourceSignaling

        signaling = SourceSignaling(node_mac=1, switch_mac=2, node_ip=3)
        request = signaling.build_request("b", 2, 2, 100, 3, 40)
        signaling.timeout_request(request.connect_request_id)
        fresh = signaling.build_request("b", 2, 2, 100, 3, 40)
        assert fresh.connect_request_id != request.connect_request_id

    def test_timeout_unknown_request_raises(self):
        from repro.protocol.signaling import SourceSignaling

        signaling = SourceSignaling(node_mac=1, switch_mac=2, node_ip=3)
        with pytest.raises(ProtocolError):
            signaling.timeout_request(5)


class TestEstablishWithTimeout:
    def test_establish_on_lossy_wire_times_out_gracefully(self):
        net = build_star(
            ["a", "b"], dps=SymmetricDPS(), loss_rate=0.99, loss_seed=11
        )
        grant = net.establish(
            "a", "b", ChannelSpec(period=100, capacity=3, deadline=40),
            timeout_ns=5_000_000,
        )
        assert grant is None
        assert net.rejections == 1

    def test_establish_without_timeout_raises_on_total_loss(self):
        net = build_star(
            ["a", "b"], dps=SymmetricDPS(), loss_rate=0.99, loss_seed=11
        )
        from repro.errors import TopologyError

        with pytest.raises(TopologyError, match="timeout_ns"):
            net.establish(
                "a", "b", ChannelSpec(period=100, capacity=3, deadline=40)
            )

    def test_establish_with_timeout_on_clean_wire_succeeds(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        grant = net.establish(
            "a", "b", ChannelSpec(period=100, capacity=3, deadline=40),
            timeout_ns=1_000_000_000,
        )
        assert grant is not None
