"""Tests for sporadic sources and remaining node/switch edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.channel import ChannelSpec
from repro.core.partitioning import AsymmetricDPS, SymmetricDPS
from repro.errors import (
    ProtocolError,
    SimulationError,
    UnknownChannelError,
)
from repro.network.topology import build_star
from repro.protocol.ethernet import EthernetFrame, FrameKind


class TestSporadicSources:
    def test_sporadic_traffic_meets_all_deadlines(self):
        """Sporadic releases (gaps >= P) demand no more than periodic:
        the periodic reservation still guarantees every deadline."""
        net = build_star(
            ["m"] + [f"s{i}" for i in range(6)], dps=SymmetricDPS()
        )
        spec = ChannelSpec(period=100, capacity=3, deadline=40)
        rng = np.random.default_rng(21)
        for i in range(6):
            grant = net.establish_analytically("m", f"s{i}", spec)
            net.nodes["m"].start_sporadic_source(
                grant.channel_id, rng=rng, stop_after_messages=8,
                mean_extra_gap_slots=30.0,
            )
        net.sim.run()
        assert net.metrics.total_rt_messages == 48
        assert net.metrics.total_deadline_misses == 0

    def test_gaps_are_at_least_one_period(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        spec = ChannelSpec(period=50, capacity=1, deadline=20)
        grant = net.establish_analytically("a", "b", spec)
        releases = []
        original = net.nodes["a"].send_message

        def spy(channel_id):
            releases.append(net.sim.now)
            return original(channel_id)

        net.nodes["a"].send_message = spy  # type: ignore[method-assign]
        net.nodes["a"].start_sporadic_source(
            grant.channel_id, rng=np.random.default_rng(5),
            stop_after_messages=20,
        )
        net.sim.run()
        period_ns = 50 * net.phy.slot_ns
        gaps = [b - a for a, b in zip(releases, releases[1:])]
        assert all(gap >= period_ns for gap in gaps)

    def test_sporadic_requires_grant(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        with pytest.raises(UnknownChannelError):
            net.nodes["a"].start_sporadic_source(
                9, rng=np.random.default_rng(1)
            )

    def test_negative_gap_rejected(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        grant = net.establish_analytically(
            "a", "b", ChannelSpec(period=100, capacity=3, deadline=40)
        )
        with pytest.raises(SimulationError):
            net.nodes["a"].start_sporadic_source(
                grant.channel_id,
                rng=np.random.default_rng(1),
                mean_extra_gap_slots=-1.0,
            )


class TestNodeEdgeCases:
    def test_double_uplink_attach_rejected(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        with pytest.raises(SimulationError, match="already has an uplink"):
            net.nodes["a"].attach_uplink(net.nodes["b"].uplink)

    def test_unexpected_signaling_payload_raises(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        bogus = EthernetFrame(
            kind=FrameKind.SIGNALING,
            source="switch",
            destination="a",
            payload_bytes=11,
            payload_object="garbage",
        )
        with pytest.raises(ProtocolError, match="unexpected"):
            net.nodes["a"].receive(bogus)

    def test_malformed_tuple_payload_raises(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        bogus = EthernetFrame(
            kind=FrameKind.SIGNALING,
            source="switch",
            destination="a",
            payload_bytes=11,
            payload_object=("not a response", "not a grant"),
        )
        with pytest.raises(ProtocolError, match="malformed"):
            net.nodes["a"].receive(bogus)

    def test_teardown_of_unknown_channel_raises(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        with pytest.raises(UnknownChannelError):
            net.nodes["a"].teardown_channel(5)


class TestSwitchEdgeCases:
    def test_duplicate_port_attach_rejected(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        port = net.switch.port_toward("a")
        with pytest.raises(SimulationError, match="already has a port"):
            net.switch.attach_port("a", port)

    def test_port_toward_unknown_raises(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        with pytest.raises(SimulationError, match="no port"):
            net.switch.port_toward("ghost")

    def test_unexpected_signaling_at_switch_raises(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        bogus = EthernetFrame(
            kind=FrameKind.SIGNALING,
            source="a",
            destination="switch",
            payload_bytes=11,
            payload_object=12345,
        )
        net.switch.receive(bogus)
        with pytest.raises(ProtocolError, match="unexpected"):
            net.sim.run()

    def test_forwarded_counters(self):
        net = build_star(["a", "b"], dps=AsymmetricDPS())
        grant = net.establish_analytically(
            "a", "b", ChannelSpec(period=100, capacity=3, deadline=40)
        )
        net.nodes["a"].send_message(grant.channel_id)
        net.nodes["a"].send_best_effort("b", 100)
        net.sim.run()
        assert net.switch.frames_forwarded == 4  # 3 RT + 1 BE
        assert net.switch.frames_dropped == 0
