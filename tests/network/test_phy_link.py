"""Tests for PhyProfile and HalfLink timing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.network.link import HalfLink
from repro.network.phy import PhyProfile
from repro.protocol.ethernet import EthernetFrame, FrameKind
from repro.sim.kernel import Simulator
from repro.units import ETH_MAX_PAYLOAD


def be_frame(payload=ETH_MAX_PAYLOAD) -> EthernetFrame:
    return EthernetFrame(
        kind=FrameKind.BEST_EFFORT,
        source="a",
        destination="b",
        payload_bytes=payload,
    )


class TestPhyProfile:
    def test_fast_ethernet_slot(self):
        phy = PhyProfile.fast_ethernet()
        assert phy.slot_ns == 123_040
        assert phy.max_frame_ns == phy.slot_ns

    def test_gigabit_slot(self):
        assert PhyProfile.gigabit().slot_ns == 12_304

    def test_transmission_time_scales_with_size(self):
        phy = PhyProfile.fast_ethernet()
        big = phy.transmission_ns(be_frame(ETH_MAX_PAYLOAD))
        small = phy.transmission_ns(be_frame(1))
        assert big == phy.slot_ns
        assert small == 84 * 80  # min wire frame at 80 ns/byte

    def test_t_latency_composition(self):
        phy = PhyProfile.fast_ethernet()
        expected = 2 * phy.propagation_ns + phy.switch_processing_ns + (
            2 * phy.max_frame_ns
        )
        assert phy.t_latency_ns == expected

    def test_per_link_allowance(self):
        phy = PhyProfile.fast_ethernet()
        assert phy.per_link_allowance_ns() == (
            phy.propagation_ns + phy.max_frame_ns
        )

    def test_negative_delays_rejected(self):
        from repro.units import TimeBase

        with pytest.raises(ConfigurationError):
            PhyProfile(
                timebase=TimeBase.for_speed_mbps(100), propagation_ns=-1
            )
        with pytest.raises(ConfigurationError):
            PhyProfile(
                timebase=TimeBase.for_speed_mbps(100),
                switch_processing_ns=-1,
            )


class TestHalfLink:
    def make(self):
        sim = Simulator()
        delivered = []
        phy = PhyProfile.fast_ethernet()
        link = HalfLink(
            sim=sim, phy=phy, name="test", deliver=delivered.append
        )
        return sim, phy, link, delivered

    def test_delivery_after_tx_plus_propagation(self):
        sim, phy, link, delivered = self.make()
        frame = be_frame()
        link.transmit(frame)
        sim.run()
        assert delivered == [frame]
        assert sim.now == phy.slot_ns + phy.propagation_ns

    def test_busy_until_transmission_ends(self):
        sim, phy, link, _ = self.make()
        completion = link.transmit(be_frame())
        assert completion == phy.slot_ns
        assert link.busy
        sim.run(until=phy.slot_ns - 1)
        assert link.busy
        sim.run(until=phy.slot_ns)
        assert not link.busy

    def test_transmit_while_busy_raises(self):
        sim, phy, link, _ = self.make()
        link.transmit(be_frame())
        with pytest.raises(SimulationError, match="busy"):
            link.transmit(be_frame())

    def test_on_idle_fires_before_delivery(self):
        sim, phy, link, delivered = self.make()
        events = []
        link.on_idle = lambda: events.append(("idle", sim.now))
        link.transmit(be_frame())
        sim.run()
        assert events == [("idle", phy.slot_ns)]
        # delivery strictly after idle (propagation > 0)
        assert delivered

    def test_statistics(self):
        sim, phy, link, _ = self.make()
        link.transmit(be_frame())
        sim.run()
        link.transmit(be_frame(1))
        sim.run()
        assert link.frames_carried == 2
        assert link.bytes_carried == 1538 + 84
        assert 0 < link.utilization() <= 1.0

    def test_utilization_window_argument_rejected(self):
        # regression: utilization(since_ns) used to divide *lifetime*
        # busy time by the window, over-reporting whenever the wire was
        # busy before the window started (masked by the min(1.0) cap)
        sim, phy, link, _ = self.make()
        link.transmit(be_frame())
        sim.run()
        with pytest.raises(SimulationError, match="busy_mark"):
            link.utilization(since_ns=1)

    def test_utilization_lifetime_fraction(self):
        sim, phy, link, _ = self.make()
        assert link.utilization() == 0.0  # before time advances
        link.transmit(be_frame())
        sim.run(until=2 * phy.slot_ns)
        assert link.utilization() == pytest.approx(0.5)

    def test_utilization_since_counts_only_the_window(self):
        sim, phy, link, _ = self.make()
        # one slot of busy time, then a long idle stretch
        link.transmit(be_frame())
        sim.run(until=10 * phy.slot_ns)
        mark = link.busy_mark()
        # window: one busy slot out of two
        link.transmit(be_frame())
        sim.run(until=12 * phy.slot_ns)
        assert link.utilization_since(mark) == pytest.approx(0.5)
        # the naive lifetime/window division would have claimed 100%:
        # 2 slots of lifetime busy over a 2-slot window
        assert link.utilization() == pytest.approx(2 / 12)

    def test_utilization_since_empty_window(self):
        sim, phy, link, _ = self.make()
        link.transmit(be_frame())
        sim.run()
        assert link.utilization_since(link.busy_mark()) == 0.0

    def test_back_to_back_via_on_idle(self):
        sim, phy, link, delivered = self.make()
        pending = [be_frame(), be_frame()]

        def pump():
            if pending and not link.busy:
                link.transmit(pending.pop(0))

        link.on_idle = pump
        pump()
        sim.run()
        assert len(delivered) == 2
        # second frame starts exactly when the first ends
        assert sim.now == 2 * phy.slot_ns + phy.propagation_ns
