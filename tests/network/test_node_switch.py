"""Integration tests for EndNode + Switch over the simulated wire."""

from __future__ import annotations

import pytest

from repro.core.channel import ChannelSpec
from repro.core.partitioning import AsymmetricDPS, SymmetricDPS
from repro.errors import TopologyError, UnknownChannelError
from repro.network.topology import build_star
from repro.protocol.signaling import ConnectionRequestState


@pytest.fixture
def net():
    return build_star(["a", "b", "c"], dps=SymmetricDPS())


class TestHandshake:
    def test_accepted_channel_installs_grant(self, net, paper_spec):
        grant = net.establish("a", "b", paper_spec)
        assert grant is not None
        assert grant.channel_id == 1
        assert grant.uplink_deadline_slots == 20
        assert net.nodes["a"].rt_layer.grants[1] is grant
        assert net.nodes["b"].incoming_channels == {1: 3}

    def test_rejected_channel_reports_none(self, net):
        bad = ChannelSpec(period=100, capacity=3, deadline=5)
        assert net.establish("a", "b", bad) is None
        assert net.rejections == 1
        assert net.nodes["a"].rt_layer.grants == {}

    def test_destination_policy_can_decline(self, paper_spec):
        net = build_star(
            ["a", "b"],
            dps=SymmetricDPS(),
            destination_policy=lambda request: False,
        )
        assert net.establish("a", "b", paper_spec) is None
        # The switch must have released the reservation.
        assert len(net.admission.state) == 0

    def test_source_signaling_state(self, net, paper_spec):
        net.establish("a", "b", paper_spec)
        completed = net.nodes["a"].signaling.completed
        assert len(completed) == 1
        assert completed[0].state is ConnectionRequestState.ACCEPTED

    def test_callback_receives_grant(self, net, paper_spec):
        results = []
        node = net.nodes["a"]
        node.request_channel(
            destination_mac=net.nodes["b"].mac,
            destination_ip=net.nodes["b"].ip,
            destination_name="b",
            spec=paper_spec,
            on_complete=lambda req, grant: results.append((req, grant)),
        )
        net.sim.run()
        (request, grant), = results
        assert request.state is ConnectionRequestState.ACCEPTED
        assert grant is not None

    def test_many_channels_fill_uplink(self, net, paper_spec):
        accepted = sum(
            net.establish("a", dest, paper_spec) is not None
            for dest in ["b", "c"] * 4
        )
        assert accepted == 6  # SDPS cap on one uplink

    def test_analytical_matches_wire(self, paper_spec):
        wire = build_star(["a", "b", "c"], dps=AsymmetricDPS())
        fast = build_star(["a", "b", "c"], dps=AsymmetricDPS())
        for dest in ["b", "c"] * 6:
            w = wire.establish("a", dest, paper_spec)
            f = fast.establish_analytically("a", dest, paper_spec)
            assert (w is None) == (f is None)
            if w is not None and f is not None:
                assert (
                    w.uplink_deadline_slots == f.uplink_deadline_slots
                )


class TestDataPath:
    def test_message_arrives_complete(self, net, paper_spec):
        grant = net.establish("a", "b", paper_spec)
        net.nodes["a"].send_message(grant.channel_id)
        net.sim.run()
        stats = net.metrics.channels[grant.channel_id]
        assert stats.frames_delivered == 3
        assert stats.messages_completed == 1
        assert stats.deadline_misses == 0

    def test_periodic_source_produces_messages(self, net, paper_spec):
        grant = net.establish("a", "b", paper_spec)
        net.nodes["a"].start_periodic_source(
            grant.channel_id, stop_after_messages=4
        )
        net.sim.run()
        stats = net.metrics.channels[grant.channel_id]
        assert stats.messages_completed == 4
        assert stats.frames_delivered == 12

    def test_stop_periodic_source(self, net, paper_spec):
        grant = net.establish("a", "b", paper_spec)
        net.nodes["a"].start_periodic_source(grant.channel_id)
        net.run_slots(250)  # a few periods
        net.nodes["a"].stop_periodic_source(grant.channel_id)
        count = net.metrics.channels[grant.channel_id].messages_completed
        net.run_slots(300)
        assert net.metrics.channels[grant.channel_id].messages_completed <= count + 1

    def test_send_on_unknown_channel_raises(self, net):
        with pytest.raises(UnknownChannelError):
            net.nodes["a"].send_message(99)
        with pytest.raises(UnknownChannelError):
            net.nodes["a"].start_periodic_source(99)

    def test_best_effort_delivery(self, net):
        net.nodes["a"].send_best_effort("b", 500)
        net.sim.run()
        assert net.metrics.be_frames_delivered == 1
        assert net.metrics.be_bytes_delivered == 500

    def test_best_effort_to_unknown_destination_dropped(self, net):
        net.nodes["a"].send_best_effort("ghost", 500)
        net.sim.run()
        assert net.metrics.be_frames_delivered == 0
        assert net.switch.frames_dropped == 1


class TestTeardown:
    def test_teardown_frees_capacity(self, net, paper_spec):
        grants = [
            net.establish("a", dest, paper_spec) for dest in ["b", "c"] * 3
        ]
        assert all(g is not None for g in grants)
        assert net.establish("a", "b", paper_spec) is None  # uplink full
        net.nodes["a"].teardown_channel(grants[0].channel_id)
        net.sim.run()
        assert net.establish("a", "b", paper_spec) is not None

    def test_frames_in_flight_after_teardown_dropped(self, net, paper_spec):
        grant = net.establish("a", "b", paper_spec)
        net.nodes["a"].send_message(grant.channel_id)
        # tear down immediately; data frames race the teardown frame but
        # signalling shares the FCFS queue behind the 3 RT frames, so the
        # data always wins here; to force a drop, tear down analytically:
        net.admission.release(grant.channel_id)
        net.sim.run()
        assert net.switch.frames_dropped == 3


class TestTopologyBuilder:
    def test_duplicate_names_rejected(self):
        with pytest.raises(TopologyError):
            build_star(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            build_star([])

    def test_switch_name_reserved(self):
        with pytest.raises(TopologyError):
            build_star(["a", "switch"])

    def test_unknown_node_lookup(self, net):
        with pytest.raises(TopologyError):
            net.node("ghost")

    def test_deterministic_addressing(self):
        one = build_star(["a", "b"])
        two = build_star(["a", "b"])
        assert one.nodes["a"].mac == two.nodes["a"].mac
        assert one.nodes["b"].ip == two.nodes["b"].ip
        assert one.nodes["a"].mac != one.nodes["b"].mac
