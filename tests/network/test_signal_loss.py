"""End-to-end handshake recovery under targeted signalling loss.

The matrix every retry/lease/idempotence mechanism must pass: each of
the five control-plane frame classes is destroyed exactly once, and the
handshake must still converge -- channel established, no reservation
stranded at the switch, admission state exactly matching the installed
grants.
"""

from __future__ import annotations

import pytest

from repro.core.channel import ChannelSpec
from repro.core.partitioning import SymmetricDPS
from repro.faults import SIGNALLING_CLASSES, FaultPlan
from repro.network.topology import build_star
from repro.protocol.signaling import RetryPolicy
from repro.sim.rng import RngRegistry

SPEC = ChannelSpec(period=100, capacity=3, deadline=40)

#: deterministic (jitter-free) schedule for the single-drop matrix:
#: one lost frame costs exactly one 2 ms round of retransmission.
RETRY = RetryPolicy(timeout_ns=2_000_000, max_retries=5, backoff=2.0)


def lossy_star(plan: FaultPlan, lease_ns: int | None = 50_000_000):
    return build_star(
        ["a", "b"], dps=SymmetricDPS(), fault_plan=plan,
        signal_lease_ns=lease_ns,
    )


def assert_no_leak(net, expected_channels):
    """Admission state == installed grants, nothing pending at the switch."""
    assert net.switch.manager.pending_offers == 0
    assert set(net.admission.state.channels.keys()) == expected_channels


class TestDropEachHandshakeFrameOnce:
    @pytest.mark.parametrize("frame_class", SIGNALLING_CLASSES[:-1])
    def test_handshake_recovers(self, frame_class):
        # drop the first occurrence of one handshake step; the retry
        # machinery must re-drive the handshake to completion
        plan = FaultPlan(drop_occurrences={frame_class: [0]})
        net = lossy_star(plan)
        grant = net.establish("a", "b", SPEC, retry=RETRY)
        assert grant is not None, f"lost {frame_class} never recovered"
        assert plan.drops_by_class[frame_class] == 1
        assert net.nodes["a"].rt_layer.grants == {grant.channel_id: grant}
        assert_no_leak(net, {grant.channel_id})
        # recovery came from retransmission, not silent luck
        assert net.nodes["a"].signal_retries >= 1

    def test_teardown_drop_recovers_with_repeats(self):
        plan = FaultPlan(drop_occurrences={"teardown": [0]})
        net = lossy_star(plan)
        grant = net.establish("a", "b", SPEC, retry=RETRY)
        net.nodes["a"].teardown_channel(grant.channel_id, repeats=2)
        net.sim.run()
        assert plan.drops_by_class["teardown"] == 1
        assert_no_leak(net, set())
        assert net.nodes["a"].rt_layer.grants == {}

    def test_single_teardown_would_leak(self):
        # control for the test above: without repeats the lost teardown
        # really does strand the reservation (that is the bug class the
        # repeats exist for)
        plan = FaultPlan(drop_occurrences={"teardown": [0]})
        net = lossy_star(plan)
        grant = net.establish("a", "b", SPEC, retry=RETRY)
        net.nodes["a"].teardown_channel(grant.channel_id, repeats=1)
        net.sim.run()
        assert set(net.admission.state.channels.keys()) == {grant.channel_id}

    def test_duplicate_surviving_teardowns_absorbed(self):
        # nothing dropped: all repeats arrive and the switch must absorb
        # the duplicates instead of crashing on the second release
        net = lossy_star(FaultPlan())
        grant = net.establish("a", "b", SPEC, retry=RETRY)
        net.nodes["a"].teardown_channel(grant.channel_id, repeats=3)
        net.sim.run()
        assert_no_leak(net, set())
        assert net.switch.manager.stale_frames == 2


class TestLeaseReclaim:
    def test_unanswerable_offer_is_reclaimed(self):
        # the destination response never arrives; once the source gives
        # up, the lease must free the switch's reservation
        plan = FaultPlan(drop_occurrences={"dest-response": range(50)})
        net = lossy_star(plan, lease_ns=5_000_000)
        policy = RetryPolicy(timeout_ns=2_000_000, max_retries=2, backoff=2.0)
        grant = net.establish("a", "b", SPEC, retry=policy)
        assert grant is None
        assert net.rejections == 1
        assert net.switch.manager.lease_reclaims >= 1
        assert_no_leak(net, set())

    def test_fresh_request_succeeds_after_reclaim(self):
        # capacity freed by the reclaim must be reusable: the first
        # request's dest-responses (one per retransmission round) are
        # all destroyed, the second request's pass untouched
        plan = FaultPlan(drop_occurrences={"dest-response": range(3)})
        net = lossy_star(plan, lease_ns=5_000_000)
        policy = RetryPolicy(timeout_ns=2_000_000, max_retries=2, backoff=2.0)
        assert net.establish("a", "b", SPEC, retry=policy) is None
        grant = net.establish("a", "b", SPEC, retry=policy)
        assert grant is not None
        assert_no_leak(net, {grant.channel_id})


class TestBernoulliSmoke:
    def _run(self, seed: int):
        plan = FaultPlan.signalling_loss(0.2, seed=seed)
        net = lossy_star(plan)
        policy = RetryPolicy(
            timeout_ns=2_000_000, max_retries=10, backoff=1.5, jitter=0.25,
            max_timeout_ns=20_000_000,
        )
        rng = RngRegistry(seed).stream("retry-jitter")
        channel_ids = []
        for _ in range(8):
            grant = net.establish(
                "a", "b", SPEC, retry=policy, retry_rng=rng
            )
            channel_ids.append(None if grant is None else grant.channel_id)
        return net, plan, channel_ids

    def test_every_request_resolves_without_leaks(self):
        net, plan, channel_ids = self._run(seed=5)
        assert plan.signalling_drops() > 0
        established = {cid for cid in channel_ids if cid is not None}
        assert_no_leak(net, established)

    def test_deterministic_per_seed(self):
        net_a, _, ids_a = self._run(seed=5)
        net_b, _, ids_b = self._run(seed=5)
        assert ids_a == ids_b
        assert net_a.sim.now == net_b.sim.now
        assert (
            net_a.switch.manager.stale_frames
            == net_b.switch.manager.stale_frames
        )
