"""Tests for the dual-queue output port (Figure 18.2)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.network.link import HalfLink
from repro.network.phy import PhyProfile
from repro.network.port import OutputPort
from repro.protocol.ethernet import EthernetFrame, FrameKind
from repro.protocol.headers import encode_rt_header
from repro.sim.kernel import Simulator
from repro.units import ETH_MAX_PAYLOAD


def rt_frame(deadline_ns: int, channel: int = 1) -> EthernetFrame:
    return EthernetFrame(
        kind=FrameKind.RT_DATA,
        source="a",
        destination="b",
        payload_bytes=ETH_MAX_PAYLOAD,
        rt_header=encode_rt_header(deadline_ns, channel),
        channel_id=channel,
    )


def be_frame(payload=ETH_MAX_PAYLOAD) -> EthernetFrame:
    return EthernetFrame(
        kind=FrameKind.BEST_EFFORT,
        source="a",
        destination="b",
        payload_bytes=payload,
    )


def make_port(be_buffer=None, on_rt_complete=None):
    sim = Simulator()
    phy = PhyProfile.fast_ethernet()
    delivered = []
    link = HalfLink(sim=sim, phy=phy, name="wire", deliver=delivered.append)
    port = OutputPort(
        sim=sim,
        phy=phy,
        link=link,
        name="port",
        be_buffer_frames=be_buffer,
        on_rt_complete=on_rt_complete,
    )
    return sim, phy, port, delivered


class TestPriority:
    def test_rt_served_before_waiting_be(self):
        sim, phy, port, delivered = make_port()
        port.submit_be(be_frame())  # starts immediately (link idle)
        port.submit_be(be_frame())
        port.submit_rt(rt_frame(10**9), 10**9)
        sim.run()
        kinds = [f.kind for f in delivered]
        # first BE already started (non-preemption), then the RT frame
        # jumps the second BE frame.
        assert kinds == [
            FrameKind.BEST_EFFORT,
            FrameKind.RT_DATA,
            FrameKind.BEST_EFFORT,
        ]

    def test_edf_order_between_rt_frames(self):
        sim, phy, port, delivered = make_port()
        port.submit_be(be_frame())  # occupy the wire
        late = rt_frame(5_000_000, channel=1)
        early = rt_frame(1_000_000, channel=2)
        port.submit_rt(late, 5_000_000)
        port.submit_rt(early, 1_000_000)
        sim.run()
        rt_order = [f.channel_id for f in delivered if f.kind is FrameKind.RT_DATA]
        assert rt_order == [2, 1]

    def test_non_preemption(self):
        """An RT frame never interrupts a started BE frame."""
        sim, phy, port, delivered = make_port()
        port.submit_be(be_frame())
        sim.run(until=phy.slot_ns // 2)
        port.submit_rt(rt_frame(10**9), 10**9)
        sim.run()
        assert delivered[0].kind is FrameKind.BEST_EFFORT


class TestDeadlineAccounting:
    def test_on_rt_complete_callback(self):
        seen = []
        sim, phy, port, _ = make_port(
            on_rt_complete=lambda f, done, dl: seen.append((f.channel_id, done, dl))
        )
        port.submit_rt(rt_frame(10**9, channel=3), 10**9)
        sim.run()
        assert len(seen) == 1
        channel, done, deadline = seen[0]
        assert channel == 3
        assert done == phy.slot_ns
        assert deadline == 10**9

    def test_miss_detected_when_late(self):
        sim, phy, port, _ = make_port()
        # The allowance forgives up to one frame of blocking, so a lone
        # frame with deadline ~0 is not a miss -- but the second of two
        # such frames completes two slots in, beyond the allowance.
        port.submit_rt(rt_frame(1, channel=1), 1)
        port.submit_rt(rt_frame(1, channel=2), 1)
        sim.run()
        assert port.stats.rt_link_deadline_misses == 1

    def test_no_miss_within_allowance(self):
        sim, phy, port, _ = make_port()
        # Completion == slot_ns; deadline slightly before completion but
        # within the one-frame allowance -> not a miss.
        deadline = phy.slot_ns - 10
        port.submit_rt(rt_frame(deadline), deadline)
        sim.run()
        assert port.stats.rt_link_deadline_misses == 0

    def test_queueing_delay_stats(self):
        sim, phy, port, _ = make_port()
        port.submit_be(be_frame())
        port.submit_rt(rt_frame(10**9), 10**9)  # waits one slot
        sim.run()
        assert port.stats.rt_queueing_delay_max_ns == phy.slot_ns
        assert port.stats.rt_mean_queueing_delay_ns == phy.slot_ns


class TestBuffering:
    def test_be_buffer_drops_when_full(self):
        sim, phy, port, delivered = make_port(be_buffer=2)
        results = [port.submit_be(be_frame()) for _ in range(5)]
        # first starts transmitting immediately, two buffered, rest dropped
        assert results == [True, True, True, False, False]
        assert port.stats.be_dropped == 2
        sim.run()
        assert len(delivered) == 3

    def test_wrong_queue_usage_rejected(self):
        sim, phy, port, _ = make_port()
        with pytest.raises(SimulationError):
            port.submit_be(rt_frame(1))
        with pytest.raises(SimulationError):
            port.submit_rt(be_frame(), 1)

    def test_backlog_properties(self):
        sim, phy, port, _ = make_port()
        port.submit_be(be_frame())  # transmitting
        port.submit_be(be_frame())  # queued
        port.submit_rt(rt_frame(10**9), 10**9)  # queued
        assert port.rt_backlog == 1
        assert port.be_backlog == 1
        assert port.backlog == 2
        sim.run()
        assert port.backlog == 0

    def test_stats_counters(self):
        sim, phy, port, _ = make_port()
        port.submit_be(be_frame())
        port.submit_rt(rt_frame(10**9), 10**9)
        sim.run()
        assert port.stats.be_enqueued == 1
        assert port.stats.be_transmitted == 1
        assert port.stats.rt_enqueued == 1
        assert port.stats.rt_transmitted == 1


class TestPerFrameAllowance:
    def test_explicit_allowance_overrides_default(self):
        """A generous per-frame allowance suppresses the miss that the
        default first-hop allowance would flag (cascaded-blocking
        accounting; see DESIGN.md)."""
        sim, phy, strict_port, _ = make_port()
        strict_port.submit_rt(rt_frame(1, channel=1), 1)
        strict_port.submit_rt(rt_frame(1, channel=2), 1)
        sim.run()
        assert strict_port.stats.rt_link_deadline_misses == 1

        sim2, phy2, lenient_port, _ = make_port()
        lenient = 3 * phy2.slot_ns
        lenient_port.submit_rt(rt_frame(1, channel=1), 1, allowance_ns=lenient)
        lenient_port.submit_rt(rt_frame(1, channel=2), 1, allowance_ns=lenient)
        sim2.run()
        assert lenient_port.stats.rt_link_deadline_misses == 0

    def test_zero_allowance_is_strict(self):
        sim, phy, port, _ = make_port()
        # completes at slot_ns; deadline slot_ns - 1 with zero allowance
        deadline = phy.slot_ns - 1
        port.submit_rt(rt_frame(deadline), deadline, allowance_ns=0)
        sim.run()
        assert port.stats.rt_link_deadline_misses == 1
