"""Tests for summary statistics and report tables."""

from __future__ import annotations

import pytest

from repro.analysis.report import format_series_table, format_table
from repro.analysis.stats import mean_confidence, summarize
from repro.errors import ConfigurationError


class TestSummarize:
    def test_basic_summary(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.n == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.std == pytest.approx(1.2909944, rel=1e-6)

    def test_confidence_interval_brackets_mean(self):
        summary = summarize([10.0] * 5 + [12.0] * 5)
        assert summary.ci_low < summary.mean < summary.ci_high
        assert summary.ci_half_width > 0

    def test_single_sample_zero_width(self):
        summary = summarize([7.0])
        assert summary.mean == 7.0
        assert summary.ci_half_width == 0.0
        assert summary.std == 0.0

    def test_constant_sample_zero_width(self):
        summary = summarize([3.0, 3.0, 3.0])
        assert summary.ci_half_width == 0.0

    def test_levels(self):
        wide = summarize([1.0, 5.0, 9.0], level=0.99)
        narrow = summarize([1.0, 5.0, 9.0], level=0.90)
        assert wide.ci_half_width > narrow.ci_half_width

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])

    def test_bad_level_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([1.0], level=0.5)

    def test_mean_confidence_tuple(self):
        mean, half = mean_confidence([2.0, 4.0])
        assert mean == 3.0
        assert half > 0

    def test_mean_confidence_single_sample_zero_width(self):
        mean, half = mean_confidence([9.0])
        assert mean == 9.0
        assert half == 0.0

    def test_integer_samples_coerced_to_float(self):
        summary = summarize([1, 2, 3])
        assert summary.mean == 2.0
        assert isinstance(summary.mean, float)

    def test_numpy_array_input(self):
        import numpy as np

        summary = summarize(np.asarray([4.0, 6.0]))
        assert summary.n == 2
        assert summary.mean == 5.0

    def test_negative_samples(self):
        summary = summarize([-3.0, -1.0, 2.0])
        assert summary.minimum == -3.0
        assert summary.maximum == 2.0
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_two_identical_samples_zero_width(self):
        summary = summarize([5.0, 5.0])
        assert summary.std == 0.0
        assert summary.ci_half_width == 0.0


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["bb", 22.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "22.50" in text  # float formatting

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_empty_rows_ok(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestFormatSeriesTable:
    def test_figure_as_table(self):
        text = format_series_table(
            "requested",
            [20, 40],
            {"sdps": [20, 38], "adps": [20, 40]},
        )
        lines = text.splitlines()
        assert "requested" in lines[0]
        assert "sdps" in lines[0] and "adps" in lines[0]
        assert len(lines) == 4  # header + rule + 2 rows

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            format_series_table("x", [1, 2], {"s": [1]})
