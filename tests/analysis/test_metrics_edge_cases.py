"""Edge cases: delay percentiles/samples and trace delay extraction.

The netcalc campaign compares two independent observations of the same
run (metrics samples vs trace records), so the corners of both paths --
empty streams, single samples, mid-window teardown -- need pinning
down explicitly.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import MetricsCollector
from repro.analysis.timeline import extract_frame_delays
from repro.core.channel import ChannelSpec
from repro.core.partitioning import SymmetricDPS
from repro.errors import ConfigurationError
from repro.network.topology import build_star
from repro.protocol.ethernet import EthernetFrame, FrameKind
from repro.protocol.headers import encode_rt_header
from repro.sim.trace import TraceRecorder


def rt_frame(channel_id: int, created_at: int) -> EthernetFrame:
    return EthernetFrame(
        kind=FrameKind.RT_DATA,
        source="m",
        destination="s0",
        payload_bytes=100,
        rt_header=encode_rt_header(
            absolute_deadline=created_at + 1_000_000,
            channel_id=channel_id,
        ),
        channel_id=channel_id,
        created_at=created_at,
    )


class TestDelayPercentiles:
    def test_requires_record_delays(self):
        collector = MetricsCollector(t_latency_ns=0)
        with pytest.raises(ConfigurationError):
            collector.delay_percentiles()
        with pytest.raises(ConfigurationError):
            collector.delay_samples()

    def test_empty_stream_is_an_error(self):
        collector = MetricsCollector(t_latency_ns=0, record_delays=True)
        with pytest.raises(ConfigurationError):
            collector.delay_percentiles()
        with pytest.raises(ConfigurationError):
            collector.delay_percentiles(channel_id=5)

    def test_single_sample_pins_every_percentile(self):
        collector = MetricsCollector(t_latency_ns=0, record_delays=True)
        collector.on_delivery(rt_frame(1, created_at=0), now_ns=420)
        result = collector.delay_percentiles(channel_id=1)
        assert result == {50.0: 420.0, 95.0: 420.0, 99.0: 420.0,
                          100.0: 420.0}

    def test_all_equal_samples_are_flat(self):
        collector = MetricsCollector(t_latency_ns=0, record_delays=True)
        for seq in range(10):
            collector.on_delivery(
                rt_frame(1, created_at=seq * 1000), now_ns=seq * 1000 + 77
            )
        result = collector.delay_percentiles(channel_id=1)
        assert set(result.values()) == {77.0}

    def test_pooling_combines_channels(self):
        collector = MetricsCollector(t_latency_ns=0, record_delays=True)
        collector.on_delivery(rt_frame(1, created_at=0), now_ns=100)
        collector.on_delivery(rt_frame(2, created_at=0), now_ns=300)
        pooled = collector.delay_percentiles()
        assert pooled[100.0] == 300.0
        assert pooled[50.0] == 200.0
        assert collector.delay_samples() == [100, 300]

    def test_unknown_channel_samples_are_empty_not_an_error(self):
        collector = MetricsCollector(t_latency_ns=0, record_delays=True)
        assert collector.delay_samples(channel_id=99) == []

    def test_p100_is_exactly_the_maximum(self):
        collector = MetricsCollector(t_latency_ns=0, record_delays=True)
        # Delays past 2**53 are unrepresentable in float64; the exact
        # path must still return the maximum sample verbatim.
        huge = 2**53 + 1
        for delay in (huge, huge + 3, 7, 12345):
            collector.on_delivery(rt_frame(1, created_at=0), now_ns=delay)
        result = collector.delay_percentiles(channel_id=1)
        assert result[100.0] == huge + 3
        assert isinstance(result[100.0], int)

    def test_integral_ranks_return_exact_samples(self):
        collector = MetricsCollector(t_latency_ns=0, record_delays=True)
        for delay in (10, 20, 30, 40, 50):  # ranks land on samples at
            collector.on_delivery(rt_frame(1, created_at=0), now_ns=delay)
        result = collector.delay_percentiles(
            channel_id=1, percentiles=(0.0, 25.0, 50.0, 75.0, 100.0)
        )
        assert result == {0.0: 10, 25.0: 20, 50.0: 30, 75.0: 40,
                          100.0: 50}

    def test_interpolation_matches_the_linear_definition(self):
        collector = MetricsCollector(t_latency_ns=0, record_delays=True)
        for delay in (100, 200):
            collector.on_delivery(rt_frame(1, created_at=0), now_ns=delay)
        result = collector.delay_percentiles(
            channel_id=1, percentiles=(25.0, 95.0)
        )
        assert result[25.0] == 125.0
        assert result[95.0] == 195.0

    def test_matches_statistics_quantiles_cross_check(self):
        import random
        import statistics

        rng = random.Random(42)
        samples = [rng.randrange(1, 10**9) for _ in range(101)]
        collector = MetricsCollector(t_latency_ns=0, record_delays=True)
        for delay in samples:
            collector.on_delivery(rt_frame(1, created_at=0), now_ns=delay)
        result = collector.delay_percentiles(
            channel_id=1, percentiles=tuple(float(p) for p in range(1, 100))
        )
        # statistics.quantiles(..., method="inclusive") implements the
        # same linear definition on the n-1 denominator.
        reference = statistics.quantiles(samples, n=100, method="inclusive")
        for p, ref in zip(range(1, 100), reference):
            assert result[float(p)] == pytest.approx(ref, rel=1e-12)

    def test_percentile_out_of_range_rejected(self):
        collector = MetricsCollector(t_latency_ns=0, record_delays=True)
        collector.on_delivery(rt_frame(1, created_at=0), now_ns=5)
        with pytest.raises(ConfigurationError, match="within"):
            collector.delay_percentiles(channel_id=1, percentiles=(101.0,))
        with pytest.raises(ConfigurationError, match="within"):
            collector.delay_percentiles(channel_id=1, percentiles=(-1.0,))


class TestExtractFrameDelays:
    def make_network(self):
        net = build_star(
            ["m", "s0", "s1"],
            dps=SymmetricDPS(),
            trace_enabled=True,
            record_delays=True,
        )
        spec = ChannelSpec(period=100, capacity=2, deadline=40)
        for dest in ("s0", "s1"):
            net.establish_analytically("m", dest, spec)
        return net

    def test_matches_metrics_samples(self):
        net = self.make_network()
        net.start_all_sources(stop_after_messages=2)
        net.sim.run()
        deliveries = extract_frame_delays(net.trace)
        assert set(deliveries) == {1, 2}
        for channel_id, frames in deliveries.items():
            assert [f.delay_ns for f in frames] == (
                net.metrics.delay_samples(channel_id)
            )
            assert all(f.node in ("s0", "s1") for f in frames)
            # record order is delivery-time order
            times = [f.time_ns for f in frames]
            assert times == sorted(times)

    def test_teardown_mid_window_keeps_only_live_frames(self):
        net = self.make_network()
        net.start_all_sources()  # unbounded periodic sources
        net.run_slots(150)  # past the first period: both channels live
        before = {
            channel: len(frames)
            for channel, frames in extract_frame_delays(net.trace).items()
        }
        assert before.get(1, 0) > 0
        net.node("m").teardown_channel(1)
        net.run_slots(250)
        net.node("m").teardown_channel(2)
        net.sim.run()
        after = extract_frame_delays(net.trace)
        # channel 1 stopped contributing at teardown; channel 2 kept
        # delivering for the extra window.
        assert len(after[1]) == before[1]
        assert len(after[2]) > before[2]

    def test_malformed_and_best_effort_records_skipped(self):
        trace = TraceRecorder(enabled=True)
        trace.record(10, "node.deliver", "s0",
                     fields={"channel": 1, "delay_ns": 5})
        trace.record(11, "node.deliver", "s0",
                     fields={"channel": -1, "delay_ns": 5})  # best-effort
        trace.record(12, "node.deliver", "s0",
                     fields={"delay_ns": 5})  # no channel
        trace.record(13, "node.deliver", "s0",
                     fields={"channel": 2})  # no delay
        trace.record(14, "node.deliver", "s0")  # no fields at all
        trace.record(15, "other.category", "s0",
                     fields={"channel": 3, "delay_ns": 5})
        deliveries = extract_frame_delays(trace)
        assert set(deliveries) == {1}
        only = deliveries[1][0]
        assert (only.node, only.time_ns, only.delay_ns) == ("s0", 10, 5)

    def test_empty_trace_yields_empty_mapping(self):
        assert extract_frame_delays(TraceRecorder(enabled=True)) == {}
