"""Tests for CSV/JSON export and ASCII link timelines."""

from __future__ import annotations

import json

import pytest

from repro.analysis.export import (
    series_to_csv,
    series_to_json,
    write_csv,
    write_json,
)
from repro.analysis.timeline import (
    LinkTimeline,
    build_timelines,
    render_timeline,
)
from repro.core.channel import ChannelSpec
from repro.core.partitioning import SymmetricDPS
from repro.errors import ConfigurationError
from repro.network.topology import build_star


class TestExport:
    def test_csv_layout(self):
        text = series_to_csv("x", [1, 2], {"a": [10, 20], "b": [30, 40]})
        lines = text.strip().splitlines()
        assert lines[0] == "x,a,b"
        assert lines[1] == "1,10,30"
        assert lines[2] == "2,20,40"

    def test_json_is_self_describing(self):
        text = series_to_json(
            "requested", [20], {"sdps": [19.5]}, metadata={"seed": 7}
        )
        document = json.loads(text)
        assert document["x_label"] == "requested"
        assert document["series"]["sdps"] == [19.5]
        assert document["metadata"]["seed"] == 7

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            series_to_csv("x", [1, 2], {"a": [1]})
        with pytest.raises(ConfigurationError):
            series_to_json("x", [1], {"a": [1, 2]})

    def test_empty_label_rejected(self):
        with pytest.raises(ConfigurationError):
            series_to_csv("", [1], {"a": [1]})

    def test_write_roundtrip(self, tmp_path):
        csv_path = write_csv(tmp_path / "out.csv", "x", [1], {"a": [2]})
        assert csv_path.read_text().startswith("x,a")
        json_path = write_json(tmp_path / "out.json", "x", [1], {"a": [2]})
        assert json.loads(json_path.read_text())["x"] == [1]


class TestTimeline:
    def make_traced_network(self):
        net = build_star(
            ["m", "s0", "s1"], dps=SymmetricDPS(), trace_enabled=True
        )
        spec = ChannelSpec(period=100, capacity=3, deadline=40)
        for dest in ("s0", "s1"):
            net.establish_analytically("m", dest, spec)
        net.start_all_sources(stop_after_messages=1)
        net.sim.run()
        return net

    def test_build_timelines_from_real_run(self):
        net = self.make_traced_network()
        timelines = build_timelines(
            net.trace, slot_ns=net.phy.slot_ns, horizon_slots=40
        )
        uplink = timelines["m->switch"]
        # 2 channels x 3 frames = 6 uplink RT slots.
        assert uplink.busy_slots == 6
        assert uplink.channel_slot_count(1) == 3
        assert uplink.channel_slot_count(2) == 3
        # downlinks each carry their own channel's 3 frames
        assert timelines["switch->s0"].busy_slots == 3

    def test_render_contains_channel_glyphs(self):
        net = self.make_traced_network()
        timelines = build_timelines(
            net.trace, slot_ns=net.phy.slot_ns, horizon_slots=20
        )
        text = render_timeline(timelines["m->switch"])
        assert "m->switch" in text
        assert "1" in text and "2" in text and "." in text

    def test_glyphs(self):
        timeline = LinkTimeline(
            link="x", slots=[[], [1], [-1], [1, 2], [11], [99]]
        )
        text = render_timeline(timeline, width=10)
        assert "|.1#+b*|" in text

    def test_invalid_inputs(self):
        from repro.sim.trace import TraceRecorder

        with pytest.raises(ConfigurationError):
            build_timelines(TraceRecorder(), slot_ns=0, horizon_slots=5)
        with pytest.raises(ConfigurationError):
            build_timelines(TraceRecorder(), slot_ns=1, horizon_slots=0)
        with pytest.raises(ConfigurationError):
            render_timeline(LinkTimeline(link="x", slots=[]), width=0)

    def test_records_beyond_horizon_ignored(self):
        net = self.make_traced_network()
        timelines = build_timelines(
            net.trace, slot_ns=net.phy.slot_ns, horizon_slots=2
        )
        for timeline in timelines.values():
            assert len(timeline.slots) == 2
