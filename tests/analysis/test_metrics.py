"""Tests for the metrics collector and channel statistics."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import MetricsCollector
from repro.errors import ConfigurationError
from repro.protocol.ethernet import EthernetFrame, FrameKind
from repro.protocol.headers import encode_rt_header
from repro.units import ETH_MAX_PAYLOAD


def rt_frame(deadline, channel=1, seq=0, fragment=0, created=0):
    return EthernetFrame(
        kind=FrameKind.RT_DATA,
        source="a",
        destination="b",
        payload_bytes=ETH_MAX_PAYLOAD,
        rt_header=encode_rt_header(deadline, channel),
        channel_id=channel,
        message_seq=seq,
        fragment_index=fragment,
        created_at=created,
    )


def be_frame(payload=100, created=0):
    return EthernetFrame(
        kind=FrameKind.BEST_EFFORT,
        source="a",
        destination="b",
        payload_bytes=payload,
        created_at=created,
    )


class TestRTDelivery:
    def test_on_time_delivery_not_a_miss(self):
        metrics = MetricsCollector(t_latency_ns=1000)
        metrics.register_channel(1, capacity=1)
        metrics.on_delivery(rt_frame(deadline=5000), now_ns=4000)
        stats = metrics.channels[1]
        assert stats.frames_delivered == 1
        assert stats.deadline_misses == 0
        assert metrics.total_deadline_misses == 0

    def test_latency_grace_applied(self):
        metrics = MetricsCollector(t_latency_ns=1000)
        metrics.register_channel(1, capacity=1)
        metrics.on_delivery(rt_frame(deadline=5000), now_ns=6000)  # = bound
        assert metrics.total_deadline_misses == 0
        metrics.on_delivery(rt_frame(deadline=5000, seq=1), now_ns=6001)
        assert metrics.total_deadline_misses == 1

    def test_delay_statistics(self):
        metrics = MetricsCollector(t_latency_ns=0)
        metrics.register_channel(1, capacity=1)
        metrics.on_delivery(rt_frame(deadline=10**9, created=100), now_ns=400)
        metrics.on_delivery(
            rt_frame(deadline=10**9, created=100, seq=1), now_ns=900
        )
        stats = metrics.channels[1]
        assert stats.worst_delay_ns == 800
        assert stats.mean_delay_ns == pytest.approx((300 + 800) / 2)
        assert metrics.worst_rt_delay_ns == 800

    def test_message_completion_needs_all_fragments(self):
        metrics = MetricsCollector(t_latency_ns=0)
        metrics.register_channel(1, capacity=3)
        for fragment in range(2):
            metrics.on_delivery(
                rt_frame(deadline=10**9, fragment=fragment), now_ns=10
            )
        assert metrics.channels[1].messages_completed == 0
        metrics.on_delivery(rt_frame(deadline=10**9, fragment=2), now_ns=10)
        assert metrics.channels[1].messages_completed == 1
        assert metrics.total_rt_messages == 1

    def test_interleaved_messages_tracked_separately(self):
        metrics = MetricsCollector(t_latency_ns=0)
        metrics.register_channel(1, capacity=2)
        metrics.on_delivery(rt_frame(10**9, seq=0, fragment=0), 1)
        metrics.on_delivery(rt_frame(10**9, seq=1, fragment=0), 2)
        metrics.on_delivery(rt_frame(10**9, seq=1, fragment=1), 3)
        metrics.on_delivery(rt_frame(10**9, seq=0, fragment=1), 4)
        assert metrics.channels[1].messages_completed == 2

    def test_unregistered_channel_still_counted(self):
        metrics = MetricsCollector(t_latency_ns=0)
        metrics.on_delivery(rt_frame(10**9, channel=9), 5)
        assert metrics.channels[9].frames_delivered == 1

    def test_miss_ratio(self):
        metrics = MetricsCollector(t_latency_ns=0)
        metrics.register_channel(1, capacity=1)
        metrics.on_delivery(rt_frame(deadline=100), now_ns=50)
        metrics.on_delivery(rt_frame(deadline=100, seq=1), now_ns=500)
        assert metrics.channels[1].miss_ratio == 0.5


class TestBestEffortAndSignaling:
    def test_be_accounting(self):
        metrics = MetricsCollector(t_latency_ns=0)
        metrics.on_delivery(be_frame(payload=200, created=0), now_ns=1000)
        metrics.on_delivery(be_frame(payload=300, created=500), now_ns=1000)
        assert metrics.be_frames_delivered == 2
        assert metrics.be_bytes_delivered == 500
        assert metrics.be_mean_delay_ns == pytest.approx(750)

    def test_goodput(self):
        metrics = MetricsCollector(t_latency_ns=0)
        metrics.on_delivery(be_frame(payload=1250), now_ns=1)
        # 1250 bytes = 10000 bits over 1 us = 10 Gbps
        assert metrics.be_goodput_bps(1000) == pytest.approx(1e10)
        assert metrics.be_goodput_bps(0) == 0.0

    def test_signaling_counted_separately(self):
        metrics = MetricsCollector(t_latency_ns=0)
        frame = EthernetFrame(
            kind=FrameKind.SIGNALING,
            source="a",
            destination="switch",
            payload_bytes=36,
        )
        metrics.on_delivery(frame, 10)
        assert metrics.signaling_frames_delivered == 1
        assert metrics.be_frames_delivered == 0


class TestValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsCollector(t_latency_ns=-1)

    def test_bad_capacity_rejected(self):
        metrics = MetricsCollector(t_latency_ns=0)
        with pytest.raises(ConfigurationError):
            metrics.register_channel(1, capacity=0)

    def test_summary_text(self):
        metrics = MetricsCollector(t_latency_ns=0)
        metrics.register_channel(1, capacity=1)
        metrics.on_delivery(rt_frame(10**9), 5)
        text = metrics.summary()
        assert "RT frames delivered : 1" in text
