"""Tests for the operational audit reports."""

from __future__ import annotations

import pytest

from repro.analysis.audit import admission_report, link_report, system_summary
from repro.core.admission import AdmissionController, SystemState
from repro.core.channel import ChannelSpec
from repro.core.partitioning import SymmetricDPS

SPEC = ChannelSpec(period=100, capacity=3, deadline=40)


@pytest.fixture
def controller():
    ctrl = AdmissionController(
        SystemState(["m", "s0", "s1"]), SymmetricDPS()
    )
    for dest in ("s0", "s1") * 4:  # 6 accepted, 2 rejected
        ctrl.request("m", dest, SPEC)
    ctrl.request("m", "ghost", SPEC)  # unknown node
    return ctrl


class TestLinkReport:
    def test_rows_for_occupied_links_only(self, controller):
        text = link_report(controller.state)
        assert "m->sw" in text
        assert "sw->s0" in text
        assert "sw->s1" in text
        # header present
        assert "reserved U" in text

    def test_headroom_column_with_reference(self, controller):
        text = link_report(controller.state, reference=SPEC)
        assert "headroom" in text
        lines = [l for l in text.splitlines() if "m->sw" in l]
        # uplink is saturated at 6 channels: headroom must be 0
        assert lines[0].strip().endswith("0")

    def test_empty_state(self):
        text = link_report(SystemState(["a"]))
        assert "link occupancy" in text


class TestAdmissionReport:
    def test_totals_and_reasons(self, controller):
        text = admission_report(controller)
        assert "accepted" in text and "6" in text
        assert "rejected" in text
        assert "uplink-infeasible" in text
        assert "unknown-node" in text
        assert "sdps" in text

    def test_system_summary_combines(self, controller):
        text = system_summary(controller, reference=SPEC)
        assert "admission history" in text
        assert "link occupancy" in text
