"""Tests for the coordination-class fault plan and its checkpoint path."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    COORDINATION_CLASSES,
    SIGNALLING_CLASSES,
    FaultPlan,
)
from repro.protocol.ethernet import EthernetFrame, FrameKind
from repro.protocol.frames import GossipFrame, IntentFrame, IntentKind


def intent_frame() -> EthernetFrame:
    payload = IntentFrame(
        kind=IntentKind.ANNOUNCE,
        intent_seq=1,
        switch_mac=0x0200_0000_0000,
        ack_mac=0,
        link_id=0,
        channel_id=7,
        priority=6,
        period=100,
        capacity=3,
        deadline=40,
    )
    return EthernetFrame(
        kind=FrameKind.SIGNALING,
        source="sw0",
        destination="sw1",
        payload_bytes=len(payload.encode()),
        payload_object=payload,
    )


def gossip_frame() -> EthernetFrame:
    payload = GossipFrame(
        switch_mac=0x0200_0000_0000,
        link_id=0,
        version=3,
        load=2,
        util_num=1,
        util_den=10,
    )
    return EthernetFrame(
        kind=FrameKind.SIGNALING,
        source="sw0",
        destination="sw1",
        payload_bytes=len(payload.encode()),
        payload_object=payload,
    )


class TestClassification:
    def test_intent_and_gossip_are_coordination_classes(self):
        assert COORDINATION_CLASSES == ("intent", "gossip")
        assert FaultPlan.classify(intent_frame()) == "intent"
        assert FaultPlan.classify(gossip_frame()) == "gossip"

    def test_wire_encoded_payloads_classify_too(self):
        # the fabric transmits raw wire bytes, not structured objects
        frame = intent_frame()
        wire = EthernetFrame(
            kind=FrameKind.SIGNALING,
            source="sw0",
            destination="sw1",
            payload_bytes=frame.payload_bytes,
            payload_object=frame.payload_object.encode(),
        )
        assert FaultPlan.classify(wire) == "intent"


class TestControlLoss:
    def test_covers_signalling_and_coordination(self):
        plan = FaultPlan.control_loss(0.5, seed=1)
        for name in SIGNALLING_CLASSES + COORDINATION_CLASSES:
            assert name in plan._bernoulli
            assert plan._bernoulli[name] == 0.5

    def test_zero_rate_drops_nothing(self):
        plan = FaultPlan.control_loss(0.0, seed=1)
        for _ in range(50):
            assert plan.should_drop("l", intent_frame(), 0) is False
        assert plan.total_drops == 0

    def test_drops_are_deterministic_in_seed(self):
        draws = []
        for _ in range(2):
            plan = FaultPlan.control_loss(0.3, seed=9)
            draws.append(
                [plan.should_drop("l", intent_frame(), t) for t in range(200)]
            )
        assert draws[0] == draws[1]
        assert any(draws[0])  # 30% over 200 frames drops something

    def test_rt_data_is_never_dropped(self):
        plan = FaultPlan.control_loss(0.99, seed=0)
        from repro.protocol.headers import RTHeader

        frame = EthernetFrame(
            kind=FrameKind.RT_DATA,
            source="a",
            destination="b",
            payload_bytes=100,
            rt_header=RTHeader(ip_source=0, ip_destination=1),
            channel_id=1,
        )
        assert plan.should_drop("l", frame, 0) is False


class TestStateRoundTrip:
    def test_resumed_plan_continues_the_drop_sequence(self):
        reference = FaultPlan.control_loss(0.3, seed=5)
        full = [
            reference.should_drop("l", intent_frame(), t) for t in range(120)
        ]

        victim = FaultPlan.control_loss(0.3, seed=5)
        head = [
            victim.should_drop("l", intent_frame(), t) for t in range(60)
        ]
        state = json.loads(json.dumps(victim.export_state()))
        resumed = FaultPlan.control_loss(0.3, seed=5)
        resumed.import_state(state)
        tail = [
            resumed.should_drop("l", intent_frame(), t)
            for t in range(60, 120)
        ]
        assert head + tail == full
        assert resumed.total_drops == reference.total_drops

    def test_counters_survive_the_round_trip(self):
        plan = FaultPlan.control_loss(0.5, seed=2)
        for t in range(40):
            plan.should_drop("l", gossip_frame(), t)
        state = plan.export_state()
        clone = FaultPlan.control_loss(0.5, seed=2)
        clone.import_state(state)
        assert clone.seen == plan.seen
        assert clone.drops_by_class == plan.drops_by_class

    def test_import_rejects_unknown_class(self):
        plan = FaultPlan.control_loss(0.5, seed=2)
        with pytest.raises(ConfigurationError):
            plan.import_state({"seen": {"no-such-class": 3}})

    def test_import_rejects_unconfigured_rng_stream(self):
        # a signalling-only plan cannot adopt a control-loss snapshot
        source = FaultPlan.control_loss(0.5, seed=2)
        source.should_drop("l", intent_frame(), 0)
        narrow = FaultPlan.signalling_loss(0.5, seed=2)
        with pytest.raises(ConfigurationError):
            narrow.import_state(source.export_state())
