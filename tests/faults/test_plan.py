"""Tests for the deterministic fault plan (frame classification + drops)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FRAME_CLASSES,
    SIGNALLING_CLASSES,
    FaultPlan,
    LinkDownWindow,
)
from repro.protocol.ethernet import EthernetFrame, FrameKind
from repro.protocol.frames import RequestFrame, ResponseFrame, TeardownFrame
from repro.protocol.headers import RTHeader

SWITCH_MAC = 0x02_FF_FF_FF_FF_FF


def rt_frame() -> EthernetFrame:
    return EthernetFrame(
        kind=FrameKind.RT_DATA,
        source="a",
        destination="b",
        payload_bytes=100,
        rt_header=RTHeader(ip_source=0, ip_destination=1),
        channel_id=1,
    )


def request_frame(channel_id: int = 0) -> RequestFrame:
    return RequestFrame(
        connect_request_id=1,
        rt_channel_id=channel_id,
        source_mac=0x02_00_00_00_00_01,
        destination_mac=0x02_00_00_00_00_02,
        source_ip=0x0A00_0001,
        destination_ip=0x0A00_0002,
        period=100,
        capacity=3,
        deadline=40,
    )


def signaling(source: str, payload: object) -> EthernetFrame:
    return EthernetFrame(
        kind=FrameKind.SIGNALING,
        source=source,
        destination="switch" if source != "switch" else "a",
        payload_bytes=36,
        payload_object=payload,
    )


class TestClassify:
    def test_request_vs_offer_by_direction(self):
        # the same CONNECT wire format is a request uphill, an offer
        # downhill -- direction disambiguates
        wire = request_frame().encode()
        assert FaultPlan.classify(signaling("a", wire)) == "request"
        assert FaultPlan.classify(signaling("switch", wire)) == "offer"

    def test_response_directions(self):
        wire = ResponseFrame(
            connect_request_id=1, rt_channel_id=5, switch_mac=SWITCH_MAC,
            ok=True,
        ).encode()
        assert FaultPlan.classify(signaling("b", wire)) == "dest-response"
        assert FaultPlan.classify(signaling("switch", wire)) == "final-response"

    def test_grant_tuple_is_final_response(self):
        response = ResponseFrame(
            connect_request_id=1, rt_channel_id=5, switch_mac=SWITCH_MAC,
            ok=True,
        )
        frame = signaling("switch", (response, object()))
        assert FaultPlan.classify(frame) == "final-response"

    def test_teardown(self):
        wire = TeardownFrame(connect_request_id=0, rt_channel_id=5).encode()
        assert FaultPlan.classify(signaling("a", wire)) == "teardown"

    def test_typed_payloads_accepted(self):
        # the switch decodes to typed frames before re-emitting; classify
        # must handle both representations
        assert FaultPlan.classify(signaling("a", request_frame())) == "request"
        assert (
            FaultPlan.classify(
                signaling("a", TeardownFrame(connect_request_id=0,
                                             rt_channel_id=1))
            )
            == "teardown"
        )

    def test_data_plane_classes(self):
        rt = rt_frame()
        be = EthernetFrame(
            kind=FrameKind.BEST_EFFORT, source="a", destination="b",
            payload_bytes=100,
        )
        assert FaultPlan.classify(rt) == "rt-data"
        assert FaultPlan.classify(be) == "best-effort"

    def test_unclassifiable_payload_rejected(self):
        with pytest.raises(ConfigurationError, match="classify"):
            FaultPlan.classify(signaling("a", 3.14))


class TestValidation:
    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError, match="frame class"):
            FaultPlan(bernoulli={"reqest": 0.1})
        with pytest.raises(ConfigurationError, match="frame class"):
            FaultPlan(drop_occurrences={"nope": [0]})

    def test_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(bernoulli={"request": 1.0})
        with pytest.raises(ConfigurationError):
            FaultPlan(bernoulli={"request": -0.1})

    def test_negative_occurrence_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(drop_occurrences={"request": [-1]})

    def test_down_window_ordering(self):
        with pytest.raises(ConfigurationError):
            LinkDownWindow("*", 100, 100)
        with pytest.raises(ConfigurationError):
            LinkDownWindow("*", -1, 100)


class TestDropDecisions:
    def test_occurrence_drop_is_exact(self):
        plan = FaultPlan(drop_occurrences={"request": [1]})
        wire = request_frame().encode()
        fates = [
            plan.should_drop("a->switch", signaling("a", wire), now=0)
            for _ in range(4)
        ]
        assert fates == [False, True, False, False]
        assert plan.drops_by_class["request"] == 1
        assert plan.seen["request"] == 4

    def test_occurrences_counted_per_class(self):
        # dropping request #0 must not consume teardown occurrences
        plan = FaultPlan(drop_occurrences={"teardown": [0]})
        req = signaling("a", request_frame().encode())
        tdn = signaling(
            "a", TeardownFrame(connect_request_id=0, rt_channel_id=1).encode()
        )
        assert not plan.should_drop("a->switch", req, now=0)
        assert plan.should_drop("a->switch", tdn, now=0)

    def test_bernoulli_deterministic_per_seed(self):
        def fates(seed):
            plan = FaultPlan(seed=seed, bernoulli={"request": 0.5})
            wire = request_frame().encode()
            return [
                plan.should_drop("a->switch", signaling("a", wire), now=0)
                for _ in range(50)
            ]

        assert fates(3) == fates(3)
        assert fates(3) != fates(4)  # astronomically unlikely to collide
        assert any(fates(3)) and not all(fates(3))

    def test_bernoulli_streams_independent_across_classes(self):
        # draws for one class must not shift when another class also
        # sees traffic (independent named streams)
        wire = request_frame().encode()
        tdn = TeardownFrame(connect_request_id=0, rt_channel_id=1).encode()

        alone = FaultPlan(seed=5, bernoulli={"request": 0.5,
                                             "teardown": 0.5})
        fates_alone = [
            alone.should_drop("a->switch", signaling("a", wire), now=0)
            for _ in range(30)
        ]
        mixed = FaultPlan(seed=5, bernoulli={"request": 0.5,
                                             "teardown": 0.5})
        fates_mixed = []
        for _ in range(30):
            fates_mixed.append(
                mixed.should_drop("a->switch", signaling("a", wire), now=0)
            )
            mixed.should_drop("a->switch", signaling("a", tdn), now=0)
        assert fates_alone == fates_mixed

    def test_down_window_half_open_and_pattern(self):
        plan = FaultPlan(
            down_windows=[LinkDownWindow("m0->switch", 100, 200)]
        )
        frame = signaling("m0", request_frame().encode())
        assert not plan.should_drop("m0->switch", frame, now=99)
        assert plan.should_drop("m0->switch", frame, now=100)
        assert plan.should_drop("m0->switch", frame, now=199)
        assert not plan.should_drop("m0->switch", frame, now=200)
        # other links unaffected
        assert not plan.should_drop("m1->switch", frame, now=150)
        assert plan.window_drops == 2

    def test_down_window_glob(self):
        plan = FaultPlan(down_windows=[LinkDownWindow("switch->*", 0, 10)])
        offer = signaling("switch", request_frame(channel_id=3).encode())
        assert plan.should_drop("switch->m0", offer, now=5)
        assert not plan.should_drop("m0->switch", offer, now=5)

    def test_signalling_loss_covers_only_control_plane(self):
        plan = FaultPlan.signalling_loss(0.9, seed=1)
        rt = rt_frame()
        assert not any(
            plan.should_drop("a->switch", rt, now=0) for _ in range(100)
        )
        assert set(SIGNALLING_CLASSES) < set(FRAME_CLASSES)

    def test_stats_accumulate(self):
        plan = FaultPlan.signalling_loss(0.5, seed=9)
        wire = request_frame().encode()
        for _ in range(40):
            plan.should_drop("a->switch", signaling("a", wire), now=0)
        assert plan.total_drops == plan.drops_by_class["request"]
        assert plan.signalling_drops() == plan.total_drops
        assert 0 < plan.total_drops < 40
