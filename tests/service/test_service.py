"""Tests for the resident admission service (churn + checkpoint/resume)."""

from __future__ import annotations

import json

import pytest

from repro.core.admission import AdmissionController, SystemState
from repro.core.partitioning import SymmetricDPS
from repro.errors import ConfigurationError
from repro.service import (
    AdmissionService,
    ChurnConfig,
    ChurnProcess,
    resume,
)
from repro.service.service import SERVICE_CHECKPOINT_VERSION
from repro.sim.rng import RngRegistry

NODES = tuple(f"m{i}" for i in range(6))


def build_service(
    seed: int = 42, checkpoint_every_ns: int | None = 5_000_000
) -> AdmissionService:
    controller = AdmissionController(SystemState(NODES), SymmetricDPS())
    churn = ChurnProcess(RngRegistry(seed), ChurnConfig(nodes=NODES))
    return AdmissionService(
        controller, churn, checkpoint_every_ns=checkpoint_every_ns
    )


class TestServiceRun:
    def test_churn_drives_decisions(self):
        service = build_service()
        service.start()
        service.run_until(30_000_000)
        counters = service.counters
        assert counters["arrivals"] > 10
        assert counters["arrivals"] == (
            counters["accepts"] + counters["rejects"]
        )
        assert counters["departures"] <= counters["accepts"]
        # live channels = accepts - departures, mirrored by the state.
        assert service.active_channels == (
            counters["accepts"] - counters["departures"]
        )
        assert counters["checkpoints"] == 6  # every 5 ms over 30 ms

    def test_ledger_is_json_serializable(self):
        service = build_service()
        service.start()
        service.run_until(10_000_000)
        json.dumps(service.ledger)  # must not raise

    def test_departures_release_capacity(self):
        service = build_service()
        service.start()
        service.run_until(60_000_000)
        assert service.counters["departures"] > 0
        # every departed channel is gone from the admission state
        live = set(service.controller.state.channels)
        departed = {
            entry[2] for entry in service.ledger if entry[0] == "depart"
        }
        assert live.isdisjoint(departed - live)

    def test_start_twice_raises(self):
        service = build_service()
        service.start()
        with pytest.raises(ConfigurationError):
            service.start()

    def test_run_before_start_raises(self):
        with pytest.raises(ConfigurationError):
            build_service().run_until(1_000_000)

    def test_bad_checkpoint_period_raises(self):
        with pytest.raises(ConfigurationError):
            build_service(checkpoint_every_ns=0)


class TestCheckpointResume:
    @pytest.mark.parametrize("kill_at", [7_000_000, 23_000_000, 41_500_000])
    def test_kill_and_resume_is_byte_identical(self, kill_at):
        horizon = 60_000_000
        reference = build_service()
        reference.start()
        reference.run_until(horizon)

        victim = build_service()
        victim.start()
        victim.run_until(kill_at)
        checkpoint = victim.last_checkpoint
        assert checkpoint is not None
        # simulate a process boundary: the payload crosses as JSON
        data = json.loads(json.dumps(checkpoint.data))
        resumed = resume(
            data, SymmetricDPS(), RngRegistry(42), ChurnConfig(nodes=NODES)
        )
        resumed.run_until(horizon)

        # prefix up to (and including) the checkpoint's own ledger
        # entry, then the resumed run's suffix, must equal the
        # uninterrupted stream byte for byte.
        prefix = victim.ledger[: checkpoint.data["ledger_len"] + 1]
        assert list(reference.ledger) == list(prefix) + list(resumed.ledger)
        assert reference.final_state_json() == resumed.final_state_json()
        assert reference.counters == resumed.counters

    def test_checkpoint_survives_later_mutation(self):
        # Regression: the checkpoint payload must be deep-frozen -- a
        # snapshot sharing nested lists with live state rots as soon as
        # the service keeps running past it.
        service = build_service()
        service.start()
        service.run_until(6_000_000)
        checkpoint = service.last_checkpoint
        assert checkpoint is not None
        frozen = json.dumps(checkpoint.data, sort_keys=True)
        service.run_until(30_000_000)
        assert json.dumps(checkpoint.data, sort_keys=True) == frozen

    def test_resume_rejects_unknown_version(self):
        service = build_service()
        service.start()
        service.run_until(6_000_000)
        data = json.loads(json.dumps(service.last_checkpoint.data))
        data["version"] = SERVICE_CHECKPOINT_VERSION + 1
        with pytest.raises(ConfigurationError):
            resume(
                data,
                SymmetricDPS(),
                RngRegistry(42),
                ChurnConfig(nodes=NODES),
            )

    def test_digest_tracks_admission_state(self):
        service = build_service()
        service.start()
        service.run_until(30_000_000)
        digests = [c.digest for c in service.checkpoints]
        assert len(digests) == 6
        # churn keeps admitting/releasing, so states (and digests) move
        assert len(set(digests)) > 1
