"""Soak-level tests for the shared-link fabric and its intent lock."""

from __future__ import annotations

import json

import pytest

from repro.faults.plan import FaultPlan
from repro.obs.monitor import InvariantMonitor
from repro.service.intent import SharedLinkFabric

HORIZON = 60_000_000
CHECKPOINT_NS = 10_000_000


def build_fabric(
    seed: int = 7, loss: float = 0.0, checkpoint_every_ns: int | None = None
) -> SharedLinkFabric:
    plan = FaultPlan.control_loss(loss, seed=seed) if loss else None
    return SharedLinkFabric(
        n_switches=2,
        nodes_per_switch=4,
        seed=seed,
        fault_plan=plan,
        checkpoint_every_ns=checkpoint_every_ns,
    )


def assert_clean(fabric: SharedLinkFabric) -> None:
    """No double-bookings, converged views, no leaked reservations."""
    monitor = InvariantMonitor()
    anomalies = monitor.check_shared_links(
        fabric, fabric.now, require_converged=True
    )
    assert anomalies == 0, monitor.anomalies
    assert fabric.leaked_reservations() == []


class TestLosslessFabric:
    def test_soak_commits_and_converges(self):
        fabric = build_fabric()
        fabric.start()
        fabric.run_until(HORIZON)
        assert fabric.counters["arrivals"] > 20
        assert fabric.counters["commits"] > 0
        assert fabric.counters["departures"] > 0
        fabric.quiesce()
        assert_clean(fabric)

    def test_contending_switches_never_double_book(self):
        # both switches race intents onto the single trunk the whole
        # run; the union of their committed views must stay feasible
        # at every checkpoint-like instant, not just at the end
        fabric = build_fabric(seed=3)
        fabric.start()
        monitor = InvariantMonitor()
        for step in range(1, 13):
            fabric.run_until(step * 5_000_000)
            assert (
                monitor.check_shared_links(fabric, fabric.now) == 0
            ), monitor.anomalies

    def test_departures_free_the_trunk(self):
        fabric = build_fabric()
        fabric.start()
        fabric.run_until(HORIZON)
        fabric.quiesce()
        # after quiescence (no new arrivals, all holds drained) every
        # remaining committed entry belongs to a still-active channel
        for link_id in range(fabric.n_switches - 1):
            for view in fabric.trunk_views(link_id):
                for channel_id in view:
                    assert channel_id in fabric._active


class TestLossyFabric:
    def test_soak_at_twenty_percent_loss(self):
        fabric = build_fabric(loss=0.2)
        fabric.start()
        fabric.run_until(HORIZON)
        assert fabric.counters["retransmissions"] > 0
        assert fabric.plan is not None and fabric.plan.total_drops > 0
        fabric.quiesce()
        assert_clean(fabric)

    def test_loss_changes_timing_but_not_safety(self):
        for seed in (1, 2, 3):
            fabric = build_fabric(seed=seed, loss=0.3)
            fabric.start()
            fabric.run_until(30_000_000)
            fabric.quiesce()
            assert_clean(fabric)


class TestFabricCheckpointResume:
    @pytest.mark.parametrize("kill_at", [15_000_000, 35_000_000])
    def test_kill_and_resume_is_byte_identical(self, kill_at):
        loss = 0.2
        reference = build_fabric(
            loss=loss, checkpoint_every_ns=CHECKPOINT_NS
        )
        reference.start()
        reference.run_until(HORIZON)

        victim = build_fabric(loss=loss, checkpoint_every_ns=CHECKPOINT_NS)
        victim.start()
        victim.run_until(kill_at)
        checkpoint = json.loads(json.dumps(victim.checkpoints[-1]))
        resumed = SharedLinkFabric.resume(
            checkpoint,
            fault_plan=FaultPlan.control_loss(loss, seed=7),
            checkpoint_every_ns=CHECKPOINT_NS,
        )
        resumed.run_until(HORIZON)

        prefix = [list(e) for e in victim.ledger[: checkpoint["ledger_len"]]]
        suffix = [list(e) for e in resumed.ledger]
        assert [list(e) for e in reference.ledger] == prefix + suffix
        ref_states = [c.export_state() for c in reference.coordinators]
        res_states = [c.export_state() for c in resumed.coordinators]
        assert json.loads(json.dumps(ref_states)) == json.loads(
            json.dumps(res_states)
        )
        assert reference.counters == resumed.counters

    def test_resumed_fabric_still_satisfies_invariants(self):
        victim = build_fabric(loss=0.2, checkpoint_every_ns=CHECKPOINT_NS)
        victim.start()
        victim.run_until(25_000_000)
        checkpoint = json.loads(json.dumps(victim.checkpoints[-1]))
        resumed = SharedLinkFabric.resume(
            checkpoint,
            fault_plan=FaultPlan.control_loss(0.2, seed=7),
            checkpoint_every_ns=CHECKPOINT_NS,
        )
        resumed.run_until(HORIZON)
        resumed.quiesce()
        assert_clean(resumed)

    def test_checkpoint_survives_later_mutation(self):
        # Regression: a checkpoint whose nested lists stay shared with
        # live state (pending acks, outstanding retransmit sets) rots
        # when the fabric runs past it -- the resume then diverges.
        fabric = build_fabric(loss=0.2, checkpoint_every_ns=CHECKPOINT_NS)
        fabric.start()
        fabric.run_until(12_000_000)
        checkpoint = fabric.checkpoints[-1]
        frozen = json.dumps(checkpoint, sort_keys=True)
        fabric.run_until(HORIZON)
        assert json.dumps(checkpoint, sort_keys=True) == frozen


class TestMonitorDetection:
    def test_conflicting_records_are_reported(self):
        fabric = build_fabric()
        fabric.start()
        fabric.run_until(20_000_000)
        # forge a conflict: switch 1 believes channel 9999 has a
        # different owner/spec than switch 0 does
        fabric.coordinators[0].committed[0][9999] = [1, 100, 3, 40, 77]
        fabric.coordinators[1].committed[0][9999] = [2, 100, 4, 40, 78]
        monitor = InvariantMonitor()
        assert monitor.check_shared_links(fabric, fabric.now) >= 1
        kinds = {a["invariant"] for a in monitor.anomalies}
        assert kinds == {"shared-link-double-book"}

    def test_divergence_only_flagged_when_required(self):
        fabric = build_fabric()
        fabric.start()
        fabric.run_until(20_000_000)
        fabric.coordinators[0].committed[0][9999] = [1, 100, 3, 40, 77]
        relaxed = InvariantMonitor()
        assert relaxed.check_shared_links(fabric, fabric.now) == 0
        strict = InvariantMonitor()
        assert strict.check_shared_links(
            fabric, fabric.now, require_converged=True
        ) == 1
        assert strict.anomalies[0]["invariant"] == "shared-link-divergence"
        assert strict.anomalies[0]["severity"] == "warning"
