"""Unit tests for the intent-lock state machine (one switch's view)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.protocol.frames import IntentFrame, IntentKind
from repro.service.intent import IntentCoordinator

MAC_A = 0x0200_0000_0000
MAC_B = 0x0200_0000_0001

SPEC = (100, 3, 40)  # (period, capacity, deadline) on the trunk


def pair() -> tuple[IntentCoordinator, IntentCoordinator]:
    return (
        IntentCoordinator(MAC_A, (0,)),
        IntentCoordinator(MAC_B, (0,)),
    )


class TestHandshake:
    def test_announce_ack_opens_hold(self):
        a, b = pair()
        announce = a.begin_intent(1, 0, 7, 6, SPEC, peers=(MAC_B,))
        assert announce.kind is IntentKind.ANNOUNCE
        assert announce.channel_id == 7
        ack = b.record_announce(announce, now_ns=0)
        assert ack.kind is IntentKind.ACK
        assert ack.switch_mac == MAC_A  # echoes the intent's origin
        assert ack.ack_mac == MAC_B
        assert (MAC_A, 1) in b.foreign
        assert a.record_ack(ack) is True  # single peer -> hold opens

    def test_duplicate_ack_is_idempotent(self):
        a, b = pair()
        announce = a.begin_intent(1, 0, 7, 6, SPEC, peers=(MAC_B,))
        ack = b.record_announce(announce, now_ns=0)
        assert a.record_ack(ack) is True
        a.pending[1]["state"] = "hold"
        # a retransmitted ACK after the hold opened changes nothing
        assert a.record_ack(ack) is False
        assert a.pending[1]["acked"] == [MAC_B]

    def test_commit_applies_once(self):
        a, b = pair()
        a.begin_intent(1, 0, 7, 6, SPEC, peers=(MAC_B,))
        commit = a.resolution_frame(1, IntentKind.COMMIT)
        assert a.pending[1]["state"] == "committed"
        assert b.apply_commit(commit) is True
        assert b.apply_commit(commit) is False  # idempotent
        assert b.committed[0][7] == [MAC_A, 100, 3, 40, 1]
        assert b.version[0] == 1

    def test_abort_clears_foreign(self):
        a, b = pair()
        announce = a.begin_intent(1, 0, 7, 6, SPEC, peers=(MAC_B,))
        b.record_announce(announce, now_ns=0)
        abort = a.resolution_frame(1, IntentKind.ABORT)
        b.apply_abort(abort)
        assert (MAC_A, 1) not in b.foreign
        assert 7 not in b.committed[0]

    def test_release_is_idempotent_and_logged(self):
        a, b = pair()
        a.begin_intent(1, 0, 7, 6, SPEC, peers=(MAC_B,))
        b.apply_commit(a.resolution_frame(1, IntentKind.COMMIT))
        a.apply_commit(
            IntentFrame(
                kind=IntentKind.COMMIT,
                intent_seq=1,
                switch_mac=MAC_A,
                ack_mac=0,
                link_id=0,
                channel_id=7,
                priority=6,
                period=100,
                capacity=3,
                deadline=40,
            )
        )
        release = a.release_frame(2, 0, 7)
        assert b.apply_release(release) is True
        assert b.apply_release(release) is False
        assert 7 not in b.committed[0]
        assert b.release_log[0] == [[7, 2]]


class TestArbitration:
    def test_lower_priority_tuple_wins(self):
        a, b = pair()
        a.begin_intent(1, 0, 7, priority=3, spec_on_link=SPEC, peers=(MAC_B,))
        b.begin_intent(1, 0, 8, priority=5, spec_on_link=SPEC, peers=(MAC_A,))
        # each hears the other's announce
        b.record_announce(_announce(a, 1), now_ns=0)
        a.record_announce(_announce(b, 1), now_ns=0)
        # a (priority 3) precedes b (priority 5): b is blocked, a is not
        assert a.blockers(1, now_ns=0, ttl_ns=10**9) == 0
        assert b.blockers(1, now_ns=0, ttl_ns=10**9) == 1

    def test_mac_breaks_priority_ties(self):
        a, b = pair()
        a.begin_intent(1, 0, 7, priority=4, spec_on_link=SPEC, peers=(MAC_B,))
        b.begin_intent(1, 0, 8, priority=4, spec_on_link=SPEC, peers=(MAC_A,))
        b.record_announce(_announce(a, 1), now_ns=0)
        a.record_announce(_announce(b, 1), now_ns=0)
        # equal priority, equal seq: the lower MAC (switch a) wins
        assert a.blockers(1, now_ns=0, ttl_ns=10**9) == 0
        assert b.blockers(1, now_ns=0, ttl_ns=10**9) == 1

    def test_stale_foreign_intent_expires(self):
        a, b = pair()
        b.begin_intent(1, 0, 8, priority=5, spec_on_link=SPEC, peers=(MAC_A,))
        b.record_announce(_announce_raw(MAC_A, 1, 0, 7, 3), now_ns=0)
        assert b.blockers(1, now_ns=100, ttl_ns=10_000) == 1
        # past the TTL the dead peer's intent stops blocking (and is
        # pruned from the table entirely)
        assert b.blockers(1, now_ns=20_000, ttl_ns=10_000) == 0
        assert (MAC_A, 1) not in b.foreign

    def test_trunk_feasibility_gates_commit(self):
        a, _ = pair()
        # two committed channels demanding 6 slots by deadline 8
        for cid, seq in ((1, 10), (2, 11)):
            a.apply_commit(_commit_raw(MAC_B, seq, 0, cid, 10, 3, 8))
        # a third identical channel pushes demand to 9 slots by t=8
        a.begin_intent(5, 0, 9, 1, (10, 3, 8), peers=(MAC_B,))
        assert a.trunk_feasible(5) is False
        # a light, loose-deadline channel still fits
        a.begin_intent(6, 0, 10, 1, (100, 3, 90), peers=(MAC_B,))
        assert a.trunk_feasible(6) is True


class TestReconciliation:
    def test_replay_brings_a_blank_peer_up_to_date(self):
        a, b = pair()
        for cid, seq in ((1, 10), (2, 11)):
            a.apply_commit(_commit_raw(MAC_A, seq, 0, cid, 100, 3, 40))
        a.apply_release(
            IntentFrame(
                kind=IntentKind.RELEASE,
                intent_seq=12,
                switch_mac=MAC_A,
                ack_mac=0,
                link_id=0,
                channel_id=1,
                priority=0,
                period=100,
                capacity=3,
                deadline=40,
            )
        )
        for frame in a.reconciliation_frames(0):
            if frame.kind is IntentKind.COMMIT:
                b.apply_commit(frame)
            else:
                b.apply_release(frame)
        assert b.committed[0] == a.committed[0]

    def test_release_log_is_bounded(self):
        a, _ = pair()
        for i in range(100):
            a.apply_commit(_commit_raw(MAC_A, 2 * i, 0, i, 100, 1, 50))
            a.apply_release(
                IntentFrame(
                    kind=IntentKind.RELEASE,
                    intent_seq=2 * i + 1,
                    switch_mac=MAC_A,
                    ack_mac=0,
                    link_id=0,
                    channel_id=i,
                    priority=0,
                    period=100,
                    capacity=1,
                    deadline=50,
                )
            )
        assert len(a.release_log[0]) == 64


class TestStateRoundTrip:
    def test_export_import_is_lossless(self):
        a, b = pair()
        announce = a.begin_intent(1, 0, 7, 6, SPEC, peers=(MAC_B,))
        b.record_announce(announce, now_ns=123)
        a.record_ack(
            IntentFrame(
                kind=IntentKind.ACK,
                intent_seq=1,
                switch_mac=MAC_A,
                ack_mac=MAC_B,
                link_id=0,
                channel_id=7,
                priority=6,
                period=100,
                capacity=3,
                deadline=40,
            )
        )
        a.apply_commit(_commit_raw(MAC_B, 9, 0, 3, 100, 2, 30))
        for original in (a, b):
            state = json.loads(json.dumps(original.export_state()))
            clone = IntentCoordinator(original.mac, original.link_ids)
            clone.import_state(state)
            assert clone.export_state() == original.export_state()

    def test_import_rejects_foreign_mac(self):
        a, b = pair()
        with pytest.raises(ConfigurationError):
            b.import_state(a.export_state())


def _announce(coordinator: IntentCoordinator, seq: int) -> IntentFrame:
    record = coordinator.pending[seq]
    return IntentFrame(
        kind=IntentKind.ANNOUNCE,
        intent_seq=seq,
        switch_mac=coordinator.mac,
        ack_mac=0,
        link_id=record["link_id"],
        channel_id=record["channel_id"],
        priority=record["priority"],
        period=record["period"],
        capacity=record["capacity"],
        deadline=record["deadline"],
    )


def _announce_raw(
    mac: int, seq: int, link_id: int, channel_id: int, priority: int
) -> IntentFrame:
    return IntentFrame(
        kind=IntentKind.ANNOUNCE,
        intent_seq=seq,
        switch_mac=mac,
        ack_mac=0,
        link_id=link_id,
        channel_id=channel_id,
        priority=priority,
        period=100,
        capacity=3,
        deadline=40,
    )


def _commit_raw(
    mac: int,
    seq: int,
    link_id: int,
    channel_id: int,
    period: int,
    capacity: int,
    deadline: int,
) -> IntentFrame:
    return IntentFrame(
        kind=IntentKind.COMMIT,
        intent_seq=seq,
        switch_mac=mac,
        ack_mac=0,
        link_id=link_id,
        channel_id=channel_id,
        priority=0,
        period=period,
        capacity=capacity,
        deadline=deadline,
    )
