"""Tests for the end-node signalling state machines."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.protocol.frames import RequestFrame, ResponseFrame
from repro.protocol.signaling import (
    EXPLICIT_TEARDOWN_ID,
    ConnectionRequestState,
    ResponseKind,
    RetryPolicy,
    SourceSignaling,
    accept_all,
    destination_response,
)
from repro.sim.rng import RngRegistry

NODE_MAC = 0x02_00_00_00_00_01
SWITCH_MAC = 0x02_FF_FF_FF_FF_FF
NODE_IP = 0x0A00_0001


def make_source() -> SourceSignaling:
    return SourceSignaling(
        node_mac=NODE_MAC, switch_mac=SWITCH_MAC, node_ip=NODE_IP
    )


def respond(request: RequestFrame, ok: bool, channel_id: int = 5):
    return ResponseFrame(
        connect_request_id=request.connect_request_id,
        rt_channel_id=channel_id,
        switch_mac=SWITCH_MAC,
        ok=ok,
    )


class TestSourceSignaling:
    def test_build_request_fields(self):
        source = make_source()
        request = source.build_request(
            destination="b",
            destination_mac=0x02,
            destination_ip=0x0A00_0002,
            period=100,
            capacity=3,
            deadline=40,
        )
        assert request.source_mac == NODE_MAC
        assert request.rt_channel_id == 0  # not valid yet, per the paper
        assert request.period == 100
        assert source.outstanding == 1

    def test_accept_flow(self):
        source = make_source()
        request = source.build_request("b", 2, 2, 100, 3, 40)
        kind, record = source.handle_response(
            respond(request, ok=True, channel_id=9)
        )
        assert kind is ResponseKind.COMPLETED
        assert record.state is ConnectionRequestState.ACCEPTED
        assert record.rt_channel_id == 9
        assert source.outstanding == 0
        assert source.completed == [record]

    def test_reject_flow(self):
        source = make_source()
        request = source.build_request("b", 2, 2, 100, 3, 40)
        kind, record = source.handle_response(respond(request, ok=False))
        assert kind is ResponseKind.COMPLETED
        assert record.state is ConnectionRequestState.REJECTED
        assert record.rt_channel_id == -1

    def test_unknown_response_is_stale(self):
        source = make_source()
        stray = ResponseFrame(
            connect_request_id=77, rt_channel_id=1, switch_mac=SWITCH_MAC,
            ok=True,
        )
        kind, record = source.handle_response(stray)
        assert kind is ResponseKind.STALE
        assert record is None

    def test_duplicate_response_recognized(self):
        source = make_source()
        request = source.build_request("b", 2, 2, 100, 3, 40)
        _, first = source.handle_response(respond(request, ok=True))
        kind, record = source.handle_response(respond(request, ok=True))
        assert kind is ResponseKind.DUPLICATE
        assert record is first
        # the duplicate must not complete the request a second time
        assert source.completed == [first]

    def test_duplicate_of_rejection_recognized(self):
        source = make_source()
        request = source.build_request("b", 2, 2, 100, 3, 40)
        source.handle_response(respond(request, ok=False))
        kind, _ = source.handle_response(respond(request, ok=False))
        assert kind is ResponseKind.DUPLICATE

    def test_mismatched_duplicate_is_stale(self):
        # same ID but a different channel: not a repeat of our verdict.
        source = make_source()
        request = source.build_request("b", 2, 2, 100, 3, 40)
        source.handle_response(respond(request, ok=True, channel_id=9))
        kind, record = source.handle_response(
            respond(request, ok=True, channel_id=10)
        )
        assert kind is ResponseKind.STALE
        assert record is None

    def test_reallocated_id_forgets_old_verdict(self):
        source = make_source()
        first = source.build_request("b", 2, 2, 100, 3, 40)
        source.handle_response(respond(first, ok=True, channel_id=9))
        assert first.connect_request_id in source._completed_recent
        # the channel must be torn down before its ID can come around
        # again (live channels pin their request ID)
        source.channel_torn_down(9)
        # cycle through the whole space so the ID is reallocated
        for _ in range(SourceSignaling.MAX_OUTSTANDING):
            request = source.build_request("b", 2, 2, 100, 3, 40)
            if request.connect_request_id == first.connect_request_id:
                break
            source.handle_response(respond(request, ok=False))
        else:
            pytest.fail("ID was never reallocated")
        # the ID now names a NEW logical request: the old verdict must be
        # unmatchable (duplicate detection would replay a stale grant).
        assert first.connect_request_id not in source._completed_recent

    def test_id_zero_never_allocated(self):
        source = make_source()
        ids = set()
        for _ in range(SourceSignaling.MAX_OUTSTANDING):
            ids.add(source.build_request("b", 2, 2, 100, 3, 40).connect_request_id)
        assert EXPLICIT_TEARDOWN_ID not in ids
        assert len(ids) == SourceSignaling.MAX_OUTSTANDING

    def test_request_ids_distinct_while_outstanding(self):
        source = make_source()
        ids = {
            source.build_request("b", 2, 2, 100, 3, 40).connect_request_id
            for _ in range(100)
        }
        assert len(ids) == 100

    def test_id_space_exhaustion(self):
        source = make_source()
        requests = [
            source.build_request("b", 2, 2, 100, 3, 40) for _ in range(255)
        ]
        with pytest.raises(ProtocolError, match="255"):
            source.build_request("b", 2, 2, 100, 3, 40)
        # Completing one frees an ID.
        source.handle_response(respond(requests[0], ok=False))
        source.build_request("b", 2, 2, 100, 3, 40)

    def test_ids_reused_after_completion(self):
        source = make_source()
        first = source.build_request("b", 2, 2, 100, 3, 40)
        source.handle_response(respond(first, ok=True))
        source.channel_torn_down(5)
        # the freed ID eventually comes around again
        seen = set()
        for _ in range(255):
            request = source.build_request("b", 2, 2, 100, 3, 40)
            seen.add(request.connect_request_id)
            source.handle_response(respond(request, ok=True))
            source.channel_torn_down(5)
        assert first.connect_request_id in seen

    def test_live_channel_pins_request_id(self):
        # An established channel's request ID must NOT be reallocated:
        # the switch's verdict cache is keyed (source MAC, request ID)
        # and could re-answer a new request with the old verdict.
        source = make_source()
        first = source.build_request("b", 2, 2, 100, 3, 40)
        source.handle_response(respond(first, ok=True, channel_id=9))
        ids = {
            source.build_request("b", 2, 2, 100, 3, 40).connect_request_id
            for _ in range(SourceSignaling.MAX_OUTSTANDING - 1)
        }
        assert first.connect_request_id not in ids
        # with 1 live + 254 pending, the space is exhausted
        with pytest.raises(ProtocolError, match="established"):
            source.build_request("b", 2, 2, 100, 3, 40)
        # teardown frees the pinned ID again
        source.channel_torn_down(9)
        request = source.build_request("b", 2, 2, 100, 3, 40)
        assert request.connect_request_id == first.connect_request_id

    def test_is_pending(self):
        source = make_source()
        request = source.build_request("b", 2, 2, 100, 3, 40)
        assert source.is_pending(request.connect_request_id)
        source.handle_response(respond(request, ok=True))
        assert not source.is_pending(request.connect_request_id)

    def test_late_response_then_duplicate(self):
        source = make_source()
        request = source.build_request("b", 2, 2, 100, 3, 40)
        source.timeout_request(request.connect_request_id)
        kind, record = source.handle_response(
            respond(request, ok=True, channel_id=9)
        )
        assert kind is ResponseKind.LATE
        assert record.state is ConnectionRequestState.TIMED_OUT
        assert record.rt_channel_id == 9
        # the switch may answer a retransmission too: absorbed as duplicate
        kind, _ = source.handle_response(
            respond(request, ok=True, channel_id=9)
        )
        assert kind is ResponseKind.DUPLICATE


class TestRetryPolicy:
    def test_deterministic_backoff(self):
        policy = RetryPolicy(timeout_ns=1000, max_retries=3, backoff=2.0)
        assert [policy.delay_ns(k) for k in range(4)] == [
            1000, 2000, 4000, 8000,
        ]

    def test_cap(self):
        policy = RetryPolicy(
            timeout_ns=1000, max_retries=5, backoff=4.0, max_timeout_ns=5000
        )
        assert policy.delay_ns(3) == 5000

    def test_jitter_bounds_and_determinism(self):
        policy = RetryPolicy(
            timeout_ns=10_000, max_retries=3, backoff=2.0, jitter=0.25
        )
        draws_a = [
            policy.delay_ns(k, RngRegistry(7).stream("jitter"))
            for k in range(4)
        ]
        draws_b = [
            policy.delay_ns(k, RngRegistry(7).stream("jitter"))
            for k in range(4)
        ]
        assert draws_a == draws_b  # same seed, same schedule
        for k, delay in enumerate(draws_a):
            base = 10_000 * 2.0 ** k
            assert 0.75 * base <= delay <= 1.25 * base

    def test_jitter_requires_rng(self):
        policy = RetryPolicy(timeout_ns=1000, jitter=0.5)
        with pytest.raises(ConfigurationError, match="rng"):
            policy.delay_ns(0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_ns=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_ns=100, max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_ns=100, backoff=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_ns=100, jitter=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_ns=100, max_timeout_ns=50)


class TestDestinationResponse:
    def make_offer(self, channel_id=5) -> RequestFrame:
        return RequestFrame(
            connect_request_id=1,
            rt_channel_id=channel_id,
            source_mac=NODE_MAC,
            destination_mac=0x02,
            source_ip=NODE_IP,
            destination_ip=0x0A00_0002,
            period=100,
            capacity=3,
            deadline=40,
        )

    def test_accept_all_policy(self):
        response = destination_response(
            self.make_offer(), SWITCH_MAC, accept_all
        )
        assert response.ok
        assert response.rt_channel_id == 5
        assert response.switch_mac == SWITCH_MAC

    def test_declining_policy(self):
        response = destination_response(
            self.make_offer(), SWITCH_MAC, lambda req: False
        )
        assert not response.ok

    def test_policy_sees_the_request(self):
        seen = []

        def policy(request):
            seen.append(request.period)
            return True

        destination_response(self.make_offer(), SWITCH_MAC, policy)
        assert seen == [100]

    def test_unstamped_offer_rejected(self):
        with pytest.raises(ProtocolError, match="stamp"):
            destination_response(
                self.make_offer(channel_id=0), SWITCH_MAC, accept_all
            )
