"""Tests for the end-node signalling state machines."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.protocol.frames import RequestFrame, ResponseFrame
from repro.protocol.signaling import (
    ConnectionRequestState,
    SourceSignaling,
    accept_all,
    destination_response,
)

NODE_MAC = 0x02_00_00_00_00_01
SWITCH_MAC = 0x02_FF_FF_FF_FF_FF
NODE_IP = 0x0A00_0001


def make_source() -> SourceSignaling:
    return SourceSignaling(
        node_mac=NODE_MAC, switch_mac=SWITCH_MAC, node_ip=NODE_IP
    )


def respond(request: RequestFrame, ok: bool, channel_id: int = 5):
    return ResponseFrame(
        connect_request_id=request.connect_request_id,
        rt_channel_id=channel_id,
        switch_mac=SWITCH_MAC,
        ok=ok,
    )


class TestSourceSignaling:
    def test_build_request_fields(self):
        source = make_source()
        request = source.build_request(
            destination="b",
            destination_mac=0x02,
            destination_ip=0x0A00_0002,
            period=100,
            capacity=3,
            deadline=40,
        )
        assert request.source_mac == NODE_MAC
        assert request.rt_channel_id == 0  # not valid yet, per the paper
        assert request.period == 100
        assert source.outstanding == 1

    def test_accept_flow(self):
        source = make_source()
        request = source.build_request("b", 2, 2, 100, 3, 40)
        record = source.handle_response(respond(request, ok=True, channel_id=9))
        assert record.state is ConnectionRequestState.ACCEPTED
        assert record.rt_channel_id == 9
        assert source.outstanding == 0
        assert source.completed == [record]

    def test_reject_flow(self):
        source = make_source()
        request = source.build_request("b", 2, 2, 100, 3, 40)
        record = source.handle_response(respond(request, ok=False))
        assert record.state is ConnectionRequestState.REJECTED
        assert record.rt_channel_id == -1

    def test_unknown_response_raises(self):
        source = make_source()
        stray = ResponseFrame(
            connect_request_id=77, rt_channel_id=1, switch_mac=SWITCH_MAC,
            ok=True,
        )
        with pytest.raises(ProtocolError, match="unknown"):
            source.handle_response(stray)

    def test_duplicate_response_raises(self):
        source = make_source()
        request = source.build_request("b", 2, 2, 100, 3, 40)
        source.handle_response(respond(request, ok=True))
        with pytest.raises(ProtocolError):
            source.handle_response(respond(request, ok=True))

    def test_request_ids_distinct_while_outstanding(self):
        source = make_source()
        ids = {
            source.build_request("b", 2, 2, 100, 3, 40).connect_request_id
            for _ in range(100)
        }
        assert len(ids) == 100

    def test_id_space_exhaustion(self):
        source = make_source()
        requests = [
            source.build_request("b", 2, 2, 100, 3, 40) for _ in range(256)
        ]
        with pytest.raises(ProtocolError, match="256"):
            source.build_request("b", 2, 2, 100, 3, 40)
        # Completing one frees an ID.
        source.handle_response(respond(requests[0], ok=False))
        source.build_request("b", 2, 2, 100, 3, 40)

    def test_ids_reused_after_completion(self):
        source = make_source()
        first = source.build_request("b", 2, 2, 100, 3, 40)
        source.handle_response(respond(first, ok=True))
        # the freed ID eventually comes around again
        seen = set()
        for _ in range(256):
            request = source.build_request("b", 2, 2, 100, 3, 40)
            seen.add(request.connect_request_id)
            source.handle_response(respond(request, ok=True))
        assert first.connect_request_id in seen


class TestDestinationResponse:
    def make_offer(self, channel_id=5) -> RequestFrame:
        return RequestFrame(
            connect_request_id=1,
            rt_channel_id=channel_id,
            source_mac=NODE_MAC,
            destination_mac=0x02,
            source_ip=NODE_IP,
            destination_ip=0x0A00_0002,
            period=100,
            capacity=3,
            deadline=40,
        )

    def test_accept_all_policy(self):
        response = destination_response(
            self.make_offer(), SWITCH_MAC, accept_all
        )
        assert response.ok
        assert response.rt_channel_id == 5
        assert response.switch_mac == SWITCH_MAC

    def test_declining_policy(self):
        response = destination_response(
            self.make_offer(), SWITCH_MAC, lambda req: False
        )
        assert not response.ok

    def test_policy_sees_the_request(self):
        seen = []

        def policy(request):
            seen.append(request.period)
            return True

        destination_response(self.make_offer(), SWITCH_MAC, policy)
        assert seen == [100]

    def test_unstamped_offer_rejected(self):
        with pytest.raises(ProtocolError, match="stamp"):
            destination_response(
                self.make_offer(channel_id=0), SWITCH_MAC, accept_all
            )
