"""Tests for the RequestFrame/ResponseFrame codecs (Figures 18.3/18.4)."""

from __future__ import annotations

import pytest

from repro.errors import CodecError, FieldRangeError
from repro.protocol.frames import (
    FrameType,
    RequestFrame,
    ResponseFrame,
    TeardownFrame,
    decode_signaling,
    REQUEST_FRAME_BYTES,
    RESPONSE_FRAME_BYTES,
    TEARDOWN_FRAME_BYTES,
)


def sample_request(**overrides) -> RequestFrame:
    kwargs = dict(
        connect_request_id=42,
        rt_channel_id=0,
        source_mac=0x0200_0000_0001,
        destination_mac=0x0200_0000_0002,
        source_ip=0x0A00_0001,
        destination_ip=0x0A00_0002,
        period=100,
        capacity=3,
        deadline=40,
    )
    kwargs.update(overrides)
    return RequestFrame(**kwargs)


class TestRequestFrame:
    def test_encoded_size_is_36_bytes(self):
        # 8+8+16+48+48+32+32+32+32+32 = 288 bits exactly.
        assert len(sample_request().encode()) == REQUEST_FRAME_BYTES

    def test_roundtrip(self):
        frame = sample_request()
        decoded = decode_signaling(frame.encode())
        assert decoded == frame

    def test_type_tag_leads(self):
        assert sample_request().encode()[0] == FrameType.CONNECT

    def test_field_width_limits_paper_exact(self):
        # 16-bit channel ID
        sample_request(rt_channel_id=0xFFFF)
        with pytest.raises(FieldRangeError):
            sample_request(rt_channel_id=0x10000)
        # 8-bit request ID
        sample_request(connect_request_id=255)
        with pytest.raises(FieldRangeError):
            sample_request(connect_request_id=256)
        # 48-bit MACs
        sample_request(source_mac=(1 << 48) - 1)
        with pytest.raises(FieldRangeError):
            sample_request(source_mac=1 << 48)
        # 32-bit parameters
        sample_request(period=(1 << 32) - 1)
        with pytest.raises(FieldRangeError):
            sample_request(deadline=1 << 32)

    def test_negative_field_rejected(self):
        with pytest.raises(FieldRangeError):
            sample_request(capacity=-1)

    def test_with_channel_id_stamps_only_the_id(self):
        frame = sample_request()
        stamped = frame.with_channel_id(777)
        assert stamped.rt_channel_id == 777
        assert stamped.period == frame.period
        assert stamped.connect_request_id == frame.connect_request_id
        assert frame.rt_channel_id == 0  # original immutable

    def test_max_values_roundtrip(self):
        frame = sample_request(
            connect_request_id=255,
            rt_channel_id=0xFFFF,
            source_mac=(1 << 48) - 1,
            destination_mac=(1 << 48) - 1,
            source_ip=(1 << 32) - 1,
            destination_ip=(1 << 32) - 1,
            period=(1 << 32) - 1,
            capacity=(1 << 32) - 1,
            deadline=(1 << 32) - 1,
        )
        assert decode_signaling(frame.encode()) == frame


class TestResponseFrame:
    def test_encoded_size_is_11_bytes(self):
        # 8+8+16+48+1 = 81 bits -> 11 bytes with padding.
        frame = ResponseFrame(
            connect_request_id=1, rt_channel_id=2, switch_mac=0xAB, ok=True
        )
        assert len(frame.encode()) == RESPONSE_FRAME_BYTES

    @pytest.mark.parametrize("ok", [True, False])
    def test_roundtrip(self, ok):
        frame = ResponseFrame(
            connect_request_id=9,
            rt_channel_id=1234,
            switch_mac=0x02FF_FFFF_FFFF,
            ok=ok,
        )
        assert decode_signaling(frame.encode()) == frame

    def test_ok_must_be_bool(self):
        with pytest.raises(FieldRangeError):
            ResponseFrame(
                connect_request_id=1, rt_channel_id=2, switch_mac=3, ok=1
            )  # type: ignore[arg-type]

    def test_type_tag(self):
        frame = ResponseFrame(
            connect_request_id=1, rt_channel_id=2, switch_mac=3, ok=False
        )
        assert frame.encode()[0] == FrameType.RESPONSE


class TestTeardownFrame:
    def test_roundtrip(self):
        frame = TeardownFrame(connect_request_id=3, rt_channel_id=77)
        assert len(frame.encode()) == TEARDOWN_FRAME_BYTES
        assert decode_signaling(frame.encode()) == frame


class TestDecodeSignaling:
    def test_unknown_type_rejected(self):
        with pytest.raises(CodecError, match="unknown"):
            decode_signaling(b"\x7f" + b"\x00" * 10)

    def test_truncated_request_rejected(self):
        data = sample_request().encode()[:-1]
        with pytest.raises(CodecError):
            decode_signaling(data)

    def test_corrupt_padding_rejected(self):
        frame = ResponseFrame(
            connect_request_id=1, rt_channel_id=2, switch_mac=3, ok=True
        )
        data = bytearray(frame.encode())
        data[-1] |= 0x01  # flip a padding bit
        with pytest.raises(CodecError, match="padding"):
            decode_signaling(bytes(data))

    def test_empty_input_rejected(self):
        with pytest.raises(CodecError):
            decode_signaling(b"")
