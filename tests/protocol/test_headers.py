"""Tests for the RT header mangling (Section 18.2.2)."""

from __future__ import annotations

import pytest

from repro.errors import CodecError, FieldRangeError
from repro.protocol.headers import (
    MAX_ABSOLUTE_DEADLINE,
    MAX_CHANNEL_ID,
    RT_TOS,
    RTHeader,
    decode_rt_header,
    encode_rt_header,
)


class TestEncodeDecode:
    def test_roundtrip_simple(self):
        header = encode_rt_header(absolute_deadline=123456789, channel_id=42)
        assert decode_rt_header(header) == (123456789, 42)

    def test_roundtrip_extremes(self):
        for deadline in (0, 1, 0xFFFF, 0x10000, MAX_ABSOLUTE_DEADLINE):
            for channel in (0, 1, MAX_CHANNEL_ID):
                header = encode_rt_header(deadline, channel)
                assert decode_rt_header(header) == (deadline, channel)

    def test_bit_layout_matches_paper(self):
        """IP source = deadline[47:16]; dest = deadline[15:0] | channel."""
        deadline = 0x1234_5678_9ABC
        header = encode_rt_header(deadline, channel_id=0xDEF0)
        assert header.ip_source == 0x1234_5678
        assert header.ip_destination == 0x9ABC_DEF0

    def test_tos_is_255(self):
        header = encode_rt_header(1, 1)
        assert header.tos == RT_TOS == 255
        assert header.is_realtime

    def test_deadline_too_large_rejected(self):
        with pytest.raises(FieldRangeError, match="48-bit"):
            encode_rt_header(MAX_ABSOLUTE_DEADLINE + 1, 0)

    def test_negative_deadline_rejected(self):
        with pytest.raises(FieldRangeError):
            encode_rt_header(-1, 0)

    def test_channel_id_out_of_range_rejected(self):
        with pytest.raises(FieldRangeError):
            encode_rt_header(0, MAX_CHANNEL_ID + 1)
        with pytest.raises(FieldRangeError):
            encode_rt_header(0, -1)


class TestRTHeader:
    def test_non_rt_header_refuses_deadline_reads(self):
        header = RTHeader(ip_source=0x0A000001, ip_destination=0x0A000002, tos=0)
        assert not header.is_realtime
        with pytest.raises(CodecError):
            _ = header.absolute_deadline
        with pytest.raises(CodecError):
            _ = header.channel_id

    def test_field_width_validation(self):
        with pytest.raises(FieldRangeError):
            RTHeader(ip_source=1 << 32, ip_destination=0)
        with pytest.raises(FieldRangeError):
            RTHeader(ip_source=0, ip_destination=-1)
        with pytest.raises(FieldRangeError):
            RTHeader(ip_source=0, ip_destination=0, tos=256)

    def test_48_bits_of_nanoseconds_covers_days(self):
        """Sanity: the paper's 48-bit field holds > 3 days of ns."""
        assert MAX_ABSOLUTE_DEADLINE > 3 * 24 * 3600 * 1_000_000_000
