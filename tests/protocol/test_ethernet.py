"""Tests for the logical EthernetFrame model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.protocol.ethernet import EthernetFrame, FrameKind
from repro.protocol.headers import RTHeader, encode_rt_header
from repro.units import ETH_MAX_PAYLOAD


def rt_frame(**overrides) -> EthernetFrame:
    kwargs = dict(
        kind=FrameKind.RT_DATA,
        source="a",
        destination="b",
        payload_bytes=ETH_MAX_PAYLOAD,
        rt_header=encode_rt_header(1000, 7),
        channel_id=7,
        message_seq=0,
        created_at=0,
    )
    kwargs.update(overrides)
    return EthernetFrame(**kwargs)


class TestValidation:
    def test_rt_frame_ok(self):
        frame = rt_frame()
        assert frame.absolute_deadline == 1000

    def test_rt_frame_requires_header(self):
        with pytest.raises(ConfigurationError):
            rt_frame(rt_header=None)

    def test_rt_frame_requires_rt_tos(self):
        bogus = RTHeader(ip_source=0, ip_destination=0, tos=0)
        with pytest.raises(ConfigurationError):
            rt_frame(rt_header=bogus)

    def test_rt_frame_requires_channel(self):
        with pytest.raises(ConfigurationError):
            rt_frame(channel_id=-1)

    def test_best_effort_must_not_carry_rt_header(self):
        with pytest.raises(ConfigurationError):
            EthernetFrame(
                kind=FrameKind.BEST_EFFORT,
                source="a",
                destination="b",
                payload_bytes=100,
                rt_header=encode_rt_header(1, 1),
            )

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            EthernetFrame(
                kind=FrameKind.BEST_EFFORT,
                source="a",
                destination="b",
                payload_bytes=-1,
            )

    def test_best_effort_has_no_deadline(self):
        frame = EthernetFrame(
            kind=FrameKind.BEST_EFFORT,
            source="a",
            destination="b",
            payload_bytes=100,
        )
        with pytest.raises(ConfigurationError):
            _ = frame.absolute_deadline


class TestSizes:
    def test_max_frame_sizes(self):
        frame = rt_frame()
        assert frame.mac_frame_bytes == 1518
        assert frame.wire_size_bytes == 1538

    def test_small_signaling_frame_padded(self):
        frame = EthernetFrame(
            kind=FrameKind.SIGNALING,
            source="a",
            destination="switch",
            payload_bytes=11,
        )
        assert frame.mac_frame_bytes == 64
        assert frame.wire_size_bytes == 84


class TestIdentity:
    def test_frame_ids_unique(self):
        a = rt_frame()
        b = rt_frame()
        assert a.frame_id != b.frame_id

    def test_describe_rt(self):
        text = rt_frame(message_seq=3, fragment_index=1).describe()
        assert "ch=7" in text and "msg=3.1" in text and "a->b" in text

    def test_describe_best_effort(self):
        frame = EthernetFrame(
            kind=FrameKind.BEST_EFFORT,
            source="a",
            destination="b",
            payload_bytes=64,
        )
        assert "be" in frame.describe()
