"""Wire codec tests for the intent-lock and gossip control frames."""

from __future__ import annotations

import pytest

from repro.errors import CodecError
from repro.protocol.frames import (
    GOSSIP_FRAME_BYTES,
    INTENT_FRAME_BYTES,
    GossipFrame,
    IntentFrame,
    IntentKind,
    decode_signaling,
)

MAC_A = 0x0200_0000_0000
MAC_B = 0x0200_0000_0001


def intent(kind: IntentKind, **overrides) -> IntentFrame:
    fields = dict(
        kind=kind,
        intent_seq=0xDEADBEEF,
        switch_mac=MAC_A,
        ack_mac=MAC_B if kind is IntentKind.ACK else 0,
        link_id=3,
        channel_id=0x1234,
        priority=6,
        period=100,
        capacity=3,
        deadline=40,
    )
    fields.update(overrides)
    return IntentFrame(**fields)


class TestIntentFrameCodec:
    @pytest.mark.parametrize("kind", list(IntentKind))
    def test_round_trip_every_kind(self, kind):
        frame = intent(kind)
        wire = frame.encode()
        assert len(wire) == INTENT_FRAME_BYTES
        assert decode_signaling(wire) == frame

    def test_extreme_field_values_survive(self):
        frame = intent(
            IntentKind.ANNOUNCE,
            intent_seq=0xFFFF_FFFF,
            switch_mac=0xFFFF_FFFF_FFFF,
            link_id=0xFFFF,
            channel_id=0xFFFF,
            priority=0xFF,
            period=0xFFFF_FFFF,
            capacity=0xFFFF_FFFF,
            deadline=0xFFFF_FFFF,
        )
        assert decode_signaling(frame.encode()) == frame

    def test_precedence_orders_priority_then_mac_then_seq(self):
        low_prio = intent(IntentKind.ANNOUNCE, priority=1)
        high_prio = intent(IntentKind.ANNOUNCE, priority=9)
        assert low_prio.precedence < high_prio.precedence
        a = intent(IntentKind.ANNOUNCE, switch_mac=MAC_A)
        b = intent(IntentKind.ANNOUNCE, switch_mac=MAC_B)
        assert a.precedence < b.precedence
        early = intent(IntentKind.ANNOUNCE, intent_seq=5)
        late = intent(IntentKind.ANNOUNCE, intent_seq=6)
        assert early.precedence < late.precedence

    def test_truncated_frame_raises(self):
        wire = intent(IntentKind.COMMIT).encode()
        with pytest.raises(CodecError):
            decode_signaling(wire[:-1])


class TestGossipFrameCodec:
    def test_round_trip(self):
        frame = GossipFrame(
            switch_mac=MAC_A,
            link_id=2,
            version=987654,
            load=17,
            util_num=3,
            util_den=10,
        )
        wire = frame.encode()
        assert len(wire) == GOSSIP_FRAME_BYTES
        assert decode_signaling(wire) == frame

    def test_truncated_frame_raises(self):
        wire = GossipFrame(
            switch_mac=MAC_A,
            link_id=0,
            version=1,
            load=0,
            util_num=0,
            util_den=1,
        ).encode()
        with pytest.raises(CodecError):
            decode_signaling(wire[:-1])
