"""Tests for the MSB-first bit packer/unpacker."""

from __future__ import annotations

import pytest

from repro.errors import CodecError, FieldRangeError
from repro.protocol.bitfields import BitPacker, BitUnpacker


class TestBitPacker:
    def test_single_byte(self):
        assert BitPacker().put(0xAB, 8).to_bytes() == b"\xab"

    def test_msb_first_ordering(self):
        # 4 bits of 0xF then 4 bits of 0x0 -> 0xF0.
        assert BitPacker().put(0xF, 4).put(0x0, 4).to_bytes() == b"\xf0"

    def test_cross_byte_field(self):
        # 12-bit value 0xABC followed by 4 bits 0xD -> 0xAB 0xCD.
        data = BitPacker().put(0xABC, 12).put(0xD, 4).to_bytes()
        assert data == b"\xab\xcd"

    def test_zero_padding_on_partial_byte(self):
        # 1 bit set -> padded right with 7 zeros: 0b1000_0000.
        assert BitPacker().put(1, 1).to_bytes() == b"\x80"

    def test_empty(self):
        assert BitPacker().to_bytes() == b""

    def test_bit_length(self):
        packer = BitPacker().put(1, 3).put(0, 13)
        assert packer.bit_length == 16

    def test_value_too_wide_rejected(self):
        with pytest.raises(FieldRangeError):
            BitPacker().put(256, 8)
        with pytest.raises(FieldRangeError):
            BitPacker().put(2, 1)

    def test_negative_value_rejected(self):
        with pytest.raises(FieldRangeError):
            BitPacker().put(-1, 8)

    def test_zero_width_rejected(self):
        with pytest.raises(FieldRangeError):
            BitPacker().put(0, 0)

    def test_48_bit_field(self):
        mac = 0x0123456789AB
        assert BitPacker().put(mac, 48).to_bytes() == bytes.fromhex(
            "0123456789ab"
        )


class TestBitUnpacker:
    def test_roundtrip_mixed_widths(self):
        fields = [(5, 3), (1023, 10), (0, 1), (0xDEADBEEF, 32), (7, 4)]
        packer = BitPacker()
        for value, width in fields:
            packer.put(value, width)
        unpacker = BitUnpacker(packer.to_bytes())
        for value, width in fields:
            assert unpacker.take(width) == value
        unpacker.expect_zero_padding()

    def test_truncated_input_raises(self):
        unpacker = BitUnpacker(b"\xff")
        unpacker.take(4)
        with pytest.raises(CodecError, match="truncated"):
            unpacker.take(5)

    def test_remaining_bits(self):
        unpacker = BitUnpacker(b"\x00\x00")
        assert unpacker.remaining_bits == 16
        unpacker.take(3)
        assert unpacker.remaining_bits == 13

    def test_nonzero_padding_detected(self):
        unpacker = BitUnpacker(b"\x81")  # take 1 bit, 7 remain = 0x01
        unpacker.take(1)
        with pytest.raises(CodecError, match="padding"):
            unpacker.expect_zero_padding()

    def test_zero_padding_accepted(self):
        unpacker = BitUnpacker(b"\x80")
        unpacker.take(1)
        unpacker.expect_zero_padding()

    def test_padding_check_on_fully_consumed(self):
        unpacker = BitUnpacker(b"\xff")
        unpacker.take(8)
        unpacker.expect_zero_padding()  # nothing remains: fine

    def test_empty_input(self):
        unpacker = BitUnpacker(b"")
        assert unpacker.remaining_bits == 0
        with pytest.raises(CodecError):
            unpacker.take(1)

    def test_non_bytes_rejected(self):
        with pytest.raises(CodecError):
            BitUnpacker("not bytes")  # type: ignore[arg-type]

    def test_invalid_width(self):
        with pytest.raises(FieldRangeError):
            BitUnpacker(b"\x00").take(0)
