"""Tests for the Figure 18.5 reproduction (the paper's headline result).

The shape assertions here ARE the reproduction criteria: SDPS saturates
near 60 accepted channels (6 per master uplink x 10 masters), ADPS
roughly doubles that, and ADPS never does worse.
"""

from __future__ import annotations

import pytest

from repro.core.channel import ChannelSpec
from repro.errors import ConfigurationError
from repro.experiments.fig18_5 import Fig185Config, run_fig18_5


@pytest.fixture(scope="module")
def result():
    """A modest but statistically meaningful run (shared across tests)."""
    return run_fig18_5(Fig185Config(trials=6, seed=2004))


class TestPaperShape:
    def test_sdps_saturates_at_sixty(self, result):
        """Each master uplink fits 6 channels under SDPS: h(20)=3Q<=20."""
        assert result.sdps_final_mean == pytest.approx(60.0, abs=1.5)

    def test_adps_reaches_paper_band(self, result):
        """Paper's Figure 18.5 shows ADPS near 110 at 200 requested."""
        assert 100.0 <= result.adps_final_mean <= 125.0

    def test_adps_advantage_roughly_2x(self, result):
        assert 1.6 <= result.adps_advantage <= 2.2

    def test_adps_dominates_everywhere(self, result):
        assert result.adps_dominates_everywhere()

    def test_low_load_region_accepts_everything(self, result):
        sdps = result.curve.curve("sdps")
        adps = result.curve.curve("adps")
        assert sdps.means[0] == pytest.approx(20.0, abs=0.5)
        assert adps.means[0] == pytest.approx(20.0, abs=0.5)

    def test_curves_monotone_nondecreasing(self, result):
        for scheme in ("sdps", "adps"):
            means = result.curve.curve(scheme).means
            assert all(a <= b + 1e-9 for a, b in zip(means, means[1:]))

    def test_table_renders(self, result):
        text = result.to_table()
        assert "Figure 18.5" in text
        assert "sdps" in text and "adps" in text


class TestConfig:
    def test_defaults_match_paper(self):
        config = Fig185Config()
        assert config.n_masters == 10
        assert config.n_slaves == 50
        assert config.spec == ChannelSpec(period=100, capacity=3, deadline=40)
        assert config.requested_counts == tuple(range(20, 201, 20))

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            Fig185Config(n_masters=0)
        with pytest.raises(ConfigurationError):
            Fig185Config(trials=0)

    def test_reproducibility(self):
        config = Fig185Config(
            trials=2, requested_counts=(20, 60), seed=99
        )
        one = run_fig18_5(config)
        two = run_fig18_5(config)
        assert one.curve.curve("adps").means == two.curve.curve("adps").means


class TestMechanism:
    def test_advantage_vanishes_with_loose_deadline(self):
        """With d = 2P the demand test stops binding; both schemes hit
        the same utilization wall, so ADPS ~ SDPS."""
        config = Fig185Config(
            trials=3,
            requested_counts=(200,),
            spec=ChannelSpec(period=100, capacity=3, deadline=200),
        )
        result = run_fig18_5(config)
        assert result.adps_advantage == pytest.approx(1.0, abs=0.1)

    def test_reverse_traffic_mirrors_advantage(self):
        """Slave->master traffic bottlenecks master *downlinks*; ADPS
        still wins by shifting budget toward them."""
        config = Fig185Config(
            trials=3, requested_counts=(200,), master_to_slave_fraction=0.0
        )
        result = run_fig18_5(config)
        assert result.adps_final_mean > result.sdps_final_mean * 1.4
