"""Regression pin: the per-channel netcalc bound table is frozen.

``results/netcalc_bounds.csv`` holds the exact (Fraction-rendered)
end-to-end bounds of every channel admitted from the Fig. 18.5 workload
at three checkpoints, for both schemes. Regenerating the table must
reproduce the file byte-for-byte; CI additionally runs the ``cmp``
against a fresh ``repro netcalc-bounds --csv`` export. Any diff means
the curve algebra, the admission order, or the workload stream changed
-- all of which must be deliberate, reviewed events.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.netcalc_bounds import (
    DEFAULT_CHECKPOINTS,
    netcalc_bound_rows,
    render_bounds_csv,
)

FIXTURE = Path(__file__).resolve().parents[2] / "results" / "netcalc_bounds.csv"


class TestNetcalcBoundsRegression:
    def test_csv_is_byte_identical_to_fixture(self):
        regenerated = render_bounds_csv(netcalc_bound_rows())
        assert regenerated == FIXTURE.read_text(), (
            "netcalc bound table drifted from results/netcalc_bounds.csv; "
            "if the change is intentional, regenerate with "
            "`repro netcalc-bounds --csv results/netcalc_bounds.csv` "
            "and review the diff"
        )

    def test_rows_cover_both_schemes_at_every_checkpoint(self):
        rows = netcalc_bound_rows()
        seen = {(row.scheme, row.checkpoint) for row in rows}
        assert seen == {
            (scheme, checkpoint)
            for scheme in ("sdps", "adps")
            for checkpoint in DEFAULT_CHECKPOINTS
        }
        # star workload: always source uplink + destination downlink
        assert all(row.hops == 2 for row in rows)
        assert all(row.bound_ns > 0 for row in rows)

    def test_admitted_sets_grow_along_checkpoints(self):
        rows = netcalc_bound_rows()

        def admitted(scheme: str, checkpoint: int) -> set[int]:
            return {
                row.channel_id
                for row in rows
                if row.scheme == scheme and row.checkpoint == checkpoint
            }

        for scheme in ("sdps", "adps"):
            first, mid, last = (
                admitted(scheme, c) for c in DEFAULT_CHECKPOINTS
            )
            assert first <= mid <= last
