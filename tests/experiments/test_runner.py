"""Tests for the deterministic parallel sweep runner.

The contract under test: a sweep's result -- acceptance curve, merged
metrics snapshot, trace-record sequence -- is *identical* at any worker
count, because every (trial, scheme) work unit is a pure function of
``(seed, trial)`` and results fold back in work-unit order.
"""

from __future__ import annotations

import os

import pytest

from repro.core.channel import ChannelSpec
from repro.core.partitioning import AsymmetricDPS, SymmetricDPS
from repro.errors import ConfigurationError
from repro.experiments import runner
from repro.experiments.base import acceptance_curve
from repro.experiments.dps_comparison import run_dps_comparison
from repro.experiments.fig18_5 import Fig185Config, run_fig18_5
from repro.experiments.multiswitch_exp import run_multiswitch_comparison
from repro.experiments.runner import parallel_map, resolve_workers
from repro.experiments.validation import run_validation_sweep
from repro.obs import Telemetry, TelemetryConfig
from repro.traffic.patterns import ChannelRequest

SPEC = ChannelSpec(period=100, capacity=3, deadline=40)
NODES = ["m0", "m1", "s0", "s1", "s2", "s3"]


def factory(count, rng):
    masters = ["m0", "m1"]
    slaves = ["s0", "s1", "s2", "s3"]
    return [
        ChannelRequest(
            masters[int(rng.integers(0, 2))],
            slaves[int(rng.integers(0, 4))],
            SPEC,
        )
        for _ in range(count)
    ]


def small_curve(workers, telemetry=None):
    return acceptance_curve(
        node_names=NODES,
        request_factory=factory,
        schemes={"sdps": SymmetricDPS, "adps": AsymmetricDPS},
        requested_counts=[4, 8, 12],
        trials=3,
        seed=42,
        telemetry=telemetry,
        workers=workers,
    )


class TestResolveWorkers:
    def test_positive_passthrough(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(5) == 5

    def test_zero_means_all_cpus(self):
        assert resolve_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(-1)


class TestParallelMap:
    def test_order_preserved(self):
        assert parallel_map(lambda x: x * x, range(7), workers=3) == [
            0, 1, 4, 9, 16, 25, 36
        ]

    def test_serial_path_runs_in_process(self):
        pids = parallel_map(lambda _: os.getpid(), [1, 2], workers=1)
        assert pids == [os.getpid()] * 2

    def test_parallel_path_forks(self):
        if "fork" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("platform cannot fork")
        pids = parallel_map(lambda _: os.getpid(), [1, 2], workers=2)
        assert all(pid != os.getpid() for pid in pids)

    def test_nested_map_degrades_to_serial(self, monkeypatch):
        # simulate "already inside a pool worker": the runner must not
        # fork from a fork, it runs the inner sweep in-process instead
        monkeypatch.setattr(runner, "_ACTIVE_JOB", (lambda x: x, []))
        pids = parallel_map(lambda _: os.getpid(), [1, 2], workers=2)
        assert pids == [os.getpid()] * 2

    def test_work_unit_exception_propagates(self):
        def boom(item):
            raise ValueError(f"unit {item}")

        with pytest.raises(ValueError):
            parallel_map(boom, [1, 2], workers=2)

    def test_empty_items(self):
        assert parallel_map(lambda x: x, [], workers=4) == []


class TestWorkerInvariance:
    def test_acceptance_curve_identical(self):
        assert small_curve(workers=1) == small_curve(workers=4)

    def test_merged_telemetry_identical(self):
        config = TelemetryConfig(probe_cadence_ns=None)
        serial = Telemetry(config)
        parallel = Telemetry(config)
        assert small_curve(1, telemetry=serial) == small_curve(
            4, telemetry=parallel
        )
        assert serial.snapshot() == parallel.snapshot()
        assert list(serial.recorder) == list(parallel.recorder)
        assert serial.recorder.dropped == parallel.recorder.dropped

    def test_merged_spans_identical(self):
        from repro.obs import span_jsonl_lines

        config = TelemetryConfig(spans=True, probe_cadence_ns=None)
        serial = Telemetry(config)
        parallel = Telemetry(config)
        assert small_curve(1, telemetry=serial) == small_curve(
            4, telemetry=parallel
        )
        # span IDs, parent links and fields all re-base to the serial
        # stream: the merged file is byte-identical
        assert "\n".join(span_jsonl_lines(parallel.spans)) == "\n".join(
            span_jsonl_lines(serial.spans)
        )
        assert len(serial.spans) > 0
        # 3 trials x 2 schemes = 6 sweep roots, causality intact
        roots = [s for s in serial.spans if s.name == "sweep.run"]
        assert len(roots) == 6
        for span in serial.spans:
            if span.parent_id >= 0:
                assert span.trace_id in {r.trace_id for r in roots}

    def test_exported_csv_identical(self, tmp_path):
        from repro.analysis.export import series_to_csv

        def csv_of(workers):
            curve = small_curve(workers)
            return series_to_csv(
                "requested",
                list(curve.requested),
                {c.scheme: c.means for c in curve.curves},
            )

        assert csv_of(1) == csv_of(3)

    def test_fig18_5_identical(self):
        small = dict(
            n_masters=3, n_slaves=9, trials=3,
            requested_counts=(5, 10, 15),
        )
        serial = run_fig18_5(Fig185Config(workers=1, **small))
        fanned = run_fig18_5(Fig185Config(workers=3, **small))
        assert serial.curve == fanned.curve

    def test_dps_comparison_identical(self):
        small = dict(
            n_masters=3, n_slaves=9, trials=2,
            requested_counts=(5, 10),
        )
        assert run_dps_comparison(workers=1, **small) == run_dps_comparison(
            workers=2, **small
        )

    def test_multiswitch_identical(self):
        small = dict(
            n_switches=2, n_masters=3, n_slaves=6, trials=2,
            requested_counts=(4, 8),
        )
        assert run_multiswitch_comparison(
            workers=1, **small
        ) == run_multiswitch_comparison(workers=2, **small)

    def test_validation_sweep_identical_and_seeded(self):
        small = dict(
            n_masters=2, n_slaves=4, n_requests=6, hyperperiods=1,
            use_wire_handshake=False,
        )
        serial = run_validation_sweep(2, workers=1, **small)
        fanned = run_validation_sweep(2, workers=2, **small)
        assert serial == fanned
        assert all(report.holds for report in serial)

    def test_validation_sweep_rejects_telemetry(self):
        with pytest.raises(ConfigurationError):
            run_validation_sweep(2, telemetry=Telemetry())

    def test_validation_sweep_trial0_matches_single_run(self):
        from repro.experiments.validation import run_validation

        small = dict(
            n_masters=2, n_slaves=4, n_requests=6, hyperperiods=1,
            use_wire_handshake=False,
        )
        sweep = run_validation_sweep(1, workers=1, seed=55, **small)
        assert sweep == [run_validation(seed=55, **small)]


class TestTraceLanes:
    def test_decision_timestamps_distinct_across_runs(self):
        telemetry = Telemetry(TelemetryConfig(probe_cadence_ns=None))
        small_curve(1, telemetry=telemetry)
        decisions = telemetry.recorder.by_category("admission.decision")
        assert decisions, "sweep must trace admission decisions"
        timestamps = [r.time for r in decisions]
        assert len(set(timestamps)) == len(timestamps), (
            "every (trial, scheme, offered) event needs its own timestamp"
        )

    def test_decision_fields_carry_trial_and_scheme(self):
        telemetry = Telemetry(TelemetryConfig(probe_cadence_ns=None))
        small_curve(1, telemetry=telemetry)
        decisions = telemetry.recorder.by_category("admission.decision")
        lanes = {(r.fields["trial"], r.fields["scheme"]) for r in decisions}
        assert lanes == {
            (trial, scheme)
            for trial in range(3)
            for scheme in ("sdps", "adps")
        }


class TestCacheRetention:
    def test_sweep_retains_no_dead_caches(self):
        telemetry = Telemetry(TelemetryConfig(probe_cadence_ns=None))
        small_curve(1, telemetry=telemetry)
        # 3 trials x 2 schemes ran; every controller cache was retired
        assert telemetry._caches == []
        snap = telemetry.snapshot()
        checks = snap["feasibility_cache.checks"]["series"][0]["value"]
        assert checks > 0, "retired totals must still publish"
