"""Tests for EXP-X4 (service soak) and its CLI command."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.service_soak import run_service_soak


@pytest.fixture(scope="module")
def soak_result():
    # one shared short soak: the full EXP-X4 pipeline (reference run,
    # kill-and-resume, quiesce, invariant gates, single-switch service)
    return run_service_soak(
        duration_ns=40_000_000,
        seed=7,
        loss=0.2,
        kill_at_ns=18_000_000,
        checkpoint_every_ns=8_000_000,
    )


class TestRunServiceSoak:
    def test_soak_passes(self, soak_result):
        assert soak_result.ok, soak_result.summary()
        assert soak_result.fabric_ledger_identical
        assert soak_result.fabric_state_identical
        assert soak_result.views_converged
        assert soak_result.double_bookings == 0
        assert soak_result.leaked_reservations == 0
        assert soak_result.service_ledger_identical
        assert soak_result.service_state_identical

    def test_fabric_saw_loss(self, soak_result):
        assert soak_result.fabric_counters["retransmissions"] > 0

    def test_report_shapes(self, soak_result):
        summary = soak_result.summary()
        assert "PASS" in summary
        data = soak_result.to_json_dict()
        json.dumps(data)
        assert data["experiment"] == "EXP-X4"
        assert data["ok"] is True

    def test_kill_point_validation(self):
        with pytest.raises(ValueError):
            run_service_soak(duration_ns=1_000, kill_at_ns=2_000)
        with pytest.raises(ValueError):
            run_service_soak(
                duration_ns=10_000_000,
                kill_at_ns=1_000_000,
                checkpoint_every_ns=5_000_000,
            )


class TestServiceSoakCli:
    def test_cli_writes_reports(self, tmp_path):
        out = tmp_path / "telemetry"
        code = main(
            [
                "service-soak",
                "--duration-ns", "30000000",
                "--seed", "7",
                "--kill-at", "14000000",
                "--checkpoint-every-ns", "6000000",
                "--json", str(tmp_path / "soak.json"),
                "--telemetry-out", str(out),
            ]
        )
        assert code == 0
        report = json.loads((tmp_path / "soak.json").read_text())
        assert report["ok"] is True
        assert (out / "service_soak.json").exists()
        assert (out / "anomalies.jsonl").exists()
