"""Tests for the robustness experiments and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError
from repro.experiments.robustness import (
    run_loss_robustness,
    run_phase_robustness,
    run_signal_loss_robustness,
)


class TestPhaseRobustness:
    def test_random_phases_never_worse_than_critical_instant(self):
        report = run_phase_robustness(
            n_masters=3, n_slaves=6, n_requests=20, messages=4
        )
        assert report.holds
        assert report.critical_instant_is_worst
        assert report.channels_admitted > 0

    def test_invalid_messages(self):
        with pytest.raises(ConfigurationError):
            run_phase_robustness(messages=0)


class TestLossRobustness:
    def test_timeliness_preserved_completeness_degraded(self):
        report = run_loss_robustness(
            loss_rate=0.05, n_masters=3, n_slaves=6, n_requests=20,
            messages=8,
        )
        assert report.timeliness_preserved
        assert report.frames_delivered < report.frames_sent
        assert report.messages_completed < report.messages_expected
        assert report.frames_lost_on_wires > 0
        # delivery roughly tracks (1 - p): generous band for 1 seed
        assert 0.80 <= report.delivery_ratio <= 0.99

    def test_zero_loss_is_lossless(self):
        report = run_loss_robustness(
            loss_rate=0.0, n_masters=2, n_slaves=4, n_requests=10,
            messages=4,
        )
        assert report.delivery_ratio == 1.0
        assert report.messages_completed == report.messages_expected
        assert report.frames_lost_on_wires == 0

    def test_invalid_loss_rate(self):
        with pytest.raises(ConfigurationError):
            run_loss_robustness(loss_rate=1.0)


class TestSignalLossRobustness:
    def test_liveness_and_zero_leaks_at_20_percent(self):
        report = run_signal_loss_robustness(n_requests=16)
        assert report.ok
        assert report.timed_out == 0
        assert report.resolved == report.requests == 16
        assert report.leaked_reservations == 0
        assert report.pending_offers == 0
        # the run must actually have been stressed and have recovered
        assert report.signalling_drops > 0
        assert report.retries > 0
        assert report.torn_down > 0
        assert "OK" in report.summary()

    def test_deterministic(self):
        a = run_signal_loss_robustness(n_requests=12)
        b = run_signal_loss_robustness(n_requests=12)
        assert a == b

    def test_zero_loss_needs_no_recovery(self):
        report = run_signal_loss_robustness(loss_rate=0.0, n_requests=10)
        assert report.ok
        assert report.signalling_drops == 0
        assert report.retries == 0
        assert report.lease_reclaims == 0
        # the only duplicates are the teardown repeats themselves
        # (4 copies sent, 3 absorbed per torn-down channel)
        assert report.stale_absorbed == 3 * report.torn_down

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_signal_loss_robustness(loss_rate=1.0)
        with pytest.raises(ConfigurationError):
            run_signal_loss_robustness(teardown_fraction=1.5)


class TestCliParser:
    def test_all_commands_present(self):
        parser = build_parser()
        for command in (
            ["fig18-5"],
            ["validate"],
            ["coexist"],
            ["perf"],
            ["ablation", "deadline"],
            ["dps"],
            ["multiswitch"],
            ["robustness", "phase"],
        ):
            args = parser.parse_args(command)
            assert args.command == command[0]

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestCliExecution:
    def test_fig18_5_with_exports(self, tmp_path, capsys):
        csv_path = tmp_path / "fig.csv"
        json_path = tmp_path / "fig.json"
        status = main([
            "fig18-5", "--trials", "2", "--seed", "1",
            "--csv", str(csv_path), "--json", str(json_path),
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "Figure 18.5" in out
        assert csv_path.read_text().startswith("requested,sdps,adps")
        document = json.loads(json_path.read_text())
        assert document["metadata"]["trials"] == 2
        assert len(document["series"]["adps"]) == 10

    def test_validate_returns_zero_when_guarantee_holds(self, capsys):
        status = main([
            "validate", "--masters", "2", "--slaves", "4",
            "--requests", "10", "--hyperperiods", "1",
        ])
        assert status == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_validate_sdps_scheme(self, capsys):
        status = main([
            "validate", "--masters", "2", "--slaves", "4",
            "--requests", "10", "--hyperperiods", "1",
            "--scheme", "sdps",
        ])
        assert status == 0

    def test_coexist(self, capsys):
        status = main([
            "coexist", "--masters", "2", "--slaves", "4",
            "--requests", "8", "--messages", "3",
        ])
        assert status == 0
        assert "unharmed" in capsys.readouterr().out

    def test_perf(self, capsys):
        status = main(["perf", "--sizes", "4", "8"])
        assert status == 0
        assert "control points" in capsys.readouterr().out

    def test_ablation_axes(self, capsys, tmp_path):
        for axis in ("deadline", "capacity", "masters"):
            status = main([
                "ablation", axis, "--trials", "1",
                "--csv", str(tmp_path / f"{axis}.csv"),
            ])
            assert status == 0
            assert (tmp_path / f"{axis}.csv").exists()

    def test_ablation_symmetric(self, capsys):
        status = main(["ablation", "symmetric", "--trials", "1"])
        assert status == 0
        assert "all-to-all" in capsys.readouterr().out

    def test_dps(self, capsys):
        status = main(["dps", "--trials", "1"])
        assert status == 0
        assert "search" in capsys.readouterr().out

    def test_multiswitch(self, capsys):
        status = main(["multiswitch", "--trials", "1", "--switches", "2"])
        assert status == 0
        assert "2-switch" in capsys.readouterr().out

    def test_robustness_phase(self, capsys):
        status = main(["robustness", "phase"])
        assert status == 0
        assert "phase robustness" in capsys.readouterr().out

    def test_robustness_loss(self, capsys):
        status = main(["robustness", "loss", "--loss-rate", "0.02"])
        assert status == 0
        assert "loss robustness" in capsys.readouterr().out

    def test_robustness_signal_mode(self, capsys):
        status = main([
            "robustness", "signal", "--requests", "12",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "EXP-R2" in out
        assert "[OK]" in out

    def test_robustness_signal_loss_flag_implies_mode(self, capsys):
        status = main([
            "robustness", "--signal-loss", "0.2", "--requests", "12",
        ])
        assert status == 0
        assert "0 leaked reservations" in capsys.readouterr().out

    def test_robustness_signal_telemetry_bundle(self, tmp_path, capsys):
        from repro.obs import validate_bundle

        out_dir = tmp_path / "exp_r2"
        status = main([
            "robustness", "signal", "--requests", "12",
            "--telemetry-out", str(out_dir),
        ])
        assert status == 0
        assert validate_bundle(out_dir) == []
        metrics = json.loads((out_dir / "metrics.json").read_text())
        assert "signal.retries" in metrics
        assert "signal.stale_frames" in metrics

    def test_robustness_without_mode_is_usage_error(self, capsys):
        assert main(["robustness"]) == 2

    def test_audit_command(self, capsys):
        status = main([
            "audit", "--masters", "3", "--slaves", "6",
            "--requests", "30",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "admission history" in out
        assert "link occupancy" in out

    def test_validate_decompose(self, capsys):
        status = main([
            "validate", "--masters", "2", "--slaves", "4",
            "--requests", "8", "--hyperperiods", "1", "--decompose",
        ])
        assert status == 0
        out = capsys.readouterr().out
        assert "decomposition" in out
