"""Tests for the acceptance-curve machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.channel import ChannelSpec
from repro.core.partitioning import AsymmetricDPS, SymmetricDPS
from repro.errors import ConfigurationError
from repro.experiments.base import (
    _ANALYTIC_TICK_NS,
    TraceLane,
    acceptance_curve,
    run_requests,
)
from repro.obs import Telemetry, TelemetryConfig
from repro.traffic.patterns import ChannelRequest

SPEC = ChannelSpec(period=100, capacity=3, deadline=40)
NODES = ["m", "s0", "s1", "s2"]


def reqs(n, dest_cycle=("s0", "s1", "s2")):
    return [
        ChannelRequest("m", dest_cycle[i % len(dest_cycle)], SPEC)
        for i in range(n)
    ]


class TestRunRequests:
    def test_final_count_only(self):
        counts = run_requests(NODES, reqs(10), SymmetricDPS())
        assert counts == [6]  # SDPS uplink cap

    def test_checkpoints_are_running_counts(self):
        counts = run_requests(
            NODES, reqs(10), SymmetricDPS(), checkpoints=[2, 5, 10]
        )
        assert counts == [2, 5, 6]

    def test_checkpoint_zero(self):
        counts = run_requests(
            NODES, reqs(3), SymmetricDPS(), checkpoints=[0, 3]
        )
        assert counts == [0, 3]

    def test_duplicate_checkpoints_deduplicated(self):
        counts = run_requests(
            NODES, reqs(4), SymmetricDPS(), checkpoints=[2, 2, 4]
        )
        assert counts == [2, 4]

    def test_checkpoint_beyond_requests_rejected(self):
        with pytest.raises(ConfigurationError):
            run_requests(NODES, reqs(3), SymmetricDPS(), checkpoints=[4])

    def test_empty_requests(self):
        assert run_requests(NODES, [], SymmetricDPS(), checkpoints=[0]) == [0]


class TestTraceLane:
    def decisions(self, lane):
        telemetry = Telemetry(TelemetryConfig(probe_cadence_ns=None))
        run_requests(
            NODES, reqs(3), SymmetricDPS(), telemetry=telemetry, lane=lane
        )
        return telemetry.recorder.by_category("admission.decision")

    def test_lane_offsets_timestamps_and_tags_fields(self):
        lane = TraceLane(trial=2, scheme="sdps", offset_ns=7_000_000)
        records = self.decisions(lane)
        assert [r.time for r in records] == [
            lane.offset_ns + offered * _ANALYTIC_TICK_NS
            for offered in (1, 2, 3)
        ]
        for record in records:
            assert record.fields["trial"] == 2
            assert record.fields["scheme"] == "sdps"

    def test_without_lane_classic_timestamps(self):
        records = self.decisions(lane=None)
        assert [r.time for r in records] == [
            offered * _ANALYTIC_TICK_NS for offered in (1, 2, 3)
        ]
        for record in records:
            assert "trial" not in record.fields

    def test_distinct_lanes_never_collide(self):
        a = self.decisions(TraceLane(trial=0, scheme="sdps", offset_ns=0))
        b = self.decisions(
            TraceLane(
                trial=0, scheme="adps", offset_ns=4 * _ANALYTIC_TICK_NS
            )
        )
        assert not {r.time for r in a} & {r.time for r in b}


class TestAcceptanceCurve:
    def factory(self, count, rng):
        destinations = ["s0", "s1", "s2"]
        return [
            ChannelRequest(
                "m", destinations[int(rng.integers(0, 3))], SPEC
            )
            for _ in range(count)
        ]

    def test_shape_and_pairing(self):
        curve = acceptance_curve(
            node_names=NODES,
            request_factory=self.factory,
            schemes={"sdps": SymmetricDPS, "adps": AsymmetricDPS},
            requested_counts=[5, 10, 15],
            trials=4,
            seed=11,
        )
        assert curve.requested == (5, 10, 15)
        assert {c.scheme for c in curve.curves} == {"sdps", "adps"}
        sdps = curve.curve("sdps")
        assert len(sdps.means) == 3
        # monotone in requested count (more offers never fewer accepts)
        assert sdps.means[0] <= sdps.means[1] <= sdps.means[2]

    def test_reproducible(self):
        kwargs = dict(
            node_names=NODES,
            request_factory=self.factory,
            schemes={"sdps": SymmetricDPS},
            requested_counts=[10],
            trials=3,
            seed=5,
        )
        assert (
            acceptance_curve(**kwargs).curve("sdps").means
            == acceptance_curve(**kwargs).curve("sdps").means
        )

    def test_seed_changes_results_structurally_ok(self):
        a = acceptance_curve(
            node_names=NODES,
            request_factory=self.factory,
            schemes={"sdps": SymmetricDPS},
            requested_counts=[10],
            trials=3,
            seed=5,
        )
        b = acceptance_curve(
            node_names=NODES,
            request_factory=self.factory,
            schemes={"sdps": SymmetricDPS},
            requested_counts=[10],
            trials=3,
            seed=6,
        )
        # different seeds may coincide numerically, but objects are valid
        assert a.trials == b.trials == 3

    def test_unknown_scheme_lookup_raises(self):
        curve = acceptance_curve(
            node_names=NODES,
            request_factory=self.factory,
            schemes={"sdps": SymmetricDPS},
            requested_counts=[5],
            trials=2,
            seed=1,
        )
        with pytest.raises(ConfigurationError):
            curve.curve("nope")

    def test_bad_factory_length_detected(self):
        with pytest.raises(ConfigurationError, match="request factory"):
            acceptance_curve(
                node_names=NODES,
                request_factory=lambda count, rng: reqs(count - 1),
                schemes={"sdps": SymmetricDPS},
                requested_counts=[5],
                trials=1,
                seed=1,
            )

    def test_invalid_trials(self):
        with pytest.raises(ConfigurationError):
            acceptance_curve(
                node_names=NODES,
                request_factory=self.factory,
                schemes={"sdps": SymmetricDPS},
                requested_counts=[5],
                trials=0,
                seed=1,
            )

    def test_to_table_renders(self):
        curve = acceptance_curve(
            node_names=NODES,
            request_factory=self.factory,
            schemes={"sdps": SymmetricDPS},
            requested_counts=[5, 10],
            trials=2,
            seed=1,
        )
        text = curve.to_table("title")
        assert "title" in text and "sdps" in text


class TestBatchEngine:
    """run_requests' admit_many hot path vs the scalar reference loop.

    The batch engine must be invisible to every observer: counts, trace
    records and span streams are byte-identical, because admit_many
    guarantees stream equality and the burst boundaries align with the
    checkpoints the scalar loop reads at.
    """

    def observe(self, batch, checkpoints=(3, 7, 12), n=12):
        from repro.obs import span_jsonl_lines, trace_jsonl_lines

        telemetry = Telemetry(TelemetryConfig(
            spans=True, probe_cadence_ns=None,
        ))
        counts = run_requests(
            NODES, reqs(n), AsymmetricDPS(),
            checkpoints=None if checkpoints is None else list(checkpoints),
            telemetry=telemetry,
            lane=TraceLane(trial=0, scheme="adps"),
            batch=batch,
        )
        return (
            counts,
            "\n".join(trace_jsonl_lines(telemetry.recorder)),
            "\n".join(span_jsonl_lines(telemetry.spans)),
        )

    def test_batch_matches_scalar_byte_for_byte(self):
        assert self.observe(batch=True) == self.observe(batch=False)

    def test_batch_matches_scalar_without_checkpoints(self):
        assert self.observe(batch=True, checkpoints=None) == self.observe(
            batch=False, checkpoints=None
        )

    def test_batch_path_actually_calls_admit_many(self, monkeypatch):
        from repro.core.admission import AdmissionController

        calls = []
        original = AdmissionController.admit_many

        def spy(self, requests):
            calls.append(1)
            return original(self, requests)

        monkeypatch.setattr(AdmissionController, "admit_many", spy)
        run_requests(NODES, reqs(8), SymmetricDPS(), checkpoints=[4, 8])
        assert len(calls) == 2  # one burst per inter-checkpoint segment

    def test_scalar_path_never_calls_admit_many(self, monkeypatch):
        from repro.core.admission import AdmissionController

        def forbidden(self, requests):
            raise AssertionError("scalar path must not batch")

        monkeypatch.setattr(AdmissionController, "admit_many", forbidden)
        counts = run_requests(
            NODES, reqs(8), SymmetricDPS(), checkpoints=[4, 8], batch=False
        )
        assert len(counts) == 2

    def test_sweep_root_span_summarizes_run(self):
        telemetry = Telemetry(TelemetryConfig(
            spans=True, probe_cadence_ns=None,
        ))
        run_requests(
            NODES, reqs(10), SymmetricDPS(), checkpoints=[5, 10],
            telemetry=telemetry, lane=TraceLane(trial=2, scheme="sdps"),
        )
        roots = [s for s in telemetry.spans if s.name == "sweep.run"]
        assert len(roots) == 1
        root = roots[0]
        assert root.subject == "trial2:sdps"
        assert root.fields["offered"] == 10
        assert root.fields["trial"] == 2
        segments = [s for s in telemetry.spans if s.name == "admission"]
        assert len(segments) == 2  # one per checkpoint segment
        assert all(s.parent_id == root.span_id for s in segments)
        assert sum(s.fields["offered"] for s in segments) == 10
        assert segments[-1].fields["accepted_so_far"] == root.fields[
            "accepted"
        ]
