"""Tier-1 regression: Figure 18.5 against the checked-in results CSV.

``results/fig18_5.csv`` is the committed reproduction of the paper's
headline figure (trials=20, seed=2004). This test re-runs the exact
experiment at three checkpoints -- 20 requested channels (everything
admitted), 100 (SDPS saturated, ADPS climbing) and 200 (both
saturated) -- and requires the SDPS and ADPS acceptance means to match
the CSV to the digit.

It can afford full fidelity because admission is incremental: the
acceptance counts at a checkpoint depend only on the first
``checkpoint`` requests of each trial's sequence, and
:func:`repro.experiments.base.acceptance_curve` draws one
``max(requested_counts)``-long sequence per trial from
``RngRegistry(seed).fork(trial)``. Running only the three checkpoints
therefore reproduces the corresponding rows of the full 10-point curve
exactly, in a fraction of the time.

If this test fails, either the admission path changed behaviour (run
``repro oracle`` to find out whether it changed *correctly*) or the
workload drawing changed; both invalidate every checked-in result and
EXPERIMENTS.md, so fix the code or regenerate the artifacts -- never
loosen the comparison.
"""

from __future__ import annotations

import csv
from pathlib import Path

import pytest

from repro.experiments.fig18_5 import Fig185Config, run_fig18_5

RESULTS_CSV = Path(__file__).resolve().parents[2] / "results" / "fig18_5.csv"

#: The checkpoints this regression replays, and the CSV's provenance.
CHECKPOINTS = (20, 100, 200)
RECORDED_TRIALS = 20
RECORDED_SEED = 2004


def _recorded_rows() -> dict[int, dict[str, float]]:
    with RESULTS_CSV.open(newline="") as handle:
        reader = csv.DictReader(handle)
        return {
            int(row["requested"]): {
                "sdps": float(row["sdps"]),
                "adps": float(row["adps"]),
            }
            for row in reader
        }


@pytest.fixture(scope="module")
def replayed():
    result = run_fig18_5(
        Fig185Config(
            requested_counts=CHECKPOINTS,
            trials=RECORDED_TRIALS,
            seed=RECORDED_SEED,
        )
    )
    return {
        scheme: dict(zip(CHECKPOINTS, result.curve.curve(scheme).means))
        for scheme in ("sdps", "adps")
    }


def test_results_csv_is_present_and_covers_the_checkpoints():
    recorded = _recorded_rows()
    for checkpoint in CHECKPOINTS:
        assert checkpoint in recorded, (
            f"results/fig18_5.csv lost its row for requested={checkpoint}"
        )


@pytest.mark.parametrize("checkpoint", CHECKPOINTS)
@pytest.mark.parametrize("scheme", ["sdps", "adps"])
def test_acceptance_matches_the_checked_in_csv(replayed, scheme, checkpoint):
    recorded = _recorded_rows()[checkpoint][scheme]
    observed = replayed[scheme][checkpoint]
    assert observed == pytest.approx(recorded, abs=1e-9), (
        f"{scheme} at {checkpoint} requested: re-run gives {observed}, "
        f"results/fig18_5.csv records {recorded} (trials="
        f"{RECORDED_TRIALS}, seed={RECORDED_SEED})"
    )


def test_recorded_saturation_shape_still_holds():
    """The paper's qualitative claims, read straight off the artifact."""
    recorded = _recorded_rows()
    assert recorded[200]["sdps"] == pytest.approx(60.0, abs=1.5)
    assert 100.0 <= recorded[200]["adps"] <= 125.0
    for checkpoint, row in recorded.items():
        assert row["adps"] >= row["sdps"] - 1.0, checkpoint
