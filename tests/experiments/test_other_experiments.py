"""Tests for the ablation, validation, coexistence, perf and multiswitch
experiments (small configurations -- the benchmarks run the full ones)."""

from __future__ import annotations

import pytest

from repro.core.partitioning import SymmetricDPS
from repro.experiments.ablations import (
    capacity_sweep,
    deadline_sweep,
    master_ratio_sweep,
    symmetric_traffic_curve,
)
from repro.experiments.coexistence import run_coexistence
from repro.experiments.dps_comparison import run_dps_comparison
from repro.experiments.multiswitch_exp import (
    build_master_slave_fabric,
    run_multiswitch_comparison,
)
from repro.experiments.perf import feasibility_cost_sweep, make_link_tasks
from repro.experiments.validation import run_validation
from repro.sim.rng import RngRegistry
from repro.traffic.spec import FixedSpecSampler


class TestDeadlineSweep:
    def test_advantage_shrinks_with_loose_deadlines(self):
        points = deadline_sweep(
            deadlines=(30, 60, 100), requests=120, trials=3
        )
        assert points[0].advantage > points[-1].advantage
        # at d=100=P both schemes are utilization-limited
        assert points[-1].advantage == pytest.approx(1.0, abs=0.15)

    def test_values_recorded(self):
        points = deadline_sweep(deadlines=(40,), requests=60, trials=2)
        assert points[0].value == 40
        assert points[0].sdps_mean > 0


class TestCapacitySweep:
    def test_c1_gives_both_schemes_more_room(self):
        points = capacity_sweep(capacities=(1, 6), requests=120, trials=2)
        assert points[0].sdps_mean > points[1].sdps_mean

    def test_all_points_have_adps_at_least_sdps(self):
        for point in capacity_sweep(capacities=(2, 4), requests=100, trials=2):
            assert point.adps_mean >= point.sdps_mean - 1.0


class TestMasterRatioSweep:
    def test_advantage_decreases_toward_balance(self):
        points = master_ratio_sweep(
            master_counts=(5, 30), total_nodes=60, requests=150, trials=3
        )
        assert points[0].advantage > points[-1].advantage


class TestSymmetricTraffic:
    def test_adps_matches_sdps_without_bottleneck(self):
        curve = symmetric_traffic_curve(
            n_nodes=30, requested_counts=(40, 80), trials=3
        )
        sdps = curve.curve("sdps").means
        adps = curve.curve("adps").means
        for s, a in zip(sdps, adps):
            assert a == pytest.approx(s, rel=0.1)


class TestValidationExperiment:
    def test_guarantee_holds_adps(self):
        report = run_validation(
            n_masters=3, n_slaves=6, n_requests=30, hyperperiods=2
        )
        assert report.holds
        assert report.end_to_end_misses == 0
        assert report.per_link_misses == 0
        assert report.channels_admitted > 0
        assert report.messages_completed > 0
        assert 0 < report.worst_delay_fraction <= 1.0

    def test_guarantee_holds_sdps(self):
        report = run_validation(
            n_masters=3,
            n_slaves=6,
            n_requests=30,
            hyperperiods=2,
            dps=SymmetricDPS(),
        )
        assert report.holds

    def test_analytical_establishment_path(self):
        report = run_validation(
            n_masters=2,
            n_slaves=4,
            n_requests=15,
            hyperperiods=1,
            use_wire_handshake=False,
        )
        assert report.holds

    def test_summary_text(self):
        report = run_validation(
            n_masters=2, n_slaves=4, n_requests=10, hyperperiods=1
        )
        assert "HOLDS" in report.summary()


class TestCoexistenceExperiment:
    def test_rt_unharmed_and_be_flows(self):
        report = run_coexistence(
            n_masters=2, n_slaves=6, n_requests=16, messages=4
        )
        assert report.rt_unharmed
        assert report.be_frames_delivered > 0
        assert 0 < report.be_goodput_fraction <= 1.0
        # background load may inflate delays only within the blocking
        # allowance already included in T_latency
        assert report.loaded_worst_delay_ns >= report.clean_worst_delay_ns

    def test_summary_text(self):
        report = run_coexistence(
            n_masters=2, n_slaves=4, n_requests=8, messages=3
        )
        assert "unharmed" in report.summary()


class TestPerfExperiment:
    def test_fast_never_checks_more_points(self):
        for point in feasibility_cost_sweep(sizes=(4, 8, 12)):
            if point.naive_points_checked:
                assert point.fast_points_checked <= point.naive_points_checked

    def test_homogeneous_regime(self):
        points = feasibility_cost_sweep(sizes=(4, 6), heterogeneous=False)
        assert all(p.feasible is not None for p in points)

    def test_make_link_tasks_respects_floor(self):
        rng = RngRegistry(1).stream("t")
        tasks = make_link_tasks(
            20, FixedSpecSampler.paper_default(), rng, deadline_fraction=0.01
        )
        assert all(t.deadline >= t.capacity for t in tasks)


class TestMultiswitchExperiment:
    def test_fabric_builder_shape(self):
        fabric, masters, slaves = build_master_slave_fabric(3, 4, 9)
        assert len(masters) == 4 and len(slaves) == 9
        assert fabric.hop_count("m0", "s0") == 2  # s0 on sw0
        assert fabric.hop_count("m0", "s2") == 4  # s2 on sw2

    def test_proportional_advantage_on_chain(self):
        points = run_multiswitch_comparison(
            n_switches=2,
            n_masters=5,
            n_slaves=10,
            requested_counts=(40, 120),
            trials=3,
        )
        final = points[-1]
        assert final.proportional_mean >= final.symmetric_mean


class TestDpsComparison:
    def test_ranking_on_paper_workload(self):
        curve = run_dps_comparison(
            requested_counts=(150,), trials=3
        )
        means = {c.scheme: c.means[-1] for c in curve.curves}
        assert means["adps"] > means["sdps"] * 1.4
        assert means["search"] >= means["adps"] - 2.0
        assert means["udps"] == pytest.approx(means["adps"], abs=2.0)


class TestFabricValidation:
    def test_guarantee_holds_on_chain(self):
        from repro.experiments.multiswitch_exp import run_fabric_validation

        report = run_fabric_validation(
            n_switches=2, n_masters=2, n_slaves=6, n_requests=16,
            messages=2,
        )
        assert report.holds
        assert report.channels_admitted > 0
        assert report.messages_completed > 0
        assert report.max_hop_count >= 2

    def test_reproducible(self):
        from repro.experiments.multiswitch_exp import run_fabric_validation

        a = run_fabric_validation(
            n_switches=2, n_masters=2, n_slaves=4, n_requests=10,
            messages=2, seed=5,
        )
        b = run_fabric_validation(
            n_switches=2, n_masters=2, n_slaves=4, n_requests=10,
            messages=2, seed=5,
        )
        assert a == b


class TestHarmonicWorkloads:
    def test_validation_with_harmonic_periods(self):
        """Mixed harmonic periods (PLC-style cyclic IO): the guarantee
        must hold across the longer hyperperiod too."""
        from repro.experiments.validation import run_validation
        from repro.traffic.spec import HarmonicSpecSampler

        report = run_validation(
            n_masters=3,
            n_slaves=6,
            n_requests=24,
            hyperperiods=1,
            sampler=HarmonicSpecSampler(
                periods=(50, 100, 200), capacity_range=(1, 3),
                deadline_fraction=0.4,
            ),
            use_wire_handshake=False,
        )
        assert report.holds
        assert report.channels_admitted > 0

    def test_speed_scaling_shape(self):
        from repro.experiments.ablations import speed_scaling

        points = speed_scaling(speeds_mbps=(100,))
        assert len(points) == 1
        assert points[0].deadline_misses == 0
        assert points[0].worst_delay_slots > 0


class TestBeLatencyVsRtLoad:
    def test_shape(self):
        from repro.experiments.coexistence import be_latency_vs_rt_load

        points = be_latency_vs_rt_load(
            rt_channel_counts=(0, 16), n_masters=2, n_slaves=6,
            messages=4,
        )
        assert len(points) == 2
        empty, loaded = points
        assert empty.rt_channels == 0
        assert loaded.rt_channels > 0
        assert all(p.rt_misses == 0 for p in points)
        assert loaded.be_goodput_bps < empty.be_goodput_bps
        assert loaded.rt_reserved_fraction > 0


class TestDecomposition:
    def test_budgets_respected_per_hop(self):
        from repro.experiments.validation import run_decomposition

        rows = run_decomposition(
            n_masters=2, n_slaves=6, n_requests=16, messages=3
        )
        assert rows
        for row in rows:
            assert row.uplink_within_budget
            assert row.total_within_budget
            assert row.uplink_budget_slots < row.total_budget_slots

    def test_adps_budgets_are_actually_used(self):
        """On a loaded uplink, some channel's worst uplink response must
        land close to its d_iu budget -- proof the partition is not
        vacuous headroom."""
        from repro.experiments.validation import run_decomposition

        rows = run_decomposition(
            n_masters=2, n_slaves=10, n_requests=30, messages=3
        )
        tightest = max(
            rows, key=lambda r: r.uplink_worst_slots / r.uplink_budget_slots
        )
        assert tightest.uplink_worst_slots >= 0.8 * tightest.uplink_budget_slots
