"""Tests for EXP-X3: the graph-fabric acceptance sweep and its CLI."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.fabric_sweep import (
    FabricSweepConfig,
    build_fabric_topology,
    run_fabric_sweep,
)

#: Reduced-scale config all the unit tests share (the CI smoke scale).
SMOKE = dict(topology="fat-tree:4", hosts_per_edge=2, requests=60,
             checkpoints=5, trials=2)


class TestTopologyParser:
    def test_fat_tree_default_scales_past_100_nodes(self):
        graph = build_fabric_topology("fat-tree:4")
        assert len(graph.nodes) >= 100

    def test_fat_tree_k8_default_density(self):
        graph = build_fabric_topology("fat-tree:8")
        assert len(graph.nodes) == 128
        assert len(graph.switches) == 80

    def test_forms(self):
        assert len(build_fabric_topology("chain:3").switches) == 3
        assert len(build_fabric_topology("tree:2:3").switches) == 4
        assert len(build_fabric_topology("star:7").nodes) == 7
        assert len(
            build_fabric_topology("chain:2", hosts_per_edge=5).nodes
        ) == 10

    def test_rejects_garbage(self):
        for spec in ("ring:4", "fat-tree", "fat-tree:4:4", "chain:x",
                     "fat-tree:3", "star:0"):
            with pytest.raises(ConfigurationError):
                build_fabric_topology(spec)


class TestRunFabricSweep:
    def test_curve_shape_and_monotonicity(self):
        result = run_fabric_sweep(FabricSweepConfig(**SMOKE))
        assert result.topology == "fat-tree:4"
        assert result.n_nodes == 16
        assert result.n_switches == 20
        assert result.max_hops == 6
        assert len(result.points) == 5
        accepted = [p.proportional_mean for p in result.points]
        assert accepted == sorted(accepted)  # acceptance never shrinks
        assert all(
            p.proportional_mean <= p.requested for p in result.points
        )

    def test_proportional_at_least_matches_symmetric_at_saturation(self):
        result = run_fabric_sweep(FabricSweepConfig(**SMOKE))
        last = result.points[-1]
        assert last.proportional_mean >= last.symmetric_mean

    def test_workers_byte_identical(self):
        serial = run_fabric_sweep(FabricSweepConfig(**SMOKE, workers=1))
        pooled = run_fabric_sweep(FabricSweepConfig(**SMOKE, workers=2))
        assert serial == pooled

    def test_routing_seed_changes_paths_not_determinism(self):
        base = run_fabric_sweep(FabricSweepConfig(**SMOKE))
        again = run_fabric_sweep(FabricSweepConfig(**SMOKE))
        assert base == again
        reseeded = run_fabric_sweep(
            FabricSweepConfig(**SMOKE, routing_seed=5)
        )
        assert reseeded.points is not None  # valid result either way

    def test_cross_check_runs_clean(self):
        result = run_fabric_sweep(
            FabricSweepConfig(**SMOKE, cross_check=True)
        )
        assert result.cross_checks
        assert result.cross_check_ok
        assert all(c.links_checked > 0 for c in result.cross_checks)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            run_fabric_sweep(FabricSweepConfig(trials=0))
        with pytest.raises(ConfigurationError):
            run_fabric_sweep(FabricSweepConfig(topology="star:1"))
        with pytest.raises(ConfigurationError):
            run_fabric_sweep(
                FabricSweepConfig(**{**SMOKE, "requests": 0})
            )


class TestFabricSweepCli:
    ARGS = ["fabric-sweep", "--topology", "fat-tree:4",
            "--hosts-per-edge", "2", "--requests", "60",
            "--checkpoints", "5", "--trials", "2"]

    def test_table_output(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "EXP-X3" in out
        assert "mprop" in out

    def test_csv_byte_identical_across_workers(self, tmp_path, capsys):
        serial = tmp_path / "serial.csv"
        pooled = tmp_path / "pooled.csv"
        assert main(self.ARGS + ["--csv", str(serial)]) == 0
        assert main(
            self.ARGS + ["--workers", "2", "--csv", str(pooled)]
        ) == 0
        assert serial.read_bytes() == pooled.read_bytes()

    def test_cross_check_exit_zero(self, capsys):
        assert main(self.ARGS + ["--cross-check"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_bad_topology_exits_2(self, capsys):
        assert main(["fabric-sweep", "--topology", "ring:4"]) == 2
        assert "unknown topology" in capsys.readouterr().err
