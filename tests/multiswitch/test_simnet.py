"""Tests for the fabric data plane (multi-hop EDF simulation)."""

from __future__ import annotations

import pytest

from repro.core.channel import ChannelSpec
from repro.errors import SimulationError, UnknownChannelError
from repro.multiswitch.fabric import SwitchFabric
from repro.multiswitch.partitioning import (
    MultiHopProportional,
    MultiHopSymmetric,
)
from repro.multiswitch.simnet import build_fabric_network

SPEC = ChannelSpec(period=100, capacity=3, deadline=60)


def chain_network(n_switches=3, nodes_per_switch=2, dps=None):
    fabric = SwitchFabric.chain(n_switches, nodes_per_switch)
    return build_fabric_network(fabric, dps=dps)


class TestWiring:
    def test_every_node_has_an_uplink(self):
        net = chain_network()
        for node in net.nodes.values():
            assert node.uplink is not None

    def test_switch_port_counts(self):
        net = chain_network(3, 2)
        # edge switches: 2 stations + 1 trunk; middle: 2 stations + 2 trunks
        assert len(net.switches["sw0"].ports) == 3
        assert len(net.switches["sw1"].ports) == 4
        assert len(net.switches["sw2"].ports) == 3

    def test_t_latency_scales_with_max_hops(self):
        short = chain_network(1, 2)
        long = chain_network(4, 2)
        assert long.metrics.t_latency_ns > short.metrics.t_latency_ns


class TestEstablishment:
    def test_accept_installs_grant_and_routes(self):
        net = chain_network()
        channel = net.establish("n0_0", "n2_0", SPEC)
        assert channel is not None
        assert channel.hop_count == 4
        # uplink grant on the source node
        grants = net.nodes["n0_0"].rt_layer.grants
        assert channel.channel_id in grants
        # forwarding installed on all three switches along the path
        for switch_name in ("sw0", "sw1", "sw2"):
            switch = net.switches[switch_name]
            assert channel.channel_id in switch._forwarding  # noqa: SLF001

    def test_reject_returns_none(self):
        net = chain_network()
        bad = ChannelSpec(period=100, capacity=3, deadline=8)  # < 4 hops * 3
        assert net.establish("n0_0", "n2_0", bad) is None

    def test_release_clears_routes(self):
        net = chain_network()
        channel = net.establish("n0_0", "n2_0", SPEC)
        net.release(channel.channel_id)
        assert net.channels == []
        for switch in net.switches.values():
            assert channel.channel_id not in switch._forwarding  # noqa: SLF001

    def test_cumulative_deadlines_increase_along_path(self):
        net = chain_network()
        channel = net.establish("n0_0", "n2_0", SPEC)
        offsets = []
        for link in channel.decision.links[1:]:
            entry = net.switches[link.tail]._forwarding[  # noqa: SLF001
                channel.channel_id
            ]
            offsets.append(entry.cumulative_deadline_slots)
        assert offsets == sorted(offsets)
        assert offsets[-1] == SPEC.deadline  # last hop = end-to-end deadline
        grant = net.nodes["n0_0"].rt_layer.grants[channel.channel_id]
        assert grant.uplink_deadline_slots == channel.decision.parts[0]


class TestDataPlane:
    @pytest.mark.parametrize(
        "dps", [MultiHopSymmetric(), MultiHopProportional()]
    )
    def test_no_misses_at_critical_instant(self, dps):
        net = chain_network(3, 3, dps=dps)
        established = 0
        for i in range(3):
            for j in range(3):
                if net.establish(f"n0_{i}", f"n2_{j}", SPEC) is not None:
                    established += 1
        assert established > 0
        net.start_all_sources(stop_after_messages=3)
        net.sim.run()
        assert net.metrics.total_deadline_misses == 0
        assert net.per_link_misses() == 0
        assert net.metrics.total_rt_messages == 3 * established

    def test_local_and_cross_traffic_coexist(self):
        net = chain_network(2, 2)
        local = net.establish("n0_0", "n0_1", SPEC)
        cross = net.establish("n1_0", "n0_0", SPEC)
        assert local is not None and cross is not None
        assert local.hop_count == 2
        assert cross.hop_count == 3
        net.start_all_sources(stop_after_messages=2)
        net.sim.run()
        assert net.metrics.total_deadline_misses == 0
        assert net.metrics.total_rt_messages == 4

    def test_trunk_contention_still_meets_deadlines(self):
        """Many channels share one trunk at the critical instant."""
        net = chain_network(2, 4)
        established = 0
        for i in range(4):
            for j in range(4):
                if net.establish(f"n0_{i}", f"n1_{j}", SPEC) is not None:
                    established += 1
        assert established >= 4  # the trunk is the bottleneck
        net.start_all_sources(stop_after_messages=2)
        net.sim.run()
        assert net.metrics.total_deadline_misses == 0
        trunk = net.switches["sw0"].ports["sw1"]
        assert trunk.stats.rt_transmitted == established * 3 * 2

    def test_frames_to_unrouted_channel_dropped(self):
        net = chain_network()
        channel = net.establish("n0_0", "n2_0", SPEC)
        net.nodes["n0_0"].send_message(channel.channel_id)
        # remove the route mid-flight at sw1
        net.switches["sw1"].remove_route(channel.channel_id)
        net.sim.run()
        assert net.switches["sw1"].frames_dropped == 3

    def test_send_on_unknown_channel_raises(self):
        net = chain_network()
        with pytest.raises(UnknownChannelError):
            net.nodes["n0_0"].start_periodic_source(99)

    def test_install_route_to_unknown_neighbour_rejected(self):
        net = chain_network()
        with pytest.raises(SimulationError):
            net.switches["sw0"].install_route(1, "ghost", 10)


class TestFabricHelpers:
    def test_attachment(self):
        fabric = SwitchFabric.chain(2, 2)
        assert fabric.attachment("n0_0") == "sw0"
        assert fabric.attachment("n1_1") == "sw1"
        from repro.errors import RoutingError

        with pytest.raises(RoutingError):
            fabric.attachment("sw0")

    def test_switch_adjacencies(self):
        fabric = SwitchFabric.chain(3, 1)
        assert fabric.switch_adjacencies() == [("sw0", "sw1"), ("sw1", "sw2")]
