"""Tests for the graph-based fabric builder and multipath routing."""

from __future__ import annotations

import zlib

import pytest

from repro.errors import RoutingError, TopologyError
from repro.multiswitch import (
    FabricGraph,
    MultiSwitchAdmission,
    MultiHopProportional,
    SwitchFabric,
    address_pass,
    admission_pass,
    build_chain_graph,
    build_fat_tree,
    build_star_graph,
    build_tree_graph,
    wiring_pass,
)
from repro.multiswitch.graph import IP_BASE, MAC_BASE


class TestFabricGraphConstruction:
    def test_cycles_are_allowed(self):
        graph = FabricGraph()
        for name in ("a", "b", "c"):
            graph.add_switch(name)
        graph.connect_switches("a", "b")
        graph.connect_switches("b", "c")
        graph.connect_switches("c", "a")  # triangle: fine on a graph
        graph.add_node("n0", "a")
        graph.add_node("n1", "b")
        graph.validate_connected()
        assert not graph.is_tree()
        assert graph.hop_count("n0", "n1") == 3

    def test_switch_fabric_still_rejects_cycles(self):
        fabric = SwitchFabric()
        for name in ("a", "b", "c"):
            fabric.add_switch(name)
        fabric.connect_switches("a", "b")
        fabric.connect_switches("b", "c")
        with pytest.raises(TopologyError, match="cycle"):
            fabric.connect_switches("c", "a")

    def test_duplicate_and_empty_names_rejected(self):
        graph = FabricGraph()
        graph.add_switch("sw")
        with pytest.raises(TopologyError, match="already in the fabric"):
            graph.add_switch("sw")
        with pytest.raises(TopologyError, match="non-empty"):
            graph.add_switch("")
        graph.add_node("n", "sw")
        with pytest.raises(TopologyError, match="already in the fabric"):
            graph.add_switch("n")

    def test_parallel_cables_rejected(self):
        graph = FabricGraph()
        graph.add_switch("a")
        graph.add_switch("b")
        graph.connect_switches("a", "b")
        with pytest.raises(TopologyError, match="already cabled"):
            graph.connect_switches("a", "b")
        with pytest.raises(TopologyError, match="itself"):
            graph.connect_switches("a", "a")

    def test_validate_connected_errors(self):
        with pytest.raises(TopologyError, match="empty"):
            FabricGraph().validate_connected()
        graph = FabricGraph()
        graph.add_switch("a")
        graph.add_switch("b")  # never cabled
        with pytest.raises(TopologyError, match="not connected"):
            graph.validate_connected()

    def test_routing_endpoint_validation(self):
        graph = build_star_graph(["n0", "n1"])
        with pytest.raises(RoutingError, match="not an end node"):
            graph.path_links("sw0", "n0")
        with pytest.raises(RoutingError, match="must differ"):
            graph.path_links("n0", "n0")


class TestFatTree:
    def test_k4_shape(self):
        graph = build_fat_tree(4)
        assert len(graph.switches) == 20  # 4 cores + 8 agg + 8 edge
        assert len(graph.nodes) == 16  # density k/2 = 2 per edge switch
        assert graph.edge_count == 48  # 16 core-agg + 16 agg-edge + 16 host

    def test_k8_shape(self):
        graph = build_fat_tree(8)
        assert len(graph.switches) == 80  # 16 cores + 32 agg + 32 edge
        assert len(graph.nodes) == 128  # density 4 per edge switch
        graph.validate_connected()

    def test_density_override(self):
        graph = build_fat_tree(4, hosts_per_edge=13)
        assert len(graph.nodes) == 104  # the >= 100-node sweep scale

    def test_invalid_arity_rejected(self):
        with pytest.raises(TopologyError, match="even"):
            build_fat_tree(3)
        with pytest.raises(TopologyError, match="even"):
            build_fat_tree(0)
        with pytest.raises(TopologyError, match="hosts_per_edge"):
            build_fat_tree(4, hosts_per_edge=0)

    def test_path_lengths(self):
        graph = build_fat_tree(4)
        # same edge switch: host -> edge -> host
        assert graph.hop_count("h0_0_0", "h0_0_1") == 2
        # same pod, different edge: via one aggregation switch
        assert graph.hop_count("h0_0_0", "h0_1_0") == 4
        # different pods: up to a core and down
        assert graph.hop_count("h0_0_0", "h3_1_1") == 6

    def test_equal_cost_fan(self):
        graph = build_fat_tree(4)
        # inter-pod: (k/2)^2 = 4 shortest paths; intra-pod: k/2 = 2.
        assert len(graph.equal_cost_paths("h0_0_0", "h3_1_1")) == 4
        assert len(graph.equal_cost_paths("h0_0_0", "h0_1_0")) == 2
        assert len(graph.equal_cost_paths("h0_0_0", "h0_0_1")) == 1

    def test_paths_are_valley_free(self):
        """Shortest fat-tree paths never go down then up (feed-forward)."""
        graph = build_fat_tree(4)

        def layer(vertex: str) -> int:
            if vertex.startswith("core"):
                return 3
            if vertex.startswith("agg"):
                return 2
            if vertex.startswith("edge"):
                return 1
            return 0

        for path in graph.equal_cost_paths("h0_0_0", "h3_1_1"):
            layers = [layer(v) for v in path]
            peak = layers.index(max(layers))
            assert layers[:peak + 1] == sorted(layers[:peak + 1])
            assert layers[peak:] == sorted(layers[peak:], reverse=True)


class TestDeterministicMultipath:
    def test_selection_is_the_seeded_crc32_tie_break(self):
        graph = build_fat_tree(4, routing_seed=7)
        source, destination = "h0_0_0", "h3_1_1"
        paths = graph.equal_cost_paths(source, destination)
        digest = zlib.crc32(f"7|{source}->{destination}".encode())
        chosen = paths[digest % len(paths)]
        links = graph.path_links(source, destination)
        assert tuple(l.tail for l in links) == chosen[:-1]
        assert links[-1].head == chosen[-1]

    def test_same_seed_same_paths(self):
        a = build_fat_tree(4, routing_seed=3)
        b = build_fat_tree(4, routing_seed=3)
        for pair in [("h0_0_0", "h3_1_1"), ("h1_0_0", "h2_1_0")]:
            assert a.path_links(*pair) == b.path_links(*pair)

    def test_seeds_spread_over_the_fan(self):
        source, destination = "h0_0_0", "h3_1_1"
        chosen = {
            tuple(build_fat_tree(4, routing_seed=seed).path_links(
                source, destination
            ))
            for seed in range(8)
        }
        assert len(chosen) > 1  # the tie-break actually varies by seed

    def test_directions_route_independently(self):
        graph = build_fat_tree(4)
        forward = graph.path_links("h0_0_0", "h3_1_1")
        backward = graph.path_links("h3_1_1", "h0_0_0")
        # both directions are shortest paths; the tie-break hashes the
        # ordered pair, so the reverse direction is chosen independently
        assert len(forward) == len(backward) == 6
        assert forward[0].tail == "h0_0_0"
        assert backward[0].tail == "h3_1_1"

    def test_tree_paths_unaffected_by_seed(self):
        a = build_chain_graph(3, 2, routing_seed=0)
        b = build_chain_graph(3, 2, routing_seed=99)
        assert a.path_links("n0_0", "n2_1") == b.path_links("n0_0", "n2_1")


class TestBuilders:
    def test_chain_graph_matches_switch_fabric_chain(self):
        graph = build_chain_graph(2, 3)
        fabric = SwitchFabric.chain(2, 3)
        assert graph.switches == fabric.switches
        assert graph.nodes == fabric.nodes
        assert graph.switch_adjacencies() == fabric.switch_adjacencies()
        assert graph.path_links("n0_0", "n1_2") == fabric.path_links(
            "n0_0", "n1_2"
        )

    def test_tree_graph_shape(self):
        graph = build_tree_graph(3, 2, 2)
        assert len(graph.switches) == 7  # 1 + 2 + 4
        assert len(graph.nodes) == 8  # 4 leaves x 2 hosts
        graph.validate_connected()
        assert graph.is_tree()
        assert graph.hop_count("n0_0", "n3_1") == 6  # across the root

    def test_star_graph_delegation_preserves_addresses(self):
        from repro.network.topology import build_star

        names = ["alpha", "beta", "gamma"]
        graph = build_star_graph(names)
        addresses = address_pass(graph)
        net = build_star(names)
        for index, name in enumerate(names):
            assert addresses[name].mac == MAC_BASE + index + 1
            assert addresses[name].ip == IP_BASE + index
            assert net.nodes[name].mac == addresses[name].mac
            assert net.nodes[name].ip == addresses[name].ip

    def test_builder_validation(self):
        with pytest.raises(TopologyError):
            build_chain_graph(0, 1)
        with pytest.raises(TopologyError):
            build_tree_graph(1, 0, 1)


class TestPasses:
    def test_address_pass_uses_insertion_order(self):
        graph = FabricGraph()
        graph.add_switch("sw")
        for name in ("zz", "aa", "mm"):  # deliberately unsorted
            graph.add_node(name, "sw")
        addresses = address_pass(graph)
        assert [a.index for a in addresses.values()] is not None
        assert addresses["zz"].index == 0
        assert addresses["aa"].index == 1
        assert addresses["mm"].index == 2

    def test_admission_pass_places_per_link_cache(self):
        graph = build_fat_tree(4)
        admission = admission_pass(graph)
        assert admission.uses_cache
        assert isinstance(admission, MultiSwitchAdmission)
        assert admission.fabric is graph

    def test_wiring_pass_builds_the_data_plane(self):
        graph = build_chain_graph(2, 2)
        net = wiring_pass(graph)
        assert set(net.nodes) == set(graph.nodes)
        assert set(net.switches) == set(graph.switches)


class TestFatTreeAdmission:
    def test_admission_along_multihop_path(self, paper_spec):
        graph = build_fat_tree(4)
        admission = MultiSwitchAdmission(
            fabric=graph, dps=MultiHopProportional()
        )
        decision = admission.request("h0_0_0", "h3_1_1", paper_spec)
        assert decision.accepted
        assert len(decision.links) == 6
        assert sum(decision.parts) == paper_spec.deadline
        for link in decision.links:
            assert admission.link_load(link) == 1

    def test_cache_parity_on_the_fat_tree(self, paper_spec):
        pairs = [
            ("h0_0_0", "h3_1_1"), ("h1_0_0", "h2_1_0"),
            ("h0_0_0", "h0_1_0"), ("h3_1_1", "h0_0_0"),
        ]
        cached = MultiSwitchAdmission(
            fabric=build_fat_tree(4), dps=MultiHopProportional(),
            use_cache=True,
        )
        naive = MultiSwitchAdmission(
            fabric=build_fat_tree(4), dps=MultiHopProportional(),
            use_cache=False,
        )
        for source, destination in pairs * 8:
            got = cached.request(source, destination, paper_spec)
            want = naive.request(source, destination, paper_spec)
            assert got.accepted == want.accepted
            assert got.parts == want.parts
            assert got.links == want.links
