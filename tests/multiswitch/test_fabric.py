"""Tests for the switch-tree fabric and routing."""

from __future__ import annotations

import pytest

from repro.errors import RoutingError, TopologyError
from repro.multiswitch.fabric import FabricLink, SwitchFabric


def line(n_switches=3) -> SwitchFabric:
    fabric = SwitchFabric()
    for i in range(n_switches):
        fabric.add_switch(f"sw{i}")
        if i:
            fabric.connect_switches(f"sw{i - 1}", f"sw{i}")
    return fabric


class TestConstruction:
    def test_duplicate_names_rejected(self):
        fabric = SwitchFabric()
        fabric.add_switch("sw0")
        with pytest.raises(TopologyError):
            fabric.add_switch("sw0")
        fabric.add_node("n0", "sw0")
        with pytest.raises(TopologyError):
            fabric.add_node("n0", "sw0")
        with pytest.raises(TopologyError):
            fabric.add_switch("n0")

    def test_node_needs_existing_switch(self):
        fabric = SwitchFabric()
        with pytest.raises(TopologyError):
            fabric.add_node("n0", "ghost")

    def test_cycle_rejected(self):
        fabric = line(3)
        with pytest.raises(TopologyError, match="cycle"):
            fabric.connect_switches("sw0", "sw2")

    def test_self_loop_rejected(self):
        fabric = line(1)
        with pytest.raises(TopologyError):
            fabric.connect_switches("sw0", "sw0")

    def test_duplicate_cable_rejected(self):
        fabric = line(2)
        with pytest.raises(TopologyError):
            fabric.connect_switches("sw0", "sw1")

    def test_switch_to_node_cable_rejected(self):
        fabric = line(1)
        fabric.add_node("n0", "sw0")
        with pytest.raises(TopologyError):
            fabric.connect_switches("sw0", "n0")

    def test_empty_name_rejected(self):
        fabric = SwitchFabric()
        with pytest.raises(TopologyError):
            fabric.add_switch("")


class TestValidation:
    def test_disconnected_fabric_rejected(self):
        fabric = SwitchFabric()
        fabric.add_switch("sw0")
        fabric.add_switch("sw1")  # no cable
        fabric.add_node("a", "sw0")
        fabric.add_node("b", "sw1")
        with pytest.raises(TopologyError, match="connected"):
            fabric.path_links("a", "b")

    def test_empty_fabric_rejected(self):
        with pytest.raises(TopologyError):
            SwitchFabric().validate_connected()


class TestRouting:
    def test_single_switch_path_is_two_links(self):
        fabric = SwitchFabric.single_switch(["a", "b"])
        links = fabric.path_links("a", "b")
        assert links == [
            FabricLink("a", "sw0"),
            FabricLink("sw0", "b"),
        ]

    def test_cross_fabric_path(self):
        fabric = line(3)
        fabric.add_node("a", "sw0")
        fabric.add_node("b", "sw2")
        links = fabric.path_links("a", "b")
        assert links == [
            FabricLink("a", "sw0"),
            FabricLink("sw0", "sw1"),
            FabricLink("sw1", "sw2"),
            FabricLink("sw2", "b"),
        ]
        assert fabric.hop_count("a", "b") == 4

    def test_reverse_path_uses_reverse_links(self):
        fabric = line(2)
        fabric.add_node("a", "sw0")
        fabric.add_node("b", "sw1")
        forward = fabric.path_links("a", "b")
        backward = fabric.path_links("b", "a")
        assert backward == [link.reverse for link in reversed(forward)]

    def test_switch_endpoints_rejected(self):
        fabric = line(2)
        fabric.add_node("a", "sw0")
        with pytest.raises(RoutingError):
            fabric.path_links("a", "sw1")
        with pytest.raises(RoutingError):
            fabric.path_links("sw0", "a")

    def test_self_route_rejected(self):
        fabric = SwitchFabric.single_switch(["a"])
        with pytest.raises(RoutingError):
            fabric.path_links("a", "a")


class TestFactories:
    def test_chain_shape(self):
        fabric = SwitchFabric.chain(n_switches=3, nodes_per_switch=2)
        assert len(fabric.switches) == 3
        assert len(fabric.nodes) == 6
        assert fabric.hop_count("n0_0", "n2_1") == 4
        assert fabric.hop_count("n1_0", "n1_1") == 2

    def test_chain_validation(self):
        with pytest.raises(TopologyError):
            SwitchFabric.chain(0, 1)


class TestFabricLink:
    def test_reverse(self):
        link = FabricLink("a", "b")
        assert link.reverse == FabricLink("b", "a")
        assert link.reverse.reverse == link

    def test_hashable_ordered(self):
        links = {FabricLink("a", "b"), FabricLink("b", "a")}
        assert len(links) == 2
        assert sorted(links)
