"""Tests for k-way partitioning and multi-switch admission."""

from __future__ import annotations

import pytest

from repro.core.channel import ChannelSpec
from repro.errors import PartitioningError, UnknownChannelError
from repro.multiswitch.admission import MultiSwitchAdmission
from repro.multiswitch.fabric import FabricLink, SwitchFabric
from repro.multiswitch.partitioning import (
    MultiHopProportional,
    MultiHopSymmetric,
    split_deadline,
)


class TestSplitDeadline:
    def test_even_split(self):
        assert split_deadline(40, 3, [1, 1]) == [20, 20]
        assert split_deadline(60, 3, [1, 1, 1]) == [20, 20, 20]

    def test_sum_always_exact(self):
        for weights in ([1, 2], [3, 1, 2], [5, 5, 5, 1]):
            parts = split_deadline(41, 2, weights)
            assert sum(parts) == 41

    def test_proportional(self):
        parts = split_deadline(40, 3, [3, 1])
        assert parts == [30, 10]

    def test_floor_repair(self):
        # weight 0 link must still get >= C.
        parts = split_deadline(40, 5, [1, 0])
        assert parts[1] >= 5
        assert sum(parts) == 40

    def test_all_zero_weights_fall_back_to_even(self):
        assert split_deadline(40, 3, [0, 0]) == [20, 20]

    def test_impossible_split_rejected(self):
        with pytest.raises(PartitioningError):
            split_deadline(5, 3, [1, 1])  # needs >= 6
        with pytest.raises(PartitioningError):
            split_deadline(8, 3, [1, 1, 1])  # needs >= 9

    def test_boundary_exact_k_times_c(self):
        assert split_deadline(9, 3, [7, 1, 1]) == [3, 3, 3]

    def test_zero_links_rejected(self):
        with pytest.raises(PartitioningError):
            split_deadline(10, 1, [])

    def test_negative_weight_rejected(self):
        with pytest.raises(PartitioningError):
            split_deadline(10, 1, [1, -1])

    def test_deterministic_remainder_assignment(self):
        a = split_deadline(10, 1, [1, 1, 1])
        b = split_deadline(10, 1, [1, 1, 1])
        assert a == b
        assert sum(a) == 10


class TestSplitDeadlineEdges:
    """Boundary coverage for the exact-rational split."""

    def test_forced_all_floor_at_k_times_c(self):
        # deadline == k*capacity leaves zero slack: every part must be
        # exactly the floor no matter how skewed the weights are.
        assert split_deadline(20, 4, [97, 1, 1, 1, 1]) == [4, 4, 4, 4, 4]
        assert split_deadline(6, 2, [0, 0, 5]) == [2, 2, 2]

    def test_all_zero_weights_fall_back_with_repair(self):
        # fallback even split plus largest-remainder on the odd unit
        assert split_deadline(7, 2, [0, 0, 0]) == [3, 2, 2]

    def test_single_link_path(self):
        # k == 1 is the star's degenerate case: the whole deadline.
        assert split_deadline(40, 3, [1]) == [40]
        assert split_deadline(40, 3, [0]) == [40]
        assert split_deadline(3, 3, [17]) == [3]

    def test_hundreds_of_links(self):
        k = 300
        parts = split_deadline(1000, 2, [1] * k)
        assert sum(parts) == 1000
        assert min(parts) == 3 and max(parts) == 4  # 100 remainder units
        assert parts == sorted(parts, reverse=True)  # ties -> low index
        skewed = split_deadline(5000, 3, list(range(1, 251)))
        assert sum(skewed) == 5000
        assert min(skewed) >= 3

    def test_remainder_ties_break_toward_low_index(self):
        # equal weights, equal remainders 0.5: the first two win
        assert split_deadline(10, 1, [1, 1, 1, 1]) == [3, 3, 2, 2]
        # distinct weights with pairwise-tied remainders (1.25 / 3.75):
        # among the 0.75 ties index 1 beats index 3
        assert split_deadline(10, 1, [1, 3, 1, 3]) == [1, 4, 1, 4]

    def test_float_hazardous_weights_are_exact(self):
        # weights whose float shares would round unpredictably; the
        # Fraction path pins one bit-reproducible answer.
        big = 10**15
        parts = split_deadline(10, 1, [big, big + 1, 1])
        assert sum(parts) == 10
        assert parts == [4, 5, 1]
        again = split_deadline(10, 1, [big, big + 1, 1])
        assert parts == again


class TestMultiHopSchemes:
    def test_symmetric_equal_parts(self, paper_spec):
        fabric = SwitchFabric.chain(2, 1)
        links = fabric.path_links("n0_0", "n1_0")
        parts = MultiHopSymmetric().partition(
            paper_spec, links, lambda link: 1
        )
        assert sum(parts) == paper_spec.deadline
        assert max(parts) - min(parts) <= 1

    def test_proportional_follows_loads(self, paper_spec):
        fabric = SwitchFabric.chain(2, 1)
        links = fabric.path_links("n0_0", "n1_0")
        loads = {links[0]: 8, links[1]: 1, links[2]: 1}
        parts = MultiHopProportional().partition(
            paper_spec, links, lambda link: loads[link]
        )
        assert sum(parts) == paper_spec.deadline
        assert parts[0] > parts[1] and parts[0] > parts[2]

    def test_two_link_proportional_matches_adps_ratio(self, paper_spec):
        fabric = SwitchFabric.single_switch(["a", "b"])
        links = fabric.path_links("a", "b")
        loads = {links[0]: 2, links[1]: 1}
        parts = MultiHopProportional().partition(
            paper_spec, links, lambda link: loads[link]
        )
        # 40 * 2/3 ~ 26.67 -> largest remainder gives 27/13.
        assert parts == [27, 13]


class TestMultiSwitchAdmission:
    def make(self, scheme=None):
        fabric = SwitchFabric.chain(2, 2)
        return MultiSwitchAdmission(
            fabric=fabric, dps=scheme or MultiHopSymmetric()
        )

    def test_accept_installs_on_every_path_link(self, paper_spec):
        admission = self.make()
        decision = admission.request("n0_0", "n1_0", paper_spec)
        assert decision.accepted
        assert len(decision.links) == 3
        for link in decision.links:
            assert admission.link_load(link) == 1
        assert admission.active_channels == 1

    def test_reject_leaves_no_trace(self):
        admission = self.make()
        bad = ChannelSpec(period=100, capacity=3, deadline=8)  # < 3 links * 3
        decision = admission.request("n0_0", "n1_0", bad)
        assert not decision.accepted
        for link in decision.links:
            assert admission.link_load(link) == 0

    def test_trunk_is_shared_bottleneck(self, paper_spec):
        """Channels between different node pairs contend on the trunk."""
        admission = self.make()
        trunk = FabricLink("sw0", "sw1")
        admission.request("n0_0", "n1_0", paper_spec)
        admission.request("n0_1", "n1_1", paper_spec)
        assert admission.link_load(trunk) == 2

    def test_local_channels_skip_trunk(self, paper_spec):
        admission = self.make()
        admission.request("n0_0", "n0_1", paper_spec)
        assert admission.link_load(FabricLink("sw0", "sw1")) == 0

    def test_saturation_reported_with_failed_link(self, paper_spec):
        admission = self.make()
        results = [
            admission.request("n0_0", "n1_0", paper_spec) for _ in range(30)
        ]
        rejected = [r for r in results if not r.accepted]
        assert rejected
        assert rejected[0].failed_link is not None
        assert rejected[0].reports  # evidence present

    def test_release_restores_capacity(self, paper_spec):
        admission = self.make()
        decisions = []
        while True:
            decision = admission.request("n0_0", "n1_0", paper_spec)
            if not decision.accepted:
                break
            decisions.append(decision)
        admission.release(decisions[0].channel_id)
        assert admission.request("n0_0", "n1_0", paper_spec).accepted

    def test_release_unknown_raises(self):
        with pytest.raises(UnknownChannelError):
            self.make().release(999)

    def test_proportional_beats_symmetric_on_bottleneck(self, paper_spec):
        """The ADPS advantage generalizes to the trunk bottleneck."""
        def fill(admission):
            accepted = 0
            pairs = [("n0_0", "n1_0"), ("n0_1", "n1_1")]
            for _ in range(40):
                for source, destination in pairs:
                    if admission.request(
                        source, destination, paper_spec
                    ).accepted:
                        accepted += 1
            return accepted

        symmetric = fill(self.make(MultiHopSymmetric()))
        proportional = fill(self.make(MultiHopProportional()))
        assert proportional >= symmetric

    def test_degenerate_single_switch_matches_star_semantics(
        self, paper_spec
    ):
        """One-switch fabric behaves like the paper's SDPS star: 6 fit."""
        fabric = SwitchFabric.single_switch(["m", "x", "y"])
        admission = MultiSwitchAdmission(
            fabric=fabric, dps=MultiHopSymmetric()
        )
        accepted = sum(
            admission.request("m", dest, paper_spec).accepted
            for dest in ["x", "y"] * 5
        )
        assert accepted == 6


class TestMultiSwitchCacheParity:
    """The multi-switch admission's cached fast path must be decision-
    identical to its from-scratch path, mirroring the single-switch
    differential guarantee."""

    def _pairs(self):
        return [
            ("n0_0", "n1_0"), ("n0_1", "n1_1"), ("n0_0", "n0_1"),
            ("n1_1", "n0_0"),
        ]

    def test_cached_and_naive_decisions_match(self, paper_spec):
        fabric = SwitchFabric.chain(2, 2)
        cached = MultiSwitchAdmission(
            fabric=fabric, dps=MultiHopProportional(), use_cache=True
        )
        naive = MultiSwitchAdmission(
            fabric=SwitchFabric.chain(2, 2),
            dps=MultiHopProportional(),
            use_cache=False,
        )
        assert cached.uses_cache and not naive.uses_cache
        released = False
        for source, destination in self._pairs() * 10:
            got = cached.request(source, destination, paper_spec)
            want = naive.request(source, destination, paper_spec)
            assert got.accepted == want.accepted
            assert got.channel_id == want.channel_id
            assert got.parts == want.parts
            if got.accepted and not released:
                # One interleaved release on both sides.
                cached.release(got.channel_id)
                naive.release(want.channel_id)
                released = True
        for source, destination in self._pairs():
            for link in cached.fabric.path_links(source, destination):
                assert cached.link_load(link) == naive.link_load(link)

    def test_rejections_do_not_burn_channel_ids(self):
        """Rejected multi-hop requests no longer consume IDs."""
        fabric = SwitchFabric.chain(2, 2)
        admission = MultiSwitchAdmission(
            fabric=fabric, dps=MultiHopSymmetric()
        )
        bad = ChannelSpec(period=100, capacity=3, deadline=8)
        for _ in range(5):
            assert not admission.request("n0_0", "n1_0", bad).accepted
        decision = admission.request(
            "n0_0", "n1_0", ChannelSpec(period=100, capacity=3, deadline=40)
        )
        assert decision.accepted
        assert decision.channel_id == 1
