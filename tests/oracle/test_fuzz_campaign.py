"""Fuzz-campaign tests: determinism, reproduction coordinates, and the
recorded-seed differential proof.

The headline test runs the full acceptance-criteria campaign -- 10 000
trials, seed 0, all four families -- and asserts zero disagreements
between ``is_feasible``, ``is_feasible_naive`` and the EDF timeline
replay. The seed is recorded here on purpose: any future failure is
reproducible with ``repro oracle --trials 10000 --seed 0`` and a single
failing draw can be replayed with the
``generate_task_set(family, seed, trial)`` coordinates the report
prints.
"""

from __future__ import annotations

import json

import pytest

from repro.core.feasibility import utilization
from repro.errors import ConfigurationError
from repro.oracle.fuzz import (
    FAMILIES,
    generate_task_set,
    run_campaign,
)

#: The acceptance-criteria campaign coordinates. Do not change them
#: without updating README.md and EXPERIMENTS.md -- they are the
#: recorded proof that the three oracles agree.
RECORDED_SEED = 0
RECORDED_TRIALS = 10_000


class TestGenerators:
    def test_every_family_generates_valid_tasks(self):
        for family in FAMILIES:
            for trial in range(8):
                tasks = generate_task_set(family, seed=7, trial=trial)
                assert tasks, family
                for task in tasks:
                    assert 1 <= task.capacity <= task.period
                    assert task.deadline >= task.capacity

    def test_generation_is_pure_in_its_coordinates(self):
        for family in FAMILIES:
            first = generate_task_set(family, seed=3, trial=11)
            again = generate_task_set(family, seed=3, trial=11)
            assert first == again

    def test_different_trials_differ(self):
        draws = {
            tuple(generate_task_set("uniform", seed=3, trial=trial))
            for trial in range(10)
        }
        assert len(draws) > 1

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fuzz family"):
            generate_task_set("nope", seed=0, trial=0)

    def test_adversarial_family_hits_the_u_equals_1_band(self):
        utilizations = [
            float(utilization(generate_task_set("adversarial", 1, trial)))
            for trial in range(40)
        ]
        assert any(u >= 0.9 for u in utilizations)
        assert any(u > 1 for u in utilizations)
        assert any(u <= 1 for u in utilizations)


class TestCampaign:
    def test_campaign_is_deterministic(self):
        first = run_campaign(60, seed=5)
        again = run_campaign(60, seed=5)
        assert first.counts == again.counts
        assert first.disagreement_count == again.disagreement_count

    def test_campaign_covers_both_verdicts(self):
        report = run_campaign(100, seed=1)
        assert report.counts.get("agree-feasible", 0) > 0
        assert report.counts.get("agree-infeasible", 0) > 0

    def test_campaign_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError, match="trials"):
            run_campaign(0, seed=0)
        with pytest.raises(ConfigurationError, match="unknown fuzz family"):
            run_campaign(10, seed=0, families=("uniform", "bogus"))

    def test_single_family_campaign(self):
        report = run_campaign(30, seed=2, families=("paper",))
        assert report.families == ("paper",)
        assert sum(report.counts.values()) == 30

    def test_report_serializes_to_json(self):
        report = run_campaign(40, seed=3)
        payload = json.loads(json.dumps(report.to_json_dict()))
        assert payload["trials"] == 40
        assert payload["seed"] == 3
        assert payload["ok"] is True
        assert payload["disagreement_count"] == 0

    def test_summary_mentions_status_and_seed(self):
        report = run_campaign(20, seed=9)
        text = report.summary()
        assert "seed 9" in text
        assert "OK" in text or "DISAGREEMENTS" in text


@pytest.mark.slow
class TestRecordedCampaign:
    def test_10k_trials_zero_disagreements_at_recorded_seed(self):
        """The acceptance-criteria campaign, in-suite.

        10 000 seeded trials across all four families: the analytical
        admission test, the naive reference scan and the brute-force
        EDF replay never disagree. Runs in a few seconds; equivalent to
        ``repro oracle --trials 10000 --seed 0``.
        """
        report = run_campaign(RECORDED_TRIALS, seed=RECORDED_SEED)
        assert report.ok, report.summary()
        assert report.disagreement_count == 0
        assert sum(report.counts.values()) == RECORDED_TRIALS
        # Every trial was actually decided -- none fell to the horizon
        # cap, so the proof has no holes at this seed.
        assert report.capped == 0
