"""Tests for the network-calculus second oracle (per-link + campaign)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.oracle.netcalc import (
    NetcalcAgreement,
    netcalc_cross_check,
    run_netcalc_campaign,
    run_netcalc_trial,
)

from ..conftest import make_tasks


class TestCrossCheck:
    def test_feasible_set_agrees(self):
        verdict = netcalc_cross_check(make_tasks([(100, 3, 40), (50, 2, 30)]))
        assert verdict.agreement is NetcalcAgreement.AGREE_FEASIBLE
        assert verdict.ok
        assert verdict.netcalc_feasible
        assert verdict.analytic.feasible
        assert verdict.replay is not None and verdict.replay.schedulable
        assert all(b is not None for b in verdict.bounds_slots)

    def test_overload_agrees_infeasible_without_replay(self):
        verdict = netcalc_cross_check(make_tasks([(4, 3, 4), (8, 3, 8)]))
        assert verdict.agreement is NetcalcAgreement.AGREE_INFEASIBLE
        assert verdict.ok
        assert verdict.replay is None
        assert all(b is None for b in verdict.bounds_slots)

    def test_tight_deadline_is_expected_conservatism(self):
        # d = C: exactly schedulable alone, but the curve bound pays a
        # blocking slot it cannot prove away -> one-sided gap, not a bug.
        verdict = netcalc_cross_check(make_tasks([(10, 5, 5)]))
        assert verdict.agreement is NetcalcAgreement.NETCALC_CONSERVATIVE
        assert verdict.ok
        assert not verdict.netcalc_feasible
        assert verdict.analytic.feasible

    def test_replay_respects_bounds_even_when_infeasible(self):
        # EDF-infeasible at U < 1: deadlines missed, yet every response
        # stays under the (deadline-blind) curve bound.
        verdict = netcalc_cross_check(make_tasks([(10, 3, 3), (10, 4, 6)]))
        assert verdict.agreement is NetcalcAgreement.AGREE_INFEASIBLE
        assert verdict.replay is not None
        assert not verdict.replay.schedulable
        for bound, stats in zip(
            verdict.bounds_slots, verdict.replay.task_stats
        ):
            assert bound is not None
            assert stats.worst_response <= bound

    def test_horizon_cap(self):
        verdict = netcalc_cross_check(
            make_tasks([(10, 2, 10)]), max_horizon=1
        )
        assert verdict.agreement is NetcalcAgreement.HORIZON_CAPPED
        assert verdict.ok
        assert verdict.replay is None

    def test_empty_and_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            netcalc_cross_check([])
        tasks = make_tasks([(10, 1, 10)]) * 2
        with pytest.raises(ConfigurationError):
            netcalc_cross_check(tasks)


class TestTrials:
    def test_star_trial_is_deterministic(self):
        first = run_netcalc_trial("star", seed=7, trial=3)
        second = run_netcalc_trial("star", seed=7, trial=3)
        assert first == second
        assert first.frames_checked > 0

    def test_fabric_trial_checks_multihop_paths(self):
        result = run_netcalc_trial("fabric", seed=7, trial=4)
        assert result.ok
        assert result.channels_checked > 0
        assert result.links_checked > 0

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            run_netcalc_trial("ring", seed=0, trial=0)


class TestCampaign:
    def test_small_campaign_is_clean_and_deterministic(self):
        report = run_netcalc_campaign(6, seed=0)
        assert report.ok
        assert report.bound_violation_count == 0
        assert report.admission_disagreement_count == 0
        assert report.frames_checked > 0
        assert report.links_checked > 0
        assert report == run_netcalc_campaign(6, seed=0)

    def test_summary_and_json_round_trip(self):
        report = run_netcalc_campaign(2, seed=1)
        assert "OK" in report.summary()
        payload = json.loads(json.dumps(report.to_json_dict()))
        assert payload["ok"] is True
        assert payload["trials"] == 2
        assert payload["violations"] == []
        assert payload["disagreements"] == []

    def test_single_topology_selection(self):
        report = run_netcalc_campaign(3, seed=0, topologies=("star",))
        assert report.topologies == ("star",)
        assert report.ok

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            run_netcalc_campaign(0, seed=0)
        with pytest.raises(ConfigurationError):
            run_netcalc_campaign(1, seed=0, topologies=("ring",))


@pytest.mark.slow
class TestRecordedNetcalcCampaign:
    """The acceptance-criteria campaign (see EXPERIMENTS.md)."""

    RECORDED_TRIALS = 1000
    RECORDED_SEED = 0

    def test_1000_trials_zero_violations(self):
        report = run_netcalc_campaign(
            self.RECORDED_TRIALS, seed=self.RECORDED_SEED
        )
        assert report.bound_violation_count == 0, report.summary()
        assert report.admission_disagreement_count == 0, report.summary()
        assert report.capped == 0, report.summary()
        assert report.frames_checked > 10_000
