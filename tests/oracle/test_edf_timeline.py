"""Unit tests for the brute-force EDF timeline dispatcher."""

from __future__ import annotations

import pytest

from repro.core.feasibility import busy_period, hyperperiod
from repro.errors import ConfigurationError
from repro.oracle.edf_timeline import (
    default_release_horizon,
    simulate_edf,
)

from ..conftest import make_tasks


class TestBasics:
    def test_empty_set_is_trivially_schedulable(self):
        result = simulate_edf([])
        assert result.schedulable
        assert result.release_horizon == 0
        assert result.makespan == 0
        assert result.jobs_released == 0

    def test_zero_horizon_releases_nothing(self):
        tasks = make_tasks([(10, 2, 10)])
        result = simulate_edf(tasks, 0)
        assert result.jobs_released == 0
        assert result.schedulable

    def test_single_task_response_equals_capacity(self):
        tasks = make_tasks([(10, 3, 5)])
        result = simulate_edf(tasks, record_jobs=True)
        assert result.first_miss is None
        assert result.worst_response_of(0) == 3
        # busy period of a lone task is its capacity.
        assert result.makespan == 3
        assert [job.completion for job in result.jobs] == [3]

    def test_two_tasks_edf_order(self):
        # task 1 has the tighter deadline and must run first.
        tasks = make_tasks([(20, 2, 12), (20, 2, 4)])
        result = simulate_edf(tasks, record_jobs=True)
        assert result.first_miss is None
        by_completion = sorted(result.jobs, key=lambda j: j.completion)
        assert by_completion[0].task_index == 1
        assert by_completion[0].completion == 2
        assert by_completion[1].task_index == 0
        assert by_completion[1].completion == 4

    def test_equal_deadlines_break_ties_by_task_index(self):
        tasks = make_tasks([(10, 1, 5), (10, 1, 5)])
        result = simulate_edf(tasks, record_jobs=True)
        first = min(result.jobs, key=lambda j: j.completion)
        assert first.task_index == 0

    def test_idle_gap_is_skipped_not_executed(self):
        # One job of 1 slot, then nothing until the next period.
        tasks = make_tasks([(50, 1, 50)])
        result = simulate_edf(tasks, 101, stop_on_miss=False)
        assert result.jobs_released == 3
        assert result.slots_executed == 3
        assert result.makespan == 101  # last job released at 100, runs 1


class TestMissDetection:
    def test_overloaded_instant_misses_at_the_deadline(self):
        # 3 tasks, 2 slots each, all due at t=4: 6 slots of work, 4 of
        # room. The first miss is at t=4 exactly.
        tasks = make_tasks([(10, 2, 4), (10, 2, 4), (10, 2, 4)])
        result = simulate_edf(tasks)
        assert result.first_miss is not None
        assert result.first_miss.time == 4
        assert not result.schedulable

    def test_miss_is_attributed_to_the_unfinished_job(self):
        tasks = make_tasks([(10, 3, 3), (10, 4, 6)])
        result = simulate_edf(tasks)
        # task 0 monopolizes [0, 3); task 1 needs 4 slots by t=6.
        assert result.first_miss is not None
        assert result.first_miss.time == 6
        assert result.first_miss.task_index == 1
        assert result.first_miss.remaining > 0

    def test_stop_on_miss_false_accounts_the_whole_window(self):
        tasks = make_tasks([(4, 3, 4), (8, 3, 8)])  # U = 1.125
        result = simulate_edf(
            tasks, 16, stop_on_miss=False, record_jobs=True
        )
        assert result.first_miss is not None
        assert result.jobs_released == 6
        assert result.jobs_completed == 6  # late jobs still complete
        overruns = sum(s.overruns for s in result.task_stats)
        assert overruns > 0
        assert any(job.missed for job in result.jobs)

    def test_first_miss_matches_between_stop_modes(self):
        # U = 1 with tight deadlines: h(11) = 12 > 11, so a miss exists.
        tasks = make_tasks([(5, 2, 4), (10, 4, 9), (20, 4, 11)])
        stopped = simulate_edf(tasks, 40, stop_on_miss=True)
        full = simulate_edf(tasks, 40, stop_on_miss=False)
        assert stopped.first_miss is not None
        assert stopped.first_miss == full.first_miss


class TestHorizons:
    def test_default_horizon_is_busy_period(self):
        tasks = make_tasks([(10, 3, 8), (15, 4, 12)])
        assert default_release_horizon(tasks) == min(
            busy_period(tasks), hyperperiod(tasks)
        )
        result = simulate_edf(tasks)
        assert result.release_horizon == default_release_horizon(tasks)

    def test_feasible_replay_drains_exactly_at_the_busy_period(self):
        tasks = make_tasks([(10, 3, 10), (15, 4, 15), (30, 2, 30)])
        result = simulate_edf(tasks)
        assert result.first_miss is None
        assert result.makespan == busy_period(tasks)
        assert result.slots_executed == result.makespan

    def test_overutilized_needs_explicit_horizon(self):
        tasks = make_tasks([(2, 1, 2), (2, 1, 2), (2, 1, 2)])
        with pytest.raises(ConfigurationError, match="over-utilized"):
            simulate_edf(tasks)
        result = simulate_edf(tasks, 10)
        assert result.first_miss is not None
        assert result.first_miss.time == 2

    def test_negative_horizon_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            simulate_edf(make_tasks([(5, 1, 5)]), -1)

    def test_max_slots_cap_trips(self):
        tasks = make_tasks([(2, 1, 2), (4, 2, 4)])  # U = 1, always busy
        with pytest.raises(ConfigurationError, match="exceeded"):
            simulate_edf(tasks, 10_000, max_slots=100)


class TestAccounting:
    def test_hyperperiod_accounting_counts_every_job(self):
        tasks = make_tasks([(4, 1, 4), (6, 2, 6)])
        horizon = hyperperiod(tasks)  # 12
        result = simulate_edf(
            tasks, horizon, stop_on_miss=False, record_jobs=True
        )
        assert result.task_stats[0].jobs_released == 3
        assert result.task_stats[1].jobs_released == 2
        assert result.jobs_completed == 5
        assert len(result.jobs) == 5
        assert result.schedulable

    def test_job_records_are_consistent(self):
        tasks = make_tasks([(6, 2, 5), (9, 3, 9)])
        result = simulate_edf(
            tasks, 18, stop_on_miss=False, record_jobs=True
        )
        for job in result.jobs:
            task = tasks[job.task_index]
            assert job.release % task.period == 0
            assert job.deadline == job.release + task.deadline
            assert job.response >= task.capacity
            assert job.missed == (job.completion > job.deadline)
