"""Campaign-level tests for the churn-mode admission differential."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.oracle.admission_diff import (
    run_admission_campaign,
    run_churn_trial,
)


class TestChurnTrial:
    def test_trial_is_reproducible(self):
        first = run_churn_trial(11, 3, ops=50)
        second = run_churn_trial(11, 3, ops=50)
        assert first == second

    def test_trial_actually_snapshots(self):
        # over a handful of seeds the 1-in-12 snapshot op must fire
        total = 0
        for trial in range(6):
            disagreement, counts = run_churn_trial(0, trial, ops=60)
            assert disagreement is None
            total += counts["snapshots"]
        assert total > 0


class TestChurnCampaign:
    def test_small_campaign_is_clean(self):
        report = run_admission_campaign(
            10, 0, ops_per_trial=50, churn=True
        )
        assert report.ok
        assert report.churn
        assert report.snapshots > 0
        assert report.decisions > 0
        assert "churn" in report.summary()
        assert report.to_json_dict()["snapshots"] == report.snapshots

    def test_batch_and_churn_are_exclusive(self):
        with pytest.raises(ConfigurationError):
            run_admission_campaign(1, 0, batch=True, churn=True)

    def test_plain_campaign_reports_no_churn(self):
        report = run_admission_campaign(2, 0, ops_per_trial=20)
        assert not report.churn
        assert report.snapshots == 0
