"""Property suite: network-calculus bounds vs the EDF machinery.

Hypothesis draws random task sets and random simulation trials and
checks the inequalities the whole second-oracle construction rests on:

* every replayed EDF worst response sits under the curve bound
  (soundness of the blind-multiplexing residual);
* bounds are monotone in a channel's capacity and antitone in the link
  rate (the algebra moves the right way when parameters move);
* the staircase arrival curve gives exactly the hull's delay bound
  whenever the service rate covers the flow's rate (THEORY.md sec. 8);
* full simulation trials on the star and the 2-switch chain never
  deliver a frame later than the netcalc or the paper bound.
"""

from __future__ import annotations

from fractions import Fraction

from hypothesis import assume, given, settings, strategies as st

from repro.core.feasibility import utilization
from repro.core.task import LinkRef, LinkTask
from repro.netcalc import (
    RateLatency,
    Staircase,
    horizontal_deviation,
    link_delay_bound,
)
from repro.oracle.netcalc import (
    NetcalcAgreement,
    netcalc_cross_check,
    run_netcalc_trial,
)

_LINK = LinkRef.uplink("n0")


@st.composite
def task_sets(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    tasks = []
    for channel in range(n):
        period = draw(st.integers(min_value=4, max_value=40))
        capacity = draw(
            st.integers(min_value=1, max_value=min(period, 6))
        )
        deadline = draw(st.integers(min_value=capacity, max_value=2 * period))
        tasks.append(
            LinkTask(
                link=_LINK,
                period=period,
                capacity=capacity,
                deadline=deadline,
                channel_id=channel,
            )
        )
    return tasks


class TestReplayUnderBound:
    @given(tasks=task_sets())
    @settings(max_examples=150, deadline=None)
    def test_three_way_check_never_disagrees(self, tasks):
        # Covers U > 1 (both reject), feasible (all agree) and the
        # conservative gap; BOUND_VIOLATED / SOUNDNESS_MISMATCH would
        # fail here and shrink to a minimal task set.
        verdict = netcalc_cross_check(tasks)
        assert verdict.ok, verdict.detail

    @given(tasks=task_sets())
    @settings(max_examples=100, deadline=None)
    def test_worst_response_below_bound_at_admissible_load(self, tasks):
        assume(utilization(tasks) <= 1)
        verdict = netcalc_cross_check(tasks)
        assume(verdict.replay is not None)  # not horizon-capped
        for bound, stats in zip(
            verdict.bounds_slots, verdict.replay.task_stats
        ):
            assert bound is not None
            assert stats.worst_response <= bound


class TestBoundShape:
    @given(tasks=task_sets(), extra=st.integers(min_value=1, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_bound_monotone_in_capacity(self, tasks, extra):
        grown = LinkTask(
            link=_LINK,
            period=tasks[0].period,
            capacity=min(tasks[0].capacity + extra, tasks[0].period),
            deadline=tasks[0].period,
            channel_id=tasks[0].channel_id,
        )
        assume(grown.capacity > tasks[0].capacity)
        before = link_delay_bound(tasks, 0)
        after = link_delay_bound([grown] + tasks[1:], 0)
        assume(before is not None)
        # own burst grew, cross traffic unchanged: never a tighter bound
        assert after is None or after >= before
        # every other channel sees more cross traffic: same direction
        for task in tasks[1:]:
            other_before = link_delay_bound(tasks, task.channel_id)
            other_after = link_delay_bound(
                [grown] + tasks[1:], task.channel_id
            )
            if other_before is None:
                assert other_after is None
            else:
                assert other_after is None or other_after >= other_before

    @given(
        tasks=task_sets(),
        faster=st.fractions(
            min_value=Fraction(11, 10), max_value=Fraction(4)
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_bound_antitone_in_link_rate(self, tasks, faster):
        slow = link_delay_bound(tasks, 0, link_rate=1)
        fast = link_delay_bound(tasks, 0, link_rate=faster)
        if slow is None:
            return  # a faster link may or may not recover a bound
        assert fast is not None
        assert fast <= slow

    @given(
        capacity=st.integers(min_value=1, max_value=20),
        period=st.integers(min_value=1, max_value=50),
        latency=st.fractions(min_value=0, max_value=10),
        rate=st.fractions(
            min_value=Fraction(1, 10), max_value=Fraction(3)
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_staircase_bound_equals_hull_bound(
        self, capacity, period, latency, rate
    ):
        stairs = Staircase(capacity=capacity, period=period)
        service = RateLatency(rate=rate, latency=latency)
        via_stairs = horizontal_deviation(stairs, service)
        via_hull = horizontal_deviation(
            stairs.token_bucket_hull(), service
        )
        assert via_stairs == via_hull


class TestSimulatedTrials:
    @given(trial=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=25, deadline=None)
    def test_star_measured_delays_under_both_bounds(self, trial):
        result = run_netcalc_trial("star", seed=0, trial=trial)
        assert result.ok, result
        assert result.capped == 0

    @given(trial=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=25, deadline=None)
    def test_fabric_measured_delays_under_both_bounds(self, trial):
        result = run_netcalc_trial("fabric", seed=0, trial=trial)
        assert result.ok, result
        assert result.capped == 0
