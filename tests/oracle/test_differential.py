"""Unit tests for the three-way differential cross-checker."""

from __future__ import annotations

import pytest

from repro.core.feasibility import is_feasible, utilization
from repro.errors import ConfigurationError
from repro.oracle.differential import (
    Agreement,
    cross_check,
    first_demand_violation,
)

from ..conftest import make_tasks


class TestFirstDemandViolation:
    def test_none_for_empty_set(self):
        assert first_demand_violation([], 1000) is None

    def test_none_for_feasible_set(self):
        tasks = make_tasks([(10, 2, 10), (20, 4, 20)])
        assert first_demand_violation(tasks, 10_000) is None

    def test_matches_is_feasible_certificate(self):
        tasks = make_tasks([(100, 3, 20)] * 7)
        report = is_feasible(tasks)
        assert not report.feasible
        assert first_demand_violation(tasks, 10_000) == report.violation

    def test_finds_violation_for_overutilized_set(self):
        tasks = make_tasks([(2, 1, 2)] * 3)  # U = 1.5
        violation = first_demand_violation(tasks, 10_000)
        assert violation is not None
        t, h = violation
        assert h > t

    def test_respects_the_cap(self):
        # Violation exists (U > 1) but only beyond the tiny cap when
        # deadlines start past it.
        tasks = make_tasks([(4, 3, 50), (4, 3, 50)])
        assert first_demand_violation(tasks, 10) is None


class TestCrossCheck:
    def test_agree_feasible(self):
        verdict = cross_check(make_tasks([(100, 3, 40)] * 6))
        assert verdict.agreement is Agreement.AGREE_FEASIBLE
        assert verdict.ok
        assert verdict.naive is not None
        assert verdict.timeline is not None
        assert verdict.timeline.first_miss is None

    def test_agree_feasible_empty_set(self):
        verdict = cross_check([])
        assert verdict.agreement is Agreement.AGREE_FEASIBLE

    def test_agree_infeasible_demand(self):
        verdict = cross_check(make_tasks([(100, 3, 20)] * 7))
        assert verdict.agreement is Agreement.AGREE_INFEASIBLE
        assert verdict.ok
        miss = verdict.timeline.first_miss
        assert miss is not None
        assert miss.time <= verdict.fast.violation[0]

    def test_agree_infeasible_overutilized(self):
        tasks = make_tasks([(3, 2, 3), (3, 2, 3)])  # U = 4/3
        verdict = cross_check(tasks)
        assert verdict.agreement is Agreement.AGREE_INFEASIBLE
        assert verdict.fast.violation is None  # rejected on utilization
        assert verdict.timeline.first_miss is not None

    def test_naive_leg_can_be_skipped(self):
        verdict = cross_check(
            make_tasks([(100, 3, 40)] * 3), check_naive=False
        )
        assert verdict.naive is None
        assert verdict.agreement is Agreement.AGREE_FEASIBLE

    def test_naive_skipped_above_its_cap_but_check_continues(self):
        tasks = make_tasks([(10, 4, 10), (15, 6, 15)])  # busy period 30
        verdict = cross_check(tasks, naive_horizon_cap=5)
        assert verdict.naive is None
        assert verdict.agreement is Agreement.AGREE_FEASIBLE

    def test_horizon_capped_is_not_a_disagreement(self):
        # Feasible (Liu & Layland) but the replay horizon -- the busy
        # period, 10 slots -- exceeds the tiny cap.
        tasks = make_tasks([(10, 4, 10), (15, 6, 15)])
        verdict = cross_check(tasks, max_horizon=5)
        assert verdict.agreement is Agreement.HORIZON_CAPPED
        assert verdict.ok
        assert verdict.timeline is None

    def test_overutilized_beyond_cap_is_horizon_capped(self):
        tasks = make_tasks([(4, 3, 200), (4, 3, 200)])
        verdict = cross_check(tasks, max_horizon=20)
        assert verdict.agreement is Agreement.HORIZON_CAPPED
        assert verdict.ok

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ConfigurationError, match="max_horizon"):
            cross_check([], max_horizon=0)

    def test_verdict_summary_mentions_agreement(self):
        verdict = cross_check(make_tasks([(10, 1, 10)]))
        assert "agree-feasible" in verdict.summary()


class TestZeroSlackBoundaries:
    """Exact boundary sets: one extra slot of demand flips the verdict."""

    def test_full_utilization_implicit_deadlines_is_feasible(self):
        tasks = make_tasks([(2, 1, 2), (4, 2, 4)])  # U == 1, d == P
        assert utilization(tasks) == 1
        verdict = cross_check(tasks)
        assert verdict.agreement is Agreement.AGREE_FEASIBLE

    def test_paper_uplink_boundary_six_fits_seven_does_not(self):
        six = cross_check(make_tasks([(100, 3, 20)] * 6))
        seven = cross_check(make_tasks([(100, 3, 20)] * 7))
        assert six.agreement is Agreement.AGREE_FEASIBLE
        assert seven.agreement is Agreement.AGREE_INFEASIBLE

    def test_exact_demand_equality_is_feasible(self):
        # h(6) == 6 exactly: allowed (the criterion is h <= t).
        tasks = make_tasks([(10, 3, 3), (10, 3, 6)])
        verdict = cross_check(tasks)
        assert verdict.agreement is Agreement.AGREE_FEASIBLE
        assert verdict.timeline.first_miss is None
