"""Tests for the cached-vs-from-scratch admission differential oracle."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.oracle.admission_diff import (
    run_admission_campaign,
    run_trial,
)


class TestRunTrial:
    def test_trial_is_pure_in_its_coordinates(self):
        first = run_trial(seed=7, trial=3)
        second = run_trial(seed=7, trial=3)
        assert first == second

    def test_trial_reports_no_disagreement(self):
        disagreement, counts = run_trial(seed=0, trial=0)
        assert disagreement is None
        assert counts["decisions"] > 0

    def test_trials_exercise_every_op_kind(self):
        """Across a handful of trials the mix covers accepts, rejects
        and releases -- otherwise the campaign proves less than it
        claims."""
        totals = {"decisions": 0, "accepts": 0, "rejects": 0, "releases": 0}
        for trial in range(10):
            _, counts = run_trial(seed=0, trial=trial)
            for key in totals:
                totals[key] += counts[key]
        assert totals["accepts"] > 0
        assert totals["rejects"] > 0
        assert totals["releases"] > 0


class TestCampaign:
    def test_short_campaign_is_clean(self):
        report = run_admission_campaign(trials=25, seed=0)
        assert report.ok
        assert report.disagreement_count == 0
        assert report.decisions > 0
        assert report.releases > 0
        assert "OK" in report.summary()

    def test_report_round_trips_to_json(self):
        report = run_admission_campaign(trials=5, seed=1)
        data = report.to_json_dict()
        assert data["ok"] is True
        assert data["trials"] == 5
        assert data["disagreements"] == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            run_admission_campaign(trials=0, seed=0)
        with pytest.raises(ConfigurationError):
            run_admission_campaign(trials=1, seed=0, ops_per_trial=0)
