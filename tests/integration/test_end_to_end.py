"""End-to-end integration tests: full stack, multiple subsystems at once.

These are the closest thing to running the paper's network for real:
signalling over the wire, EDF scheduling in nodes and switch, periodic
traffic, best-effort interference, teardown and re-admission.
"""

from __future__ import annotations

import pytest

from repro.core.channel import ChannelSpec
from repro.core.partitioning import AsymmetricDPS, SymmetricDPS
from repro.network.topology import build_star
from repro.sim.rng import RngRegistry
from repro.traffic.besteffort import BestEffortInjector
from repro.traffic.patterns import master_slave_names, master_slave_requests
from repro.traffic.spec import FixedSpecSampler, UniformSpecSampler


class TestCriticalInstantSchedule:
    def test_saturated_uplink_meets_all_deadlines(self, paper_spec):
        """Fill one uplink to its SDPS limit and release everything at
        t=0: the worst case the demand test certifies."""
        net = build_star(["m"] + [f"s{i}" for i in range(6)],
                         dps=SymmetricDPS())
        for i in range(6):
            assert net.establish("m", f"s{i}", paper_spec) is not None
        net.start_all_sources(stop_after_messages=3)
        net.sim.run()
        assert net.metrics.total_deadline_misses == 0
        assert net.metrics.total_rt_messages == 18
        # uplink actually experienced contention: 18 frames at t=0.
        assert net.nodes["m"].uplink.stats.rt_queueing_delay_max_ns > 0

    def test_tightest_feasible_set_is_tight(self, paper_spec):
        """The 6-channel SDPS set uses its deadline budget almost fully:
        the worst uplink completion lands in the last deadline slot."""
        net = build_star(["m"] + [f"s{i}" for i in range(6)],
                         dps=SymmetricDPS())
        for i in range(6):
            net.establish("m", f"s{i}", paper_spec)
        net.start_all_sources(stop_after_messages=1)
        net.sim.run()
        # 18 frames of 1 slot each, deadline 20 slots: the last frame
        # completes in slot 18 -- within d_iu but using >= 85% of it.
        worst_delay = net.metrics.worst_rt_delay_ns
        assert worst_delay >= 17 * net.phy.slot_ns


class TestMixedWorkload:
    def test_random_workload_full_stack(self):
        """Random specs, wire handshake, periodic traffic, BE noise."""
        masters, slaves = master_slave_names(3, 9)
        net = build_star(masters + slaves, dps=AsymmetricDPS())
        rng = RngRegistry(17).stream("requests")
        sampler = UniformSpecSampler(
            period_range=(50, 150),
            capacity_range=(1, 4),
            deadline_range=(10, 60),
        )
        requests = master_slave_requests(masters, slaves, 40, sampler, rng)
        admitted = 0
        for request in requests:
            if net.establish(request.source, request.destination,
                             request.spec) is not None:
                admitted += 1
        assert 0 < admitted <= 40
        injector = BestEffortInjector(
            sim=net.sim, node=net.nodes["m0"], destinations=slaves
        )
        injector.start()
        net.start_all_sources(stop_after_messages=4)
        horizon = net.sim.now + 700 * net.phy.slot_ns
        net.sim.run(until=horizon)
        injector.stop()
        net.sim.run(until=horizon + 10 * net.phy.slot_ns)
        assert net.metrics.total_deadline_misses == 0
        assert net.metrics.total_rt_messages > 0
        assert net.metrics.be_frames_delivered > 0

    def test_bidirectional_channels_between_same_pair(self, paper_spec):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        forward = net.establish("a", "b", paper_spec)
        backward = net.establish("b", "a", paper_spec)
        assert forward is not None and backward is not None
        net.nodes["a"].send_message(forward.channel_id)
        net.nodes["b"].send_message(backward.channel_id)
        net.sim.run()
        assert net.metrics.total_rt_messages == 2
        assert net.metrics.total_deadline_misses == 0


class TestChurn:
    def test_admit_release_admit_cycles(self, paper_spec):
        """Channel churn: the system returns to a consistent state."""
        net = build_star(["m", "x", "y"], dps=SymmetricDPS())
        for cycle in range(3):
            grants = []
            while True:
                grant = net.establish("m", "x" if len(grants) % 2 else "y",
                                      paper_spec)
                if grant is None:
                    break
                grants.append(grant)
            assert len(grants) == 6
            for grant in grants:
                net.nodes["m"].teardown_channel(grant.channel_id)
            net.sim.run()
            assert len(net.admission.state) == 0
            net.grants.clear()

    def test_traffic_then_teardown_then_new_channel(self, paper_spec):
        net = build_star(["a", "b", "c"], dps=AsymmetricDPS())
        first = net.establish("a", "b", paper_spec)
        net.nodes["a"].start_periodic_source(
            first.channel_id, stop_after_messages=2
        )
        net.sim.run()
        net.nodes["a"].teardown_channel(first.channel_id)
        net.sim.run()
        second = net.establish("a", "c", paper_spec)
        assert second is not None
        assert second.channel_id != first.channel_id  # never reused
        net.nodes["a"].send_message(second.channel_id)
        net.sim.run()
        assert net.metrics.total_deadline_misses == 0


class TestScaleSmoke:
    def test_paper_scale_network_runs(self, paper_spec):
        """10 masters / 50 slaves with ~100 channels: the Figure 18.5
        network actually carrying traffic."""
        masters, slaves = master_slave_names(10, 50)
        net = build_star(masters + slaves, dps=AsymmetricDPS())
        rng = RngRegistry(2004).stream("requests")
        requests = master_slave_requests(
            masters, slaves, 120, FixedSpecSampler(paper_spec), rng
        )
        for request in requests:
            net.establish_analytically(
                request.source, request.destination, request.spec
            )
        assert len(net.grants) > 80  # ADPS should admit most of 120
        net.start_all_sources(stop_after_messages=2)
        net.sim.run()
        assert net.metrics.total_deadline_misses == 0
        assert net.metrics.total_rt_messages == 2 * len(net.grants)


class TestSoak:
    def test_paper_scale_ten_hyperperiods(self, paper_spec):
        """Soak: the full ADPS-admitted Figure 18.5 set over 10
        hyperperiods -- thousands of frames, zero misses, queues drain."""
        masters, slaves = master_slave_names(10, 50)
        net = build_star(masters + slaves, dps=AsymmetricDPS())
        rng = RngRegistry(9).stream("requests")
        requests = master_slave_requests(
            masters, slaves, 200, FixedSpecSampler(paper_spec), rng
        )
        for request in requests:
            net.establish_analytically(
                request.source, request.destination, request.spec
            )
        admitted = len(net.grants)
        assert admitted > 100
        net.start_all_sources(stop_after_messages=10)
        net.sim.run()
        assert net.metrics.total_rt_messages == 10 * admitted
        assert net.metrics.total_deadline_misses == 0
        # all queues drained
        for node in net.nodes.values():
            assert node.uplink.backlog == 0
        for port in net.switch.ports.values():
            assert port.backlog == 0
        # uplink utilization stays below the reserved ceiling
        for master in masters:
            uplink = net.nodes[master].uplink
            assert uplink.link.utilization() < 0.5


class TestWireFidelity:
    def test_signaling_travels_as_encoded_bytes(self, paper_spec):
        """Establishment signalling crosses the simulated wires as the
        bit-exact Figure 18.3/18.4 encodings and is decoded with the
        real codec at every receiver (the grant-carrying final response
        is the one documented exception)."""
        net = build_star(["a", "b"], dps=SymmetricDPS())
        grant = net.establish("a", "b", paper_spec)
        assert grant is not None
        # switch decoded the source's RequestFrame and the destination's
        # ResponseFrame from wire bytes:
        assert net.switch.signaling_frames_decoded == 2
        # destination decoded the stamped offer from wire bytes:
        assert net.nodes["b"].signaling_frames_decoded == 1
        # source received the grant-carrying response as metadata (the
        # documented substitution), so its decode counter stays 0:
        assert net.nodes["a"].signaling_frames_decoded == 0

    def test_rejection_response_travels_as_bytes(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        bad = ChannelSpec(period=100, capacity=3, deadline=5)
        assert net.establish("a", "b", bad) is None
        # the direct rejection response was encoded and decoded:
        assert net.nodes["a"].signaling_frames_decoded == 1

    def test_teardown_travels_as_bytes(self, paper_spec):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        grant = net.establish("a", "b", paper_spec)
        decoded_before = net.switch.signaling_frames_decoded
        net.nodes["a"].teardown_channel(grant.channel_id)
        net.sim.run()
        assert net.switch.signaling_frames_decoded == decoded_before + 1
        assert len(net.admission.state) == 0
