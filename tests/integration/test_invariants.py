"""Whole-stack invariants: speed scaling, buffer bounds, percentiles."""

from __future__ import annotations

import pytest

from repro.core.channel import ChannelSpec
from repro.core.partitioning import AsymmetricDPS, SymmetricDPS
from repro.errors import ConfigurationError
from repro.experiments.ablations import speed_scaling
from repro.network.topology import build_star


class TestSpeedScaling:
    def test_slot_normalized_delays_invariant(self):
        """EXP-S1: the analysis is slot-relative; absolute delays scale
        with the slot duration, slot-normalized delays coincide."""
        points = speed_scaling(speeds_mbps=(100, 1000))
        assert all(p.deadline_misses == 0 for p in points)
        fast, gigabit = points
        assert gigabit.worst_delay_ns < fast.worst_delay_ns
        # normalized: equal up to the non-scaling constants (propagation
        # and switch processing loom larger at gigabit, hence the band).
        assert gigabit.worst_delay_slots == pytest.approx(
            fast.worst_delay_slots, rel=0.05
        )

    def test_absolute_delays_scale_by_slot_ratio(self):
        points = speed_scaling(speeds_mbps=(10, 100))
        slow, fast = points
        ratio = slow.worst_delay_ns / fast.worst_delay_ns
        assert ratio == pytest.approx(10.0, rel=0.05)


class TestBufferBounds:
    def test_rt_backlog_watermark_bounded_by_admitted_demand(self):
        """Admission control implicitly bounds switch buffering: the RT
        backlog on a downlink never exceeds the total capacity of the
        channels traversing it (all C frames of every channel can be
        simultaneously queued at the critical instant, no more)."""
        net = build_star(["m"] + [f"s{i}" for i in range(6)],
                         dps=SymmetricDPS())
        spec = ChannelSpec(period=100, capacity=3, deadline=40)
        for i in range(6):
            net.establish_analytically("m", f"s{i}", spec)
        net.start_all_sources(stop_after_messages=3)
        net.sim.run()
        # uplink: 6 channels x 3 frames can pile up at t=0
        uplink = net.nodes["m"].uplink
        assert 0 < uplink.stats.rt_backlog_max <= 18
        # each downlink carries exactly one channel -> <= 3 frames ever
        for name, port in net.switch.ports.items():
            assert port.stats.rt_backlog_max <= 3

    def test_be_backlog_watermark_tracks_queue(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        for _ in range(5):
            net.nodes["a"].send_best_effort("b", 100)
        assert net.nodes["a"].uplink.stats.be_backlog_max == 4
        net.sim.run()


class TestDelayPercentiles:
    def test_percentiles_from_simulation(self):
        net = build_star(
            ["m", "s0", "s1"], dps=AsymmetricDPS(), record_delays=True
        )
        spec = ChannelSpec(period=100, capacity=3, deadline=40)
        for dest in ("s0", "s1"):
            net.establish_analytically("m", dest, spec)
        net.start_all_sources(stop_after_messages=10)
        net.sim.run()
        pooled = net.metrics.delay_percentiles()
        assert pooled[50.0] <= pooled[95.0] <= pooled[100.0]
        assert pooled[100.0] == net.metrics.worst_rt_delay_ns
        per_channel = net.metrics.delay_percentiles(channel_id=1)
        assert per_channel[100.0] <= pooled[100.0]

    def test_percentiles_require_opt_in(self):
        net = build_star(["a", "b"], dps=SymmetricDPS())
        with pytest.raises(ConfigurationError, match="record_delays"):
            net.metrics.delay_percentiles()

    def test_percentiles_need_samples(self):
        net = build_star(["a", "b"], dps=SymmetricDPS(), record_delays=True)
        with pytest.raises(ConfigurationError, match="no delay samples"):
            net.metrics.delay_percentiles()


class TestBlockingCascade:
    def test_hypothesis_found_cascade_case(self):
        """Regression for a real modelling subtlety the property suite
        uncovered: with two same-instant releases, the EDF queue cannot
        preempt the frame that already started, so the tighter-deadline
        frame suffers one slot of blocking on the uplink AND arrives
        late enough at the switch to consume part of the downlink's
        slack too. The per-hop miss check must therefore allow the
        *cumulative* hop share of T_latency, and the end-to-end bound
        (which prices two frames of blocking) must still hold."""
        from repro.core.channel import ChannelSpec
        from repro.core.partitioning import SymmetricDPS

        net = build_star(["n0", "n1"], dps=SymmetricDPS())
        assert net.establish_analytically(
            "n0", "n1", ChannelSpec(period=20, capacity=1, deadline=4)
        )
        assert net.establish_analytically(
            "n0", "n1", ChannelSpec(period=20, capacity=1, deadline=2)
        )
        net.start_all_sources(stop_after_messages=2)
        net.sim.run()
        assert net.metrics.total_deadline_misses == 0
        per_link = net.nodes["n0"].uplink.stats.rt_link_deadline_misses + sum(
            p.stats.rt_link_deadline_misses
            for p in net.switch.ports.values()
        )
        assert per_link == 0
