"""ProbeSet weak-event sampling and KernelProfiler accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.probes import ProbeSet
from repro.obs.profiling import KernelProfiler, _label_key
from repro.obs.registry import MetricsRegistry
from repro.sim.kernel import Simulator


class TestProbeSet:
    def test_samples_on_cadence_until_last_strong_event(self):
        sim = Simulator()
        depth = {"value": 0}
        for t in (100, 5_000, 10_000):
            sim.schedule(t, lambda: depth.__setitem__("value", depth["value"] + 1))
        probes = ProbeSet(sim, MetricsRegistry(), cadence_ns=1_000)
        probes.add("depth", lambda: depth["value"])
        probes.start()
        sim.run()
        # strong events end at t=10_000; ticks at 1k..9k fire (the tick
        # at 10k is ordered after the last strong event and never runs)
        series = probes.series["depth"]
        assert [t for t, _ in series] == list(range(1_000, 10_000, 1_000))
        assert sim.now == 10_000

    def test_weak_ticks_do_not_extend_final_clock(self):
        bare = Simulator()
        bare.schedule(7_777, lambda: None)
        bare.run()

        probed = Simulator()
        probed.schedule(7_777, lambda: None)
        probes = ProbeSet(probed, MetricsRegistry(), cadence_ns=500)
        probes.add("noop", lambda: 0)
        probes.start()
        probed.run()
        assert probed.now == bare.now == 7_777

    def test_latest_sample_mirrored_into_gauge(self):
        sim = Simulator()
        sim.schedule(3_000, lambda: None)
        reg = MetricsRegistry()
        probes = ProbeSet(sim, reg, cadence_ns=1_000)
        counter = iter([10, 20, 30])
        probes.add("util", lambda: next(counter))
        probes.start()
        sim.run()
        assert reg.value_of("probe.util") == 20  # last fired tick (t=2000)
        assert probes.to_dict() == {"util": [[1_000, 10], [2_000, 20]]}

    def test_rejects_bad_cadence_and_duplicate_names(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            ProbeSet(sim, MetricsRegistry(), cadence_ns=0)
        probes = ProbeSet(sim, MetricsRegistry(), cadence_ns=1)
        probes.add("x", lambda: 0)
        with pytest.raises(ConfigurationError):
            probes.add("x", lambda: 0)


class TestLabelKey:
    def test_collapses_instance_prefixes(self):
        assert _label_key("m0->switch:deliver") == "deliver"
        assert _label_key("m3:ch7:period") == "period"
        assert _label_key("plain") == "plain"
        assert _label_key("") == "(unlabelled)"


class TestKernelProfiler:
    def test_accounting_and_rows_hottest_first(self):
        prof = KernelProfiler()
        prof.account("m0->switch:deliver", 100)
        prof.account("m1->switch:deliver", 300)
        prof.account("switch:process", 50)
        assert prof.total_events == 3
        assert prof.total_wall_ns == 450
        rows = prof.rows()
        assert rows[0] == ("deliver", 2, 400, 300)
        assert rows[1] == ("process", 1, 50, 50)
        assert prof.dispatch_rate == pytest.approx(3 / (450 / 1e9))

    def test_attached_profiler_observes_simulator_dispatch(self):
        sim = Simulator()
        prof = KernelProfiler()
        sim.profiler = prof
        sim.schedule(10, lambda: None, label="a:tick")
        sim.schedule(20, lambda: None, label="b:tick")
        sim.run()
        assert prof.total_events == 2
        (row,) = prof.rows()
        assert row[0] == "tick" and row[1] == 2

    def test_publish_mirrors_rows_into_registry(self):
        reg = MetricsRegistry()
        prof = KernelProfiler()
        prof.account("x:work", 1_000)
        prof.publish(reg)
        snap = reg.snapshot()
        assert snap["kernel.profile.events"]["series"][0]["labels"] == {
            "label": "work"
        }
        assert reg.value_of("kernel.profile.wall_ns", "work") == 1_000
        assert reg.value_of("kernel.dispatch_rate_per_s") > 0

    def test_summary_lists_hot_labels(self):
        prof = KernelProfiler()
        prof.account("x:work", 1_000)
        text = prof.summary()
        assert "kernel profile: 1 events" in text
        assert "work" in text
