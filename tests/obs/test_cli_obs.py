"""CLI surface of the observability stack: spans / obs report / bench-report."""

from __future__ import annotations

import json

from repro.cli import main


class TestSpansCommand:
    def test_clean_run_full_coverage(self, capsys, tmp_path):
        out = tmp_path / "bundle"
        status = main([
            "spans", "--summary", "--masters", "2", "--slaves", "4",
            "--requests", "8", "--hyperperiods", "1",
            "--out", str(out),
        ])
        assert status == 0
        text = capsys.readouterr().out
        assert "worst coverage 1.000" in text
        assert "0 anomalies" in text
        assert "wire" in text  # the attribution table printed
        assert (out / "spans.jsonl").exists()
        assert (out / "anomalies.jsonl").exists()
        # the emitted bundle passes its own schema gate
        assert main(["obs", "check", str(out)]) == 0

    def test_lossy_run_attributes_backoff(self, capsys):
        status = main([
            "spans", "--summary", "--signal-loss", "0.2",
            "--requests", "12", "--seed", "55",
        ])
        assert status == 0
        text = capsys.readouterr().out
        assert "worst coverage 1.000" in text

    def test_min_coverage_gate_can_fail(self, capsys):
        # an impossible threshold flips the exit status, nothing else
        status = main([
            "spans", "--masters", "2", "--slaves", "4", "--requests", "4",
            "--hyperperiods", "1", "--min-coverage", "1.01",
        ])
        assert status == 1
        assert "ATTRIBUTION GAP" in capsys.readouterr().err


class TestObsReport:
    def test_report_renders_bundle(self, capsys, tmp_path):
        out = tmp_path / "bundle"
        assert main([
            "spans", "--masters", "2", "--slaves", "4", "--requests", "6",
            "--hyperperiods", "1", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        status = main(["obs", "report", str(out)])
        assert status == 0
        text = capsys.readouterr().out
        assert "spans in" in text
        assert "signal.request" in text
        assert "wire" in text

    def test_report_without_spans_errors(self, capsys, tmp_path):
        status = main(["obs", "report", str(tmp_path)])
        assert status == 2
        assert "no spans.jsonl" in capsys.readouterr().err


class TestBenchReport:
    @staticmethod
    def _write(directory, name, wall_s, **extra):
        directory.mkdir(parents=True, exist_ok=True)
        record = {
            "name": name,
            "wall_s": wall_s,
            "tests": [
                {"test": "test_x", "wall_s": wall_s, "outcome": "passed"},
            ],
            **extra,
        }
        (directory / f"BENCH_{name}.json").write_text(
            json.dumps(record) + "\n"
        )

    def test_renders_table(self, capsys, tmp_path):
        self._write(tmp_path, "bench_one", 1.5, throughput=2000.0)
        self._write(tmp_path, "bench_two", 0.5, overhead_pct=3.2)
        status = main(["bench-report", str(tmp_path)])
        assert status == 0
        text = capsys.readouterr().out
        assert "bench_one" in text and "bench_two" in text
        assert "2000" in text and "3.2%" in text

    def test_baseline_ratio_column(self, capsys, tmp_path):
        current, base = tmp_path / "now", tmp_path / "before"
        self._write(current, "bench_one", 2.0)
        self._write(base, "bench_one", 1.0)
        status = main([
            "bench-report", str(current), "--baseline", str(base),
        ])
        assert status == 0
        text = capsys.readouterr().out
        assert "vs baseline" in text
        assert "2.00x" in text

    def test_empty_dir_exits_2(self, capsys, tmp_path):
        assert main(["bench-report", str(tmp_path)]) == 2
        assert "no BENCH_" in capsys.readouterr().err

    def test_schema_violation_exits_1(self, capsys, tmp_path):
        (tmp_path / "BENCH_broken.json").write_text(
            json.dumps({"name": "broken"})
        )
        assert main(["bench-report", str(tmp_path)]) == 1
        assert "SCHEMA ERROR" in capsys.readouterr().out
