"""SpanTracker unit behaviour plus end-to-end span capture."""

from __future__ import annotations

import json

import pytest

from repro.core.channel import ChannelSpec
from repro.experiments.robustness import run_signal_loss_robustness
from repro.experiments.validation import run_validation
from repro.obs import (
    SPAN_SCHEMA,
    Span,
    SpanTracker,
    Telemetry,
    TelemetryConfig,
    span_from_dict,
    span_jsonl_lines,
    summarize_requests,
    validate,
)


# -- tracker primitives ----------------------------------------------------


def test_trace_root_ids_and_children():
    tracker = SpanTracker()
    root = tracker.begin_trace("signal.request", "m0", 100)
    assert root.span_id == root.trace_id == 0
    assert root.parent_id == -1
    child = tracker.child(root.trace_id, root.span_id, "wire", "m0->switch",
                          100, 200)
    assert child.span_id == 1
    assert child.trace_id == 0
    assert child.parent_id == 0
    assert len(tracker) == 2


def test_request_lifecycle_sets_status_and_closes():
    tracker = SpanTracker()
    root = tracker.begin_request("m0", 7, 50, {"destination": "s1"})
    assert tracker.request_root("m0", 7) is root
    closed = tracker.end_request("m0", 7, 950, "accepted")
    assert closed is root
    assert root.end_ns == 950
    assert root.fields["status"] == "accepted"
    # second end is a no-op (timed-out roots must not be re-closed by a
    # late response)
    assert tracker.end_request("m0", 7, 1000, "late") is None
    assert root.end_ns == 950


def test_capacity_bound_drops_oldest():
    tracker = SpanTracker(capacity=3)
    for i in range(5):
        tracker.begin_trace("t", "s", i)
    assert len(tracker) == 3
    assert tracker.dropped == 2
    assert [s.start_ns for s in tracker] == [2, 3, 4]
    # the ID counter keeps advancing past dropped spans
    assert tracker.next_id == 5


def test_frame_threading_queue_then_wire():
    tracker = SpanTracker()
    root = tracker.begin_trace("channel", "m0", 0)
    tracker.attach_frame(11, root.trace_id, root.span_id)
    assert tracker.frame_context(11) == (root.trace_id, root.span_id)
    tracker.frame_enqueued(11, 10, "uplink:m0")
    tracker.frame_transmit(11, 40, 60, "m0->switch")
    names = [(s.name, s.start_ns, s.end_ns) for s in tracker]
    assert ("queue", 10, 40) in names
    assert ("wire", 40, 60) in names
    tracker.frame_done(11)
    assert tracker.frame_context(11) is None


def test_zero_queue_wait_elided():
    tracker = SpanTracker()
    root = tracker.begin_trace("channel", "m0", 0)
    tracker.attach_frame(5, root.trace_id, root.span_id)
    tracker.frame_enqueued(5, 40, "uplink:m0")
    tracker.frame_transmit(5, 40, 60, "m0->switch")
    assert [s.name for s in tracker] == ["channel", "wire"]


def test_frame_lost_pops_context_and_records_cause():
    tracker = SpanTracker()
    root = tracker.begin_trace("signal.request", "m0", 0)
    tracker.attach_frame(3, root.trace_id, root.span_id)
    tracker.frame_lost(3, 70, "m0->switch", "corruption")
    assert tracker.frame_context(3) is None
    lost = [s for s in tracker if s.name == "lost"]
    assert len(lost) == 1
    assert lost[0].fields == {"cause": "corruption"}
    assert lost[0].start_ns == lost[0].end_ns == 70


def test_lease_lifecycle_outcomes():
    tracker = SpanTracker()
    root = tracker.begin_trace("signal.request", "m0", 0)
    tracker.lease_armed(9, root.trace_id, root.span_id, 10, 5010)
    tracker.lease_resolved(9, 300)
    lease = [s for s in tracker if s.name == "lease"][0]
    assert lease.end_ns == 300
    assert lease.fields["outcome"] == "resolved"
    tracker.lease_armed(10, root.trace_id, root.span_id, 400, 5400)
    tracker.lease_reclaimed(10, 5400)
    reclaimed = [s for s in tracker if s.name == "lease"][1]
    assert reclaimed.fields["outcome"] == "reclaimed"


def test_absorb_rebases_ids_to_serial_stream():
    # serial reference: two "work units" on one tracker
    serial = SpanTracker()
    for unit in range(2):
        root = serial.begin_trace("sweep.run", f"unit{unit}", 0)
        serial.event(root.trace_id, root.span_id, "admission", "m0", 5)
    # parallel: each unit on its own tracker, absorbed in unit order
    parent = SpanTracker()
    for unit in range(2):
        worker = SpanTracker()
        root = worker.begin_trace("sweep.run", f"unit{unit}", 0)
        worker.event(root.trace_id, root.span_id, "admission", "m0", 5)
        parent.absorb(worker.spans, worker.next_id, worker.dropped)
    assert [s.as_dict() for s in parent] == [s.as_dict() for s in serial]
    assert parent.next_id == serial.next_id


def test_span_jsonl_roundtrip_and_schema():
    tracker = SpanTracker()
    root = tracker.begin_trace("signal.request", "m0", 0, {"request": 1})
    tracker.child(root.trace_id, root.span_id, "wire", "m0->switch", 0, 20)
    lines = list(span_jsonl_lines(tracker))
    for line in lines:
        record = json.loads(line)
        assert validate(record, SPAN_SCHEMA) == []
        rebuilt = span_from_dict(record)
        assert rebuilt.as_dict() == record


# -- attribution -----------------------------------------------------------


def _attribution_fixture():
    tracker = SpanTracker()
    root = tracker.begin_request("m0", 1, 0)
    tracker.child(root.trace_id, root.span_id, "queue", "uplink:m0", 0, 10)
    tracker.child(root.trace_id, root.span_id, "wire", "m0->switch", 10, 40)
    tracker.child(root.trace_id, root.span_id, "processing", "switch", 40, 45)
    tracker.child(root.trace_id, root.span_id, "wire", "switch->s0", 45, 75)
    tracker.event(root.trace_id, root.span_id, "admission", "switch", 45,
                  {"verdict": "accept", "compute_ns": 123})
    tracker.end_request("m0", 1, 100, "accepted")
    return tracker


def test_summarize_partitions_latency():
    attrs = summarize_requests(_attribution_fixture())
    assert len(attrs) == 1
    a = attrs[0]
    assert a.queue_ns == 10
    assert a.wire_ns == 60
    assert a.processing_ns == 5
    assert a.backoff_ns == 25  # 100 total - 75 covered
    assert a.total_ns == 100
    assert a.coverage == 1.0
    assert a.admission_events == 1
    assert a.admission_compute_ns == 123
    assert a.status == "accepted"


def test_summarize_overlaps_never_double_count():
    tracker = SpanTracker()
    root = tracker.begin_request("m0", 1, 0)
    # an original and a retransmission overlap on the wire
    tracker.child(root.trace_id, root.span_id, "wire", "a", 0, 50)
    tracker.child(root.trace_id, root.span_id, "wire", "b", 30, 60)
    tracker.end_request("m0", 1, 60, "accepted")
    (a,) = summarize_requests(tracker)
    assert a.wire_ns == 60
    assert a.backoff_ns == 0
    assert a.coverage == 1.0


def test_summarize_skips_open_roots():
    tracker = SpanTracker()
    tracker.begin_request("m0", 1, 0)  # never resolved
    assert summarize_requests(tracker) == []


# -- end-to-end capture ----------------------------------------------------


def test_validation_run_attributes_full_latency():
    telemetry = Telemetry(TelemetryConfig(spans=True))
    run_validation(
        n_masters=2, n_slaves=4, n_requests=10, hyperperiods=1, seed=55,
        use_wire_handshake=True, telemetry=telemetry,
    )
    attrs = summarize_requests(telemetry.spans)
    assert len(attrs) == 10
    for a in attrs:
        assert a.coverage == pytest.approx(1.0)
        assert a.status == "accepted"
        assert a.wire_ns > 0
        assert a.processing_ns > 0
        assert a.backoff_ns == 0  # error-free wire: no retransmissions
        assert a.admission_events == 1


def test_lossy_run_attributes_backoff():
    telemetry = Telemetry(TelemetryConfig(spans=True))
    run_signal_loss_robustness(
        loss_rate=0.2, n_requests=20, seed=55, telemetry=telemetry,
    )
    attrs = summarize_requests(telemetry.spans)
    assert len(attrs) == 20
    assert all(a.coverage >= 0.99 for a in attrs)
    # at 20% loss some request must have waited on a retry timer
    assert any(a.backoff_ns > 0 for a in attrs)
    assert any(a.retries > 0 for a in attrs)
    # lost control frames show up as loss events inside request traces
    assert any(s.name == "lost" for s in telemetry.spans)


def test_spans_record_lease_and_teardown():
    telemetry = Telemetry(TelemetryConfig(spans=True))
    run_signal_loss_robustness(
        loss_rate=0.2, n_requests=20, seed=55, telemetry=telemetry,
    )
    names = {s.name for s in telemetry.spans}
    assert "lease" in names
    assert "teardown" in names
    # every closed lease carries its outcome
    for span in telemetry.spans:
        if span.name == "lease" and span.end_ns >= 0:
            assert span.fields["outcome"] in ("resolved", "reclaimed")


def test_spans_disabled_attribute_is_none():
    telemetry = Telemetry(TelemetryConfig(spans=False))
    assert telemetry.spans is None


def test_measure_compute_stamps_wall_time():
    telemetry = Telemetry(TelemetryConfig(spans=True, measure_compute=True))
    run_validation(
        n_masters=2, n_slaves=4, n_requests=6, hyperperiods=1, seed=55,
        use_wire_handshake=True, telemetry=telemetry,
    )
    attrs = summarize_requests(telemetry.spans)
    assert sum(a.admission_compute_ns for a in attrs) > 0


def test_fabric_run_emits_per_hop_spans():
    from repro.multiswitch.fabric import SwitchFabric
    from repro.multiswitch.simnet import build_fabric_network

    fabric = SwitchFabric.chain(2, nodes_per_switch=2)
    telemetry = Telemetry(TelemetryConfig(spans=True))
    net = build_fabric_network(fabric, telemetry=telemetry)
    nodes = sorted(net.nodes)
    channel = net.establish(
        nodes[0], nodes[-1], ChannelSpec(capacity=1, period=8, deadline=8)
    )
    assert channel is not None
    net.start_all_sources(stop_after_messages=2)
    net.sim.run()
    by_name: dict[str, int] = {}
    for span in telemetry.spans:
        by_name[span.name] = by_name.get(span.name, 0) + 1
    # 2 messages x 3 hops of wire, x 2 switch traversals of processing
    assert by_name["wire"] == 6
    assert by_name["processing"] == 4
    assert by_name["channel"] == 1
    assert by_name["admission"] == 1
    # all hop segments belong to the channel's single trace
    roots = [s for s in telemetry.spans if s.parent_id < 0]
    assert len(roots) == 1
    assert all(
        s.trace_id == roots[0].trace_id
        for s in telemetry.spans
        if s.name in ("wire", "processing")
    )


def test_absorb_copies_fields():
    worker = SpanTracker()
    root = worker.begin_trace("t", "s", 0, {"k": 1})
    parent = SpanTracker()
    parent.absorb(worker.spans, worker.next_id)
    absorbed = parent.spans[0]
    assert absorbed.fields == {"k": 1}
    root.fields["k"] = 2
    assert absorbed.fields == {"k": 1}  # deep-enough copy


def test_span_dataclass_open_default():
    span = Span(0, 0, -1, "x", "s", 10)
    assert span.end_ns == -1
    assert "fields" not in span.as_dict()
