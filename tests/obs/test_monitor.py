"""Invariant-monitor behaviour, including the ISSUE's mutation tests.

The monitor's job is to notice when the system breaks a guarantee it
was built to uphold. Since the healthy code never breaks them, these
tests *inject* the violations -- an inflated delivery delay past the
network-calculus bound, a leaked switch-side lease, an overbooked link
-- and assert the full response: a schema-valid anomaly record, one
automatic flight-recorder dump, and (in fail-fast mode) an
:class:`InvariantViolation` that aborts the run.
"""

from __future__ import annotations

import json

import pytest

from repro.core.admission import AdmissionController, SystemState
from repro.core.channel import ChannelSpec, DeadlinePartition, RTChannel
from repro.core.partitioning import SymmetricDPS
from repro.errors import InvariantViolation
from repro.experiments.validation import run_validation
from repro.obs import (
    ANOMALY_SCHEMA,
    FLIGHT_SCHEMA,
    InvariantMonitor,
    Telemetry,
    TelemetryConfig,
    validate,
)


def _deliveries(monitor, channel_id=1, delay_ns=500, missed=False, now=1000):
    monitor.on_rt_delivery(channel_id, delay_ns, missed, now)


# -- delivery-time bound checks --------------------------------------------


def test_clean_delivery_emits_nothing():
    monitor = InvariantMonitor(bound_provider=lambda: {1: 1000})
    _deliveries(monitor, delay_ns=999)
    assert monitor.anomalies == []


def test_inflated_delay_trips_netcalc_bound():
    monitor = InvariantMonitor(bound_provider=lambda: {1: 1000})
    _deliveries(monitor, delay_ns=1001)
    (anomaly,) = monitor.anomalies
    assert anomaly["invariant"] == "netcalc-bound"
    assert anomaly["severity"] == "critical"
    assert anomaly["fields"]["delay_ns"] == 1001
    assert anomaly["fields"]["bound_ns"] == 1000
    assert validate(anomaly, ANOMALY_SCHEMA) == []


def test_paper_bound_miss_trips_independently():
    # no bound provider at all: the paper-bound check still fires
    monitor = InvariantMonitor()
    _deliveries(monitor, missed=True)
    (anomaly,) = monitor.anomalies
    assert anomaly["invariant"] == "paper-bound"
    assert validate(anomaly, ANOMALY_SCHEMA) == []


def test_bound_cache_refreshes_on_unknown_channel():
    calls = []

    def provider():
        calls.append(1)
        return {1: 1000, 2: 2000}

    monitor = InvariantMonitor(bound_provider=provider)
    _deliveries(monitor, channel_id=1, delay_ns=10)
    _deliveries(monitor, channel_id=2, delay_ns=10)
    assert len(calls) == 1  # second channel was already in the cache
    assert monitor.netcalc_bound_ns(2) == 2000


def test_fail_fast_raises_with_anomaly_attached():
    monitor = InvariantMonitor(
        bound_provider=lambda: {1: 1000}, fail_fast=True
    )
    with pytest.raises(InvariantViolation) as excinfo:
        _deliveries(monitor, delay_ns=5000)
    assert excinfo.value.anomaly["invariant"] == "netcalc-bound"
    # the record was kept even though the check raised
    assert monitor.anomalies == [excinfo.value.anomaly]


# -- structural invariants -------------------------------------------------


def _overbooked_state() -> SystemState:
    """A SystemState mutated past what admission would ever allow.

    Channels are installed directly (bypassing the controller), each
    reserving 6/8 of its links -- two of them overbook node ``a``'s
    uplink to 12/8.
    """
    state = SystemState(nodes=["a", "b", "c"])
    for channel_id, destination in ((1, "b"), (2, "c")):
        channel = RTChannel(
            source="a",
            destination=destination,
            spec=ChannelSpec(period=8, capacity=6, deadline=16),
            channel_id=channel_id,
            partition=DeadlinePartition(uplink=8, downlink=8),
        )
        state.install(channel)
    return state


def test_overbooked_link_trips_check_links():
    monitor = InvariantMonitor()
    emitted = monitor.check_links(_overbooked_state(), now_ns=123)
    assert emitted == 1
    (anomaly,) = monitor.anomalies
    assert anomaly["invariant"] == "link-overbooking"
    assert anomaly["subject"] == "a->sw"  # str(LinkRef) of a's uplink
    assert validate(anomaly, ANOMALY_SCHEMA) == []


def test_admitted_state_passes_check_links():
    state = SystemState(nodes=["a", "b", "c"])
    controller = AdmissionController(state, SymmetricDPS())
    spec = ChannelSpec(period=8, capacity=1, deadline=8)
    assert controller.request("a", "b", spec).accepted
    assert controller.request("a", "c", spec).accepted
    monitor = InvariantMonitor()
    assert monitor.check_links(state, now_ns=0) == 0
    assert monitor.anomalies == []


class _LeakyManager:
    """Stand-in exposing the one method ``check_leases`` consumes."""

    def __init__(self, leases):
        self._leases = leases

    def pending_offer_leases(self):
        return tuple(self._leases)


def test_expired_lease_trips_check_leases():
    monitor = InvariantMonitor()
    emitted = monitor.check_leases(
        _LeakyManager([(7, 100), (8, 900)]), now_ns=500
    )
    assert emitted == 1
    (anomaly,) = monitor.anomalies
    assert anomaly["invariant"] == "lease-leak"
    assert anomaly["subject"] == "channel-7"
    assert anomaly["fields"]["expires_ns"] == 100
    assert validate(anomaly, ANOMALY_SCHEMA) == []


def test_live_lease_passes_check_leases():
    monitor = InvariantMonitor()
    assert monitor.check_leases(_LeakyManager([(7, 900)]), now_ns=500) == 0


# -- flight-dump coupling --------------------------------------------------


def test_first_anomaly_dumps_flight_once(tmp_path):
    telemetry = Telemetry(TelemetryConfig(
        spans=True, monitor=True, flight_dir=str(tmp_path),
    ))
    telemetry.monitor.bound_provider = lambda: {1: 1000}
    telemetry.monitor.on_rt_delivery(1, 2000, False, 100)
    telemetry.monitor.on_rt_delivery(1, 3000, False, 200)
    dump = tmp_path / "flight.json"
    assert dump.exists()
    assert not (tmp_path / "flight.1.json").exists()  # no re-dump storm
    payload = json.loads(dump.read_text())
    assert validate(payload, FLIGHT_SCHEMA) == []
    assert payload["reason"] == "anomaly:netcalc-bound"
    assert payload["time_ns"] == 100
    # the dump captured the first anomaly (the second postdates it)
    assert [a["time"] for a in payload["anomalies"]] == [100]
    assert len(telemetry.monitor.anomalies) == 2


# -- end-to-end mutation: a sabotaged bound aborts a real run --------------


def test_mutation_inflated_delay_aborts_simulated_run(tmp_path):
    """EXP-O3's mutation gate, end to end.

    A clean validation run is silent. The same run with the netcalc
    bounds sabotaged to 1 ns (so every delivered frame's delay is
    "inflated past its bound") must emit the anomaly, write the flight
    dump, and -- in fail-fast mode -- abort the simulation with
    :class:`InvariantViolation`.
    """
    clean = Telemetry(TelemetryConfig(spans=True, monitor=True))
    run_validation(
        n_masters=2, n_slaves=4, n_requests=6, hyperperiods=1, seed=55,
        use_wire_handshake=True, telemetry=clean,
    )
    assert clean.monitor.anomalies == []

    mutated = Telemetry(TelemetryConfig(
        spans=True, monitor=True, fail_fast=True, flight_dir=str(tmp_path),
    ))
    # instrument_star only installs the real provider when none is set,
    # so pre-seeding a poisoned one is exactly the supported override
    # point (channel IDs are small ints from the switch's counter)
    mutated.monitor.bound_provider = lambda: {
        cid: 1 for cid in range(1, 4096)
    }
    with pytest.raises(InvariantViolation):
        run_validation(
            n_masters=2, n_slaves=4, n_requests=6, hyperperiods=1, seed=55,
            use_wire_handshake=True, telemetry=mutated,
        )
    (first, *_rest) = mutated.monitor.anomalies
    assert first["invariant"] == "netcalc-bound"
    dump = json.loads((tmp_path / "flight.json").read_text())
    assert validate(dump, FLIGHT_SCHEMA) == []
    assert dump["reason"] == "anomaly:netcalc-bound"
    assert dump["events"]  # spans were captured into the black box
    # the kernel's crash hook wrote a second capture as the exception
    # unwound the dispatch loop
    assert (tmp_path / "flight.1.json").exists()
    crash = json.loads((tmp_path / "flight.1.json").read_text())
    assert crash["reason"] == "crash:InvariantViolation"


def test_mutation_leaked_lease_emits_and_dumps(tmp_path):
    telemetry = Telemetry(TelemetryConfig(
        spans=True, monitor=True, flight_dir=str(tmp_path),
    ))
    emitted = telemetry.monitor.check_leases(
        _LeakyManager([(3, 1_000)]), now_ns=2_000
    )
    assert emitted == 1
    dump = json.loads((tmp_path / "flight.json").read_text())
    assert dump["reason"] == "anomaly:lease-leak"
    assert validate(dump, FLIGHT_SCHEMA) == []
