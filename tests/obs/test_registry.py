"""MetricsRegistry: label semantics, bucket edges, snapshot shape."""

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import DEFAULT_LATENCY_BUCKETS_NS, MetricsRegistry
from repro.obs.schema import METRICS_SCHEMA, validate


class TestLabels:
    def test_children_are_memoized_per_label_values(self):
        reg = MetricsRegistry()
        family = reg.counter("frames", labels=("link",))
        assert family.labels("a") is family.labels("a")
        assert family.labels("a") is not family.labels("b")

    def test_label_values_are_str_coerced(self):
        reg = MetricsRegistry()
        family = reg.counter("by_channel", labels=("channel",))
        family.labels(7).inc()
        assert family.labels("7").value == 1

    def test_wrong_label_count_rejected(self):
        reg = MetricsRegistry()
        family = reg.counter("c", labels=("a", "b"))
        with pytest.raises(ConfigurationError):
            family.labels("only-one")

    def test_unlabeled_family_has_default_child(self):
        reg = MetricsRegistry()
        reg.counter("plain").inc(3)
        assert reg.value_of("plain") == 3

    def test_reregistration_same_shape_returns_same_family(self):
        reg = MetricsRegistry()
        first = reg.counter("x", labels=("l",))
        assert reg.counter("x", labels=("l",)) is first

    def test_reregistration_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_reregistration_label_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x", labels=("a",))
        with pytest.raises(ConfigurationError):
            reg.counter("x", labels=("b",))


class TestCounterGauge:
    def test_counter_rejects_negative_increment(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("c").inc(-1)

    def test_gauge_set_inc_dec_set_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("g").labels()
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12
        g.set_max(7)
        assert g.value == 12
        g.set_max(20)
        assert g.value == 20


class TestHistogramBuckets:
    def test_observation_on_edge_counts_into_that_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(10, 20, 30)).labels()
        h.observe(10)  # exactly on the first edge
        h.observe(11)
        h.observe(30)  # exactly on the last edge
        h.observe(31)  # overflow -> +Inf
        data = h.to_dict()
        by_le = {b["le"]: b["count"] for b in data["buckets"]}
        assert by_le[10] == 1
        assert by_le[20] == 1
        assert by_le[30] == 1
        assert by_le["+Inf"] == 1
        assert data["count"] == 4
        assert data["sum"] == 10 + 11 + 30 + 31
        assert data["min"] == 10 and data["max"] == 31

    def test_default_buckets_are_strictly_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS_NS) == sorted(
            set(DEFAULT_LATENCY_BUCKETS_NS)
        )

    def test_invalid_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.histogram("bad", buckets=())
        with pytest.raises(ConfigurationError):
            reg.histogram("bad2", buckets=(5, 5))


class TestSnapshot:
    def test_snapshot_runs_collectors_and_matches_schema(self):
        reg = MetricsRegistry()
        reg.counter("frames", labels=("link",)).labels("up").inc(4)
        reg.histogram("delay", buckets=(100, 200)).observe(150)
        gauge = reg.gauge("depth").labels()
        reg.add_collector(lambda: gauge.set(42))
        snap = reg.snapshot()
        assert validate(snap, METRICS_SCHEMA) == []
        assert snap["depth"]["series"][0]["value"] == 42
        assert snap["frames"]["series"][0]["labels"] == {"link": "up"}

    def test_value_of_and_contains(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels=("kind",)).labels("memo").inc()
        assert "hits" in reg
        assert reg.value_of("hits", "memo") == 1


class TestMerge:
    def populated(self):
        reg = MetricsRegistry()
        reg.counter("frames", labels=("link",)).labels("up").inc(4)
        reg.gauge("depth").labels().set(10)
        h = reg.histogram("delay", buckets=(100, 200)).labels()
        h.observe(50)
        h.observe(250)
        return reg

    def test_merge_into_empty_reproduces_snapshot(self):
        source = self.populated()
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_counters_and_gauges_add(self):
        a = self.populated()
        b = self.populated()
        a.merge(b.snapshot())
        assert a.value_of("frames", "up") == 8
        assert a.value_of("depth") == 20

    def test_histograms_add_buckets_and_fold_min_max(self):
        a = MetricsRegistry()
        a.histogram("delay", buckets=(100, 200)).observe(150)
        b = MetricsRegistry()
        hb = b.histogram("delay", buckets=(100, 200)).labels()
        hb.observe(50)
        hb.observe(250)
        a.merge(b.snapshot())
        data = a.snapshot()["delay"]["series"][0]
        by_le = {bucket["le"]: bucket["count"] for bucket in data["buckets"]}
        assert by_le == {100: 1, 200: 1, "+Inf": 1}
        assert data["count"] == 3
        assert data["sum"] == 150 + 50 + 250
        assert data["min"] == 50 and data["max"] == 250

    def test_merge_twice_doubles(self):
        source = self.populated()
        target = MetricsRegistry()
        target.merge(source.snapshot())
        target.merge(source.snapshot())
        assert target.value_of("frames", "up") == 8

    def test_kind_mismatch_rejected(self):
        target = MetricsRegistry()
        target.gauge("frames", labels=("link",))
        source = MetricsRegistry()
        source.counter("frames", labels=("link",)).labels("up").inc()
        with pytest.raises(ConfigurationError):
            target.merge(source.snapshot())

    def test_bucket_edge_mismatch_rejected(self):
        target = MetricsRegistry()
        target.histogram("delay", buckets=(100, 200)).observe(1)
        source = MetricsRegistry()
        source.histogram("delay", buckets=(100, 300)).observe(1)
        with pytest.raises(ConfigurationError):
            target.merge(source.snapshot())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().merge(
                {"weird": {"type": "summary", "series": []}}
            )

    def test_merged_snapshot_matches_schema(self):
        target = MetricsRegistry()
        target.merge(self.populated().snapshot())
        assert validate(target.snapshot(), METRICS_SCHEMA) == []
