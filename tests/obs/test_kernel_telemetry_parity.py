"""Differential test: the calendar kernel's telemetry is the heap's.

``tests/sim/test_calendar_queue.py`` proves the two event queues
dispatch identical ``(time, seq)`` streams on synthetic programs. This
test holds the stronger, user-facing claim on a real workload: a full
signalling-plus-data run under control-frame loss, observed through a
*fully loaded* telemetry bundle (trace recorder, causal spans, probes,
invariant monitor, kernel profiler), produces byte-identical trace and
span streams, identical probe sample series, identical metric values,
and the same profiler label rows on either kernel. Anything less means
the queue choice leaks into observables -- which would make calendar
runs non-reproducible against heap baselines.
"""

from __future__ import annotations

from repro.core.partitioning import AsymmetricDPS
from repro.faults import FaultPlan
from repro.network.topology import build_star
from repro.obs import (
    Telemetry,
    TelemetryConfig,
    span_jsonl_lines,
    trace_jsonl_lines,
)
from repro.experiments.robustness import SIGNAL_RETRY_POLICY
from repro.sim.rng import RngRegistry
from repro.traffic.patterns import master_slave_names, master_slave_requests
from repro.traffic.spec import FixedSpecSampler

_SEED = 909


def _run(queue: str):
    """One lossy handshake + data-phase run on the given kernel."""
    telemetry = Telemetry(TelemetryConfig(
        spans=True, monitor=True, profile=True, probe_cadence_ns=1_000_000,
    ))
    masters, slaves = master_slave_names(2, 4)
    net = build_star(
        masters + slaves,
        dps=AsymmetricDPS(),
        fault_plan=FaultPlan.signalling_loss(0.2, seed=_SEED),
        telemetry=telemetry,
        queue=queue,
    )
    assert net.sim.queue_kind == queue

    outcomes = []
    retry_rng = RngRegistry(_SEED).stream("signal-retry-jitter")
    request_rng = RngRegistry(_SEED).stream("parity-requests")
    for request in master_slave_requests(
        masters, slaves, 10, FixedSpecSampler.paper_default(), request_rng
    ):
        destination = net.node(request.destination)
        net.node(request.source).request_channel(
            destination_mac=destination.mac,
            destination_ip=destination.ip,
            destination_name=request.destination,
            spec=request.spec,
            on_complete=lambda record, grant: outcomes.append(
                (record, grant)
            ),
            retry=SIGNAL_RETRY_POLICY,
            retry_rng=retry_rng,
        )
        net.sim.run()

    grants = [g for _, g in outcomes if g is not None]
    for grant in grants:
        net.node(grant.source).start_periodic_source(
            grant.channel_id, stop_after_messages=2
        )
    net.sim.run()
    # tear half the channels down so teardown spans are exercised too
    for grant in grants[: len(grants) // 2]:
        net.node(grant.source).teardown_channel(grant.channel_id)
    net.sim.run()

    telemetry.check_invariants(net)
    return net, telemetry


def _strip_wall_times(snapshot: dict) -> dict:
    """Metrics snapshot minus the wall-clock profiler timings.

    Profiler *values* are host wall times (legitimately different per
    run); the label rows and event counts must still match exactly.
    """
    cleaned = {}
    for name, family in snapshot.items():
        if name in ("kernel.profile.wall_ns", "kernel.profile.max_ns",
                    "kernel.profile.share", "kernel.dispatch_rate_per_s"):
            cleaned[name] = {
                "labels": sorted(
                    str(s["labels"]) for s in family["series"]
                ),
            }
        else:
            cleaned[name] = family
    return cleaned


def test_calendar_kernel_telemetry_matches_heap():
    net_heap, tel_heap = _run("heap")
    net_cal, tel_cal = _run("calendar")

    # decision-stream parity first: same channels installed, same clock
    assert (
        set(net_cal.admission.state.channels)
        == set(net_heap.admission.state.channels)
    )
    assert net_cal.sim.now == net_heap.sim.now
    assert net_cal.sim.dispatched_events == net_heap.sim.dispatched_events

    # byte-identical structured trace
    trace_heap = "\n".join(trace_jsonl_lines(tel_heap.recorder))
    trace_cal = "\n".join(trace_jsonl_lines(tel_cal.recorder))
    assert trace_cal == trace_heap
    assert len(tel_heap.recorder) > 0

    # byte-identical span stream (IDs included -- allocation order is
    # part of the determinism contract)
    spans_heap = "\n".join(span_jsonl_lines(tel_heap.spans))
    spans_cal = "\n".join(span_jsonl_lines(tel_cal.spans))
    assert spans_cal == spans_heap
    assert len(tel_heap.spans) > 0

    # identical probe sample series (same cadence, same values)
    assert tel_cal.probes.to_dict() == tel_heap.probes.to_dict()

    # identical anomaly streams (clean run: both empty)
    assert tel_cal.monitor.anomalies == tel_heap.monitor.anomalies == []

    # metric families identical except profiler wall times, whose label
    # rows must still agree (same callbacks fired under either queue)
    assert _strip_wall_times(tel_cal.snapshot()) == _strip_wall_times(
        tel_heap.snapshot()
    )
