"""Deque-backed TraceRecorder: drop accounting, gating, fields payload."""

from repro.sim.trace import TraceRecorder


class TestCapacityEviction:
    def test_oldest_records_evicted_and_counted(self):
        rec = TraceRecorder(enabled=True, capacity=3)
        for t in range(5):
            rec.record(t, "cat", f"s{t}")
        assert len(rec) == 3
        assert rec.dropped == 2
        assert [r.time for r in rec] == [2, 3, 4]

    def test_unbounded_recorder_never_drops(self):
        rec = TraceRecorder(enabled=True)
        for t in range(100):
            rec.record(t, "cat", "s")
        assert len(rec) == 100
        assert rec.dropped == 0
        assert rec.capacity is None

    def test_clear_resets_drop_count(self):
        rec = TraceRecorder(enabled=True, capacity=1)
        rec.record(0, "a", "s")
        rec.record(1, "a", "s")
        assert rec.dropped == 1
        rec.clear()
        assert rec.dropped == 0
        assert len(rec) == 0


class TestGating:
    def test_disabled_recorder_stores_nothing(self):
        rec = TraceRecorder(enabled=False)
        rec.record(0, "cat", "s")
        assert len(rec) == 0
        assert not rec.enabled_for("cat")

    def test_prefix_filter_gates_enabled_for(self):
        rec = TraceRecorder(enabled=True, prefixes=("link.", "port."))
        assert rec.enabled_for("link.start")
        assert rec.enabled_for("port.rt_enqueue")
        assert not rec.enabled_for("signal.request")
        rec.record(0, "signal.request", "m0")
        rec.record(1, "link.start", "up")
        assert [r.category for r in rec] == ["link.start"]

    def test_enabled_for_lets_call_sites_skip_formatting(self):
        # the contract hot paths rely on: enabled_for False => record is
        # a no-op, so callers may skip building detail/fields entirely
        rec = TraceRecorder(enabled=False)
        assert not rec.enabled_for("anything")


class TestFields:
    def test_fields_preserved_and_optional(self):
        rec = TraceRecorder(enabled=True)
        rec.record(5, "link.start", "up", "frame#1", fields={"duration_ns": 42})
        rec.record(6, "link.idle", "up")
        records = list(rec)
        assert records[0].fields == {"duration_ns": 42}
        assert records[1].fields is None

    def test_by_category_and_summary_still_work(self):
        rec = TraceRecorder(enabled=True, capacity=10)
        rec.record(0, "a.x", "s")
        rec.record(1, "a.y", "s")
        rec.record(2, "b.z", "s")
        assert len(rec.by_category("a.x")) == 1
        assert len(rec.by_prefix("a.")) == 2
        assert "3 records" in rec.summary() or rec.summary()
