"""Flight-recorder snapshots, dump numbering, and crash capture."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    Telemetry,
    TelemetryConfig,
    validate,
)
from repro.sim.kernel import Simulator


def test_empty_recorder_snapshot_conforms():
    recorder = FlightRecorder()
    payload = recorder.snapshot("manual")
    assert validate(payload, FLIGHT_SCHEMA) == []
    assert payload == {
        "reason": "manual", "time_ns": -1,
        "events": [], "anomalies": [], "metrics": {},
    }


def test_providers_are_read_at_dump_time():
    spans: list[dict] = []
    recorder = FlightRecorder(
        span_provider=lambda: spans,
        metrics_provider=lambda: {"m": 1},
        anomaly_provider=lambda: [{"time": 0}],
    )
    spans.append({"span": 0})  # appended AFTER construction
    payload = recorder.snapshot("late", time_ns=42)
    assert payload["events"] == [{"span": 0}]
    assert payload["metrics"] == {"m": 1}
    assert payload["anomalies"] == [{"time": 0}]
    assert payload["time_ns"] == 42


def test_capacity_keeps_most_recent_spans():
    spans = [{"span": i} for i in range(10)]
    recorder = FlightRecorder(capacity=3, span_provider=lambda: spans)
    payload = recorder.snapshot("tail")
    assert payload["events"] == [{"span": 7}, {"span": 8}, {"span": 9}]


def test_repeated_dumps_get_numbered_suffixes(tmp_path):
    recorder = FlightRecorder()
    first = recorder.dump(tmp_path, "one")
    second = recorder.dump(tmp_path, "two")
    third = recorder.dump(tmp_path, "three")
    assert [p.name for p in (first, second, third)] == [
        "flight.json", "flight.1.json", "flight.2.json",
    ]
    assert recorder.dumps == [first, second, third]
    # the first capture is never overwritten
    assert json.loads(first.read_text())["reason"] == "one"
    assert json.loads(third.read_text())["reason"] == "three"


def test_kernel_crash_auto_dumps(tmp_path):
    """An exception escaping an event handler black-boxes the run."""
    telemetry = Telemetry(TelemetryConfig(
        spans=True, monitor=True, flight_dir=str(tmp_path),
    ))
    sim = Simulator()
    telemetry.attach_simulator(sim)
    telemetry.spans.begin_trace("signal.request", "m0", 0)

    def explode() -> None:
        raise RuntimeError("injected fault")

    sim.schedule(100, explode)
    with pytest.raises(RuntimeError, match="injected fault"):
        sim.run()
    dump = json.loads((tmp_path / "flight.json").read_text())
    assert validate(dump, FLIGHT_SCHEMA) == []
    assert dump["reason"] == "crash:RuntimeError"
    assert dump["time_ns"] == 100
    assert dump["events"][0]["name"] == "signal.request"


def test_no_flight_dir_means_no_auto_dump(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    telemetry = Telemetry(TelemetryConfig(spans=True, monitor=True))
    sim = Simulator()
    telemetry.attach_simulator(sim)

    def explode() -> None:
        raise RuntimeError("boom")

    sim.schedule(1, explode)
    with pytest.raises(RuntimeError):
        sim.run()
    assert list(tmp_path.iterdir()) == []  # nothing written anywhere


def test_flight_absent_without_spans_or_monitor():
    assert Telemetry(TelemetryConfig()).flight is None
    assert Telemetry(TelemetryConfig(spans=True)).flight is not None
    assert Telemetry(TelemetryConfig(monitor=True)).flight is not None
