"""Telemetry bundle end-to-end: emitted files and non-perturbation.

The two contracts that make telemetry safe to recommend:

* a fully instrumented validation run writes a bundle that passes the
  schema check (``repro obs check`` relies on ``validate_bundle``);
* attaching telemetry changes *nothing* about the simulation outcome --
  the ValidationReport (including the final simulated clock) is
  field-for-field identical with and without the bundle.
"""

import json

from repro.core.feasibility_cache import CacheStats
from repro.experiments.validation import run_validation
from repro.obs import Telemetry, TelemetryConfig, validate_bundle
from repro.obs.registry import MetricsRegistry
from repro.obs.schema import METRICS_SCHEMA, validate

_SMALL = dict(n_masters=2, n_slaves=6, n_requests=12, hyperperiods=1)


class TestBundleWrite:
    def test_instrumented_run_emits_valid_bundle(self, tmp_path):
        telemetry = Telemetry(
            TelemetryConfig(profile=True, probe_cadence_ns=500_000)
        )
        report = run_validation(telemetry=telemetry, **_SMALL)
        assert report.holds
        written = telemetry.write(tmp_path)
        assert set(written) == {
            "metrics", "timeseries", "trace_jsonl", "trace_chrome"
        }
        assert validate_bundle(tmp_path) == []

        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert validate(metrics, METRICS_SCHEMA) == []
        # the Eq. 18.1 observable made it into the histogram
        delay = metrics["rt.frame_delay_ns"]["series"][0]
        assert delay["count"] == report.frames_delivered
        # kernel gauges harvested by the attach_simulator collector
        assert metrics["kernel.now_ns"]["series"][0]["value"] > 0
        # profiler rows published
        assert metrics["kernel.dispatch_rate_per_s"]["series"][0]["value"] > 0
        # cache stats summed in from the admission controller
        assert any(k.startswith("feasibility_cache.") for k in metrics)

        series = json.loads((tmp_path / "timeseries.json").read_text())
        assert "link_utilization_mean" in series
        assert all(len(sample) == 2 for sample in series["link_utilization_mean"])

        lines = (tmp_path / "trace.jsonl").read_text().splitlines()
        assert lines, "instrumented run must record trace events"
        categories = {json.loads(line)["category"] for line in lines}
        assert "signal.request" in categories
        assert "link.start" in categories
        assert "rt.emit" in categories  # RT-layer segmentation traced

    def test_tracing_disabled_omits_trace_files(self, tmp_path):
        telemetry = Telemetry(
            TelemetryConfig(tracing=False, probe_cadence_ns=None)
        )
        run_validation(telemetry=telemetry, **_SMALL)
        written = telemetry.write(tmp_path)
        assert set(written) == {"metrics"}
        assert validate_bundle(tmp_path) == []


class TestCacheStatsPublish:
    def test_counters_mirrored_as_gauges(self):
        reg = MetricsRegistry()
        stats = CacheStats()
        stats.publish(reg)
        stats.checks = 7
        stats.memo_hits = 3
        snap = reg.snapshot()
        assert snap["feasibility_cache.checks"]["series"][0]["value"] == 7
        assert snap["feasibility_cache.memo_hits"]["series"][0]["value"] == 3
        stats.checks = 9  # collector re-reads on every snapshot
        snap = reg.snapshot()
        assert snap["feasibility_cache.checks"]["series"][0]["value"] == 9


class _FakeCache:
    """Minimal stand-in for a FeasibilityCache: just carries stats."""

    def __init__(self, **counts):
        self.stats = CacheStats(**counts)


class TestCacheRetirement:
    def test_retire_folds_totals_and_releases_reference(self):
        telemetry = Telemetry(TelemetryConfig(tracing=False))
        live = _FakeCache(checks=5, memo_hits=2)
        telemetry.track_cache(live)
        before = telemetry.snapshot()
        telemetry.retire_cache(live)
        assert telemetry._caches == []
        # the published gauges are unchanged by retirement
        after = telemetry.snapshot()
        assert (
            after["feasibility_cache.checks"]["series"][0]["value"]
            == before["feasibility_cache.checks"]["series"][0]["value"]
            == 5
        )
        assert after["feasibility_cache.memo_hits"]["series"][0]["value"] == 2

    def test_retired_totals_sum_with_live_caches(self):
        telemetry = Telemetry(TelemetryConfig(tracing=False))
        done = _FakeCache(checks=3)
        telemetry.track_cache(done)
        telemetry.retire_cache(done)
        telemetry.track_cache(_FakeCache(checks=4))
        snap = telemetry.snapshot()
        assert snap["feasibility_cache.checks"]["series"][0]["value"] == 7

    def test_retire_is_idempotent_and_tolerates_unknown(self):
        telemetry = Telemetry(TelemetryConfig(tracing=False))
        cache = _FakeCache(checks=1)
        telemetry.track_cache(cache)
        telemetry.retire_cache(cache)
        telemetry.retire_cache(cache)  # second retire: no double count
        telemetry.retire_cache(_FakeCache(checks=99))  # never tracked
        telemetry.retire_cache(None)
        snap = telemetry.snapshot()
        assert snap["feasibility_cache.checks"]["series"][0]["value"] == 1

    def test_sweep_holds_constant_cache_state(self):
        """A telemetry-attached sweep retires every controller's cache:
        bundle state stays O(1) however many (trial, scheme) runs ran."""
        from repro.core.partitioning import SymmetricDPS
        from repro.experiments.base import acceptance_curve
        from repro.traffic.patterns import (
            master_slave_names,
            master_slave_requests,
        )
        from repro.traffic.spec import FixedSpecSampler

        masters, slaves = master_slave_names(2, 6)
        sampler = FixedSpecSampler.paper_default()
        telemetry = Telemetry(
            TelemetryConfig(tracing=False, probe_cadence_ns=None)
        )
        acceptance_curve(
            node_names=masters + slaves,
            request_factory=lambda count, rng: master_slave_requests(
                masters, slaves, count, sampler, rng
            ),
            schemes={"sdps": SymmetricDPS},
            requested_counts=[5, 10],
            trials=8,
            seed=3,
            telemetry=telemetry,
        )
        assert len(telemetry._caches) == 0
        snap = telemetry.snapshot()
        assert snap["feasibility_cache.checks"]["series"][0]["value"] > 0


class TestNonPerturbation:
    def test_report_identical_with_and_without_telemetry(self):
        bare = run_validation(**_SMALL)
        instrumented = run_validation(
            telemetry=Telemetry(TelemetryConfig(profile=True)), **_SMALL
        )
        assert instrumented == bare  # frozen dataclass: field-for-field
        assert instrumented.simulated_ns == bare.simulated_ns

    def test_bundle_runs_are_reproducible(self, tmp_path):
        def capture(out):
            telemetry = Telemetry(TelemetryConfig(probe_cadence_ns=250_000))
            run_validation(telemetry=telemetry, **_SMALL)
            return telemetry.write(out)

        first = capture(tmp_path / "a")
        second = capture(tmp_path / "b")
        for name in first:
            assert (
                first[name].read_bytes() == second[name].read_bytes()
            ), f"{name} differs between identical runs"
