"""Exporters: JSONL round-trip and Chrome trace_event conformance."""

import json

from repro.obs.export import (
    chrome_trace,
    trace_jsonl_lines,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.schema import CHROME_TRACE_SCHEMA, TRACE_RECORD_SCHEMA, validate
from repro.sim.trace import TraceRecord


def _records():
    return [
        TraceRecord(1_000, "link.start", "m0->switch", "frame#1",
                    fields={"duration_ns": 12_000, "channel": 3}),
        TraceRecord(13_000, "link.deliver", "m0->switch", "frame#1",
                    fields={"channel": 3}),
        TraceRecord(13_000, "port.rt_enqueue", "switch->s1", "ch3",
                    fields={"depth": 1}),
        TraceRecord(13_500, "signal.request", "m1", "req ch4"),
    ]


class TestJsonl:
    def test_lines_round_trip_and_match_schema(self):
        lines = list(trace_jsonl_lines(_records()))
        assert len(lines) == 4
        for line in lines:
            obj = json.loads(line)
            assert validate(obj, TRACE_RECORD_SCHEMA) == []
        first = json.loads(lines[0])
        assert first["time"] == 1_000
        assert first["category"] == "link.start"
        assert first["fields"] == {"duration_ns": 12_000, "channel": 3}
        # records without fields omit the key entirely
        assert "fields" not in json.loads(lines[3])

    def test_write_trace_jsonl(self, tmp_path):
        path = write_trace_jsonl(_records(), tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 4
        assert json.loads(lines[-1])["subject"] == "m1"


class TestChromeTrace:
    def test_document_matches_schema(self):
        doc = chrome_trace(_records())
        assert validate(doc, CHROME_TRACE_SCHEMA) == []

    def test_duration_ns_becomes_complete_span(self):
        doc = chrome_trace(_records())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        span = spans[0]
        assert span["name"] == "link.start"
        assert span["ts"] == 1  # 1000 ns -> 1 us, exact
        assert span["dur"] == 12  # 12000 ns -> 12 us
        # duration_ns is consumed by the span; other fields become args
        assert span["args"] == {"detail": "frame#1", "channel": 3}

    def test_instants_and_metadata(self):
        doc = chrome_trace(_records())
        events = doc["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert all(e["s"] == "t" for e in instants)
        meta = [e for e in events if e["ph"] == "M"]
        proc_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        # one process per category top segment, in encounter order
        assert proc_names == {"link", "port", "signal"}
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert {"m0->switch", "switch->s1", "m1"} <= thread_names

    def test_subjects_share_tid_within_process(self):
        doc = chrome_trace(_records())
        link_events = [
            e for e in doc["traceEvents"]
            if e["ph"] != "M" and e["cat"] == "link"
        ]
        assert len({(e["pid"], e["tid"]) for e in link_events}) == 1

    def test_inexact_timestamp_falls_back_to_float(self):
        doc = chrome_trace([TraceRecord(1_500, "x.y", "s")])
        (event,) = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert event["ts"] == 1.5

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        path = write_chrome_trace(_records(), tmp_path / "trace.chrome.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ns"
        assert validate(doc, CHROME_TRACE_SCHEMA) == []
