"""Tests for repro.units: sizes, wire accounting, TimeBase conversions."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    ETH_MAX_FRAME_BYTES,
    ETH_MAX_PAYLOAD,
    ETH_MAX_WIRE_BYTES,
    ETH_MIN_FRAME_BYTES,
    ETH_MIN_WIRE_BYTES,
    TimeBase,
    frame_bytes_for_payload,
    wire_bytes,
)


class TestSizeConstants:
    def test_max_frame_is_1518(self):
        assert ETH_MAX_FRAME_BYTES == 1518

    def test_min_frame_is_64(self):
        assert ETH_MIN_FRAME_BYTES == 64

    def test_max_wire_is_1538(self):
        # 1518 + preamble 7 + SFD 1 + IFG 12
        assert ETH_MAX_WIRE_BYTES == 1538

    def test_min_wire_is_84(self):
        assert ETH_MIN_WIRE_BYTES == 84


class TestFrameBytesForPayload:
    def test_max_payload(self):
        assert frame_bytes_for_payload(ETH_MAX_PAYLOAD) == ETH_MAX_FRAME_BYTES

    def test_small_payload_padded_to_minimum(self):
        assert frame_bytes_for_payload(1) == ETH_MIN_FRAME_BYTES
        assert frame_bytes_for_payload(46) == ETH_MIN_FRAME_BYTES

    def test_mid_payload_not_padded(self):
        assert frame_bytes_for_payload(100) == 14 + 100 + 4

    def test_zero_payload_ok(self):
        assert frame_bytes_for_payload(0) == ETH_MIN_FRAME_BYTES

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            frame_bytes_for_payload(-1)

    def test_jumbo_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            frame_bytes_for_payload(ETH_MAX_PAYLOAD + 1)


class TestWireBytes:
    def test_adds_preamble_sfd_ifg(self):
        assert wire_bytes(1518) == 1538
        assert wire_bytes(64) == 84

    def test_below_minimum_rejected(self):
        with pytest.raises(ConfigurationError):
            wire_bytes(63)


class TestTimeBase:
    def test_fast_ethernet_slot_duration(self):
        tb = TimeBase.for_speed_mbps(100)
        # 1538 bytes * 8 bits / 100 Mbps = 123.04 us
        assert tb.slot_ns == 123_040

    def test_gigabit_slot_duration(self):
        tb = TimeBase.for_speed_mbps(1000)
        assert tb.slot_ns == 12_304

    def test_ten_mbps_slot_duration(self):
        tb = TimeBase.for_speed_mbps(10)
        assert tb.slot_ns == 1_230_400

    def test_slots_roundtrip(self):
        tb = TimeBase.for_speed_mbps(100)
        for slots in (0, 1, 3, 100):
            ns = tb.slots_to_ns(slots)
            assert tb.ns_to_slots_floor(ns) == slots
            assert tb.ns_to_slots_ceil(ns) == slots

    def test_ceil_floor_disagree_mid_slot(self):
        tb = TimeBase.for_speed_mbps(100)
        mid = tb.slot_ns // 2
        assert tb.ns_to_slots_floor(mid) == 0
        assert tb.ns_to_slots_ceil(mid) == 1

    def test_bytes_to_ns_exact_at_100mbps(self):
        tb = TimeBase.for_speed_mbps(100)
        assert tb.bytes_to_ns(1) == 80  # 80 ns per byte
        assert tb.bytes_to_ns(1538) == tb.slot_ns

    def test_bytes_to_ns_rounds_up(self):
        # 8e9 * 3 / 300e6 = 80 exactly; use odd speed to force rounding
        tb = TimeBase(bits_per_second=1_000_000_000, max_wire_bytes=1000)
        assert tb.bytes_to_ns(1) == 8

    def test_negative_inputs_rejected(self):
        tb = TimeBase.for_speed_mbps(100)
        with pytest.raises(ConfigurationError):
            tb.bytes_to_ns(-1)
        with pytest.raises(ConfigurationError):
            tb.slots_to_ns(-1)
        with pytest.raises(ConfigurationError):
            tb.ns_to_slots_ceil(-1)
        with pytest.raises(ConfigurationError):
            tb.ns_to_slots_floor(-1)

    def test_invalid_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            TimeBase(bits_per_second=0)
        with pytest.raises(ConfigurationError):
            TimeBase(bits_per_second=-5)

    def test_non_integral_slot_rejected(self):
        # 1538 bytes at 7 bps does not give integer ns.
        with pytest.raises(ConfigurationError):
            TimeBase(bits_per_second=7)

    def test_byte_time_rational(self):
        tb = TimeBase.for_speed_mbps(100)
        num, den = tb.byte_time_ns_num
        assert num / den == 80.0
