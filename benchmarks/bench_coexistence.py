"""EXP-B1 benchmark: RT + saturating best-effort coexistence."""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.coexistence import run_coexistence


def test_exp_b1_coexistence(benchmark, capsys):
    report = benchmark.pedantic(
        run_coexistence,
        kwargs=dict(n_masters=4, n_slaves=12, n_requests=40, messages=8),
        rounds=1, iterations=1,
    )
    rows = [
        ["RT channels admitted", report.channels_admitted],
        ["RT misses (clean run)", report.clean_misses],
        ["RT misses (BE-saturated run)", report.loaded_misses],
        ["worst RT delay clean (us)",
         round(report.clean_worst_delay_ns / 1000, 1)],
        ["worst RT delay loaded (us)",
         round(report.loaded_worst_delay_ns / 1000, 1)],
        ["BE frames delivered", report.be_frames_delivered],
        ["BE goodput (frac. of injecting uplinks)",
         round(report.be_goodput_fraction, 3)],
        ["RT reserved per uplink (frac.)",
         round(report.rt_reserved_fraction, 3)],
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["quantity", "value"], rows,
            title="EXP-B1 -- coexistence: RT guarantees under saturating "
                  "best-effort load (Section 18.2.1)",
        ))
    # The paper's claim: RT is unharmed, best-effort gets the residue.
    assert report.rt_unharmed
    assert report.be_frames_delivered > 0
    # BE fills a meaningful share of the residual bandwidth.
    assert report.be_goodput_fraction > 0.3
    # Delay inflation stays within the blocking already in T_latency:
    inflation = report.loaded_worst_delay_ns - report.clean_worst_delay_ns
    assert inflation <= 2 * 123_040 + 1_000  # two frames of blocking + eps


def test_exp_b2_be_latency_vs_rt_load(benchmark, capsys):
    """EXP-B2: best-effort pays linearly for RT reservations."""
    from repro.experiments.coexistence import be_latency_vs_rt_load

    points = benchmark.pedantic(
        be_latency_vs_rt_load, rounds=1, iterations=1
    )
    rows = [
        [p.rt_channels, round(p.rt_reserved_fraction, 3), p.rt_misses,
         round(p.be_goodput_bps / 1e6, 1),
         round(p.be_mean_delay_ns / 1000, 1)]
        for p in points
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["RT channels", "reserved U/uplink", "RT misses",
             "BE goodput (Mbps)", "BE mean delay (us)"],
            rows,
            title="EXP-B2 -- best-effort service vs RT load "
                  "(saturating injectors)",
        ))
    # RT is never harmed at any load level.
    assert all(p.rt_misses == 0 for p in points)
    # BE goodput decreases as RT reservations grow.
    goodputs = [p.be_goodput_bps for p in points]
    assert all(a >= b for a, b in zip(goodputs, goodputs[1:]))
