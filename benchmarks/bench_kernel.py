"""EXP-P7 (kernel side): event-queue dispatch throughput, heap vs calendar.

Times the classic hold-model workload (a constant pending population:
every fired event schedules one successor at a pseudorandom offset)
through the kernel's two pending-set implementations. Determinism is
asserted, not assumed: both queues must dispatch the identical
``(time, label)`` stream before any timing is reported.

The numbers are reported honestly: on CPython the C-accelerated
``heapq`` wins this contest at every population we measured (the
calendar queue's O(1) bucket math is still interpreted bytecode), which
is exactly why ``queue="heap"`` stays the default and the calendar
kernel is an option, not a replacement. The floor asserted here is an
absolute dispatch-throughput regression guard on both queues, not a
ranking between them.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.analysis.report import format_table
from repro.sim.kernel import Simulator

#: Both queues must clear this on the hold model (a shared dev box
#: measures ~200k ev/s for the heap and ~155k for the calendar with the
#: trace recording enabled; the floor leaves generous headroom for
#: slower CI machines).
_DISPATCH_FLOOR_EPS = 60_000.0

_POPULATION = 2_000
_EVENTS = 60_000


def _hold_model(queue: str, population: int, events: int):
    """Run the hold model; return (elapsed_seconds, dispatch_trace)."""
    sim = Simulator(queue=queue)
    trace: list[int] = []
    remaining = events
    # Deterministic pseudorandom offsets without a live RNG in the
    # timed loop: a fixed LCG advanced inline.
    state = 0x2545F491

    def fire():
        nonlocal remaining, state
        trace.append(sim.now)
        if remaining > 0:
            remaining -= 1
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            sim.schedule(state % 10_000, fire)

    for _ in range(population):
        remaining -= 1
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        sim.schedule(state % 10_000, fire)
    gc.disable()
    try:
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    assert sim.dispatched_events == events
    return elapsed, trace


def test_bench_kernel_dispatch_throughput(capsys):
    results = {}
    for queue in ("heap", "calendar"):
        best = None
        trace = None
        for _ in range(3):
            elapsed, this_trace = _hold_model(queue, _POPULATION, _EVENTS)
            best = elapsed if best is None else min(best, elapsed)
            trace = this_trace
        results[queue] = (best, trace)
    # Determinism first: identical dispatch streams, instant for
    # instant, or the timing comparison is meaningless.
    assert results["heap"][1] == results["calendar"][1], (
        "heap and calendar kernels dispatched different event streams"
    )
    total = _EVENTS
    rows = []
    for queue, (elapsed, _) in results.items():
        rows.append([
            queue,
            total,
            _POPULATION,
            f"{elapsed * 1000:.1f}",
            f"{total / elapsed:,.0f}",
        ])
    with capsys.disabled():
        print()
        print(format_table(
            ["queue", "events", "pending pop.", "elapsed ms", "events/s"],
            rows,
            title="event-queue dispatch -- hold model",
        ))
    for queue, (elapsed, _) in results.items():
        rate = total / elapsed
        assert rate >= _DISPATCH_FLOOR_EPS, (
            f"{queue} kernel dispatch regressed: {rate:,.0f} ev/s "
            f"< {_DISPATCH_FLOOR_EPS:,.0f}"
        )


@pytest.mark.parametrize("population", [4, 64, 2_048])
def test_bench_kernel_calendar_tracks_heap_at_any_density(population, capsys):
    """Order equality holds from sparse to dense pending populations
    (resize churn at the small sizes, wide buckets at the large)."""
    _, heap_trace = _hold_model("heap", population, 4_000)
    _, cal_trace = _hold_model("calendar", population, 4_000)
    assert heap_trace == cal_trace
