"""EXP-D1 benchmark: the full DPS design space on the paper workload."""

from __future__ import annotations

import pytest

from repro.experiments.dps_comparison import run_dps_comparison
from repro.traffic.spec import UniformSpecSampler


def test_exp_d1_dps_comparison(benchmark, trials, workers, capsys):
    curve = benchmark.pedantic(
        run_dps_comparison,
        kwargs=dict(
            requested_counts=tuple(range(20, 201, 20)), trials=trials,
            workers=workers,
        ),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(curve.to_table(
            "EXP-D1 -- all DPS schemes on the Figure 18.5 workload "
            "(sdps/adps = paper; udps/ldps/search = extensions)"
        ))
    means = {c.scheme: c.means[-1] for c in curve.curves}
    # the paper's ordering, plus our upper bound:
    assert means["adps"] > means["sdps"] * 1.5
    assert means["search"] >= means["adps"] - 3.0
    # on identical channels, count- and utilization-proportional coincide
    assert means["udps"] == pytest.approx(means["adps"], abs=2.0)


def test_exp_d1_mixed_sizes_separate_udps_from_adps(benchmark, trials,
                                                    workers, capsys):
    """On mixed-size channels, channel count is a poor congestion proxy;
    utilization-weighting (UDPS) can differ from ADPS."""
    sampler = UniformSpecSampler(
        period_range=(50, 200),
        capacity_range=(1, 8),
        deadline_range=(20, 80),
    )
    curve = benchmark.pedantic(
        run_dps_comparison,
        kwargs=dict(
            requested_counts=(100, 200),
            trials=trials,
            sampler=sampler,
            workers=workers,
        ),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(curve.to_table(
            "EXP-D1b -- DPS schemes on mixed-size channels"
        ))
    means = {c.scheme: c.means[-1] for c in curve.curves}
    # ADPS still beats SDPS; search still upper-bounds fixed schemes.
    assert means["adps"] > means["sdps"]
    assert means["search"] >= max(
        means["sdps"], means["adps"], means["udps"], means["ldps"]
    ) - 3.0
