"""EXP-A1/EXP-P2: admission fast-path speedup, cached vs from-scratch.

Times the Figure 18.5 admission sweep (10 masters, 50 slaves, the
paper's ``P=100, C=3, d=40`` spec, 200 requests x 5 seeded trials)
through two :class:`~repro.core.admission.AdmissionController` builds
fed the identical request sequences: one deciding through the
incremental :class:`~repro.core.feasibility_cache.FeasibilityCache`,
one re-running the from-scratch
:func:`~repro.core.feasibility.is_feasible` per request.

Two properties are asserted, not just printed:

* **parity** -- the decision streams must be identical (every run of
  this benchmark doubles as a differential test), and
* **speedup** -- the cached path must be at least 5x faster than the
  from-scratch path on the paper's baseline SDPS sweep (the PR that
  introduced the cache measured ~6.4x for SDPS and ~5x for ADPS on a
  quiet machine; the ADPS floor is set lower because its partition
  choices shift more work into non-memoizable territory).

Timing uses best-of-N (minimum over ``repeats``) with the collector
paused -- the workload is deterministic, so disturbances only ever add
time. Run with ``-s`` to see the timing tables.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.experiments.admission_perf import (
    AdmissionPerfConfig,
    run_admission_perf,
    run_batch_perf,
)

#: Speedup floors asserted on the Fig. 18.5 sweep at 200 requested
#: channels. SDPS is the paper's baseline scheme and the headline
#: number; ADPS gets a regression floor (its measured speedup sits
#: right at ~5x and shared machines jitter ratios by ~10%).
_SPEEDUP_FLOOR = {"sdps": 5.0, "adps": 3.5}


def _print_result(result, capsys) -> None:
    rows = [[
        result.config.scheme,
        result.decisions,
        result.accepts,
        f"{result.naive_seconds * 1000:.1f}",
        f"{result.cached_seconds * 1000:.1f}",
        f"{result.speedup:.2f}x",
        "OK" if result.parity else "VIOLATED",
    ]]
    with capsys.disabled():
        print()
        print(format_table(
            ["scheme", "decisions", "accepts", "naive ms", "cached ms",
             "speedup", "parity"],
            rows,
            title="admission fast path -- Fig. 18.5 sweep, 200 requests",
        ))


@pytest.mark.parametrize("scheme", ["sdps", "adps"])
def test_bench_admission_speedup(scheme, capsys):
    """Cached admission beats from-scratch by the asserted floor."""
    result = run_admission_perf(
        AdmissionPerfConfig(scheme=scheme, repeats=3)
    )
    _print_result(result, capsys)
    assert result.parity, (
        "cached and from-scratch controllers diverged on the "
        f"{scheme} sweep"
    )
    floor = _SPEEDUP_FLOOR[scheme]
    assert result.speedup >= floor, (
        f"cached admission speedup regressed on {scheme}: "
        f"{result.speedup:.2f}x < {floor}x "
        f"(naive {result.naive_seconds * 1000:.1f} ms, "
        f"cached {result.cached_seconds * 1000:.1f} ms)"
    )


#: EXP-P7 floors. The saturated-storm regime (second identical burst on
#: a full network: pure template/memo traffic) is the ROADMAP's
#: 10^6 decisions/sec target; quiet machines measure ~1.45M dec/s for
#: SDPS and ~1.5M for ADPS at 10k-request bursts, so the absolute floor
#: keeps ~40% headroom for shared CI boxes. The relative floor pins the
#: batch engine's gain over the PR 2 scalar-cached path *measured in
#: the same process* at its canonical 200-request Fig. 18.5 config
#: (~30-60k dec/s), where ratios are robust to machine speed.
_STORM_RATE_FLOOR = 850_000.0
_STORM_OVER_PR2_FLOOR = 10.0


@pytest.mark.parametrize("scheme", ["sdps", "adps"])
def test_bench_admission_batch_engine(scheme, capsys):
    """EXP-P7: admit_many hits the 10^6 dec/s storm target, stream-equal.

    Three regimes on identical request sequences: the PR 2 scalar
    cached loop at its canonical config, a cold admit_many burst
    (prefetch + fresh decisions), and the saturated storm (a second
    identical burst against a full network). Parity is asserted on both
    batch regimes -- every run doubles as a differential test -- then
    the storm must clear the absolute 10^6-class floor *and* beat the
    same-process PR 2 cached rate by >= 10x.
    """
    pr2 = run_admission_perf(AdmissionPerfConfig(scheme=scheme, repeats=3))
    assert pr2.parity
    pr2_rate = pr2.decisions / pr2.cached_seconds
    result = run_batch_perf(
        AdmissionPerfConfig(
            scheme=scheme, requests=10_000, trials=1, repeats=3
        )
    )
    rows = [[
        scheme,
        result.decisions,
        f"{pr2_rate:,.0f}",
        f"{result.scalar_rate:,.0f}",
        f"{result.batched_rate:,.0f}",
        f"{result.storm_rate:,.0f}",
        f"{result.storm_rate / pr2_rate:.1f}x",
        "OK" if result.batch_parity and result.storm_parity else "VIOLATED",
    ]]
    with capsys.disabled():
        print()
        print(format_table(
            ["scheme", "decisions", "pr2 dec/s", "scalar dec/s",
             "cold dec/s", "storm dec/s", "storm/pr2", "parity"],
            rows,
            title="batch admission engine -- EXP-P7 (10k-request bursts)",
        ))
    assert result.batch_parity, (
        f"admit_many diverged from the scalar loop on the {scheme} sweep"
    )
    assert result.storm_parity, (
        f"saturated-storm admit_many diverged from the scalar replay "
        f"on {scheme}"
    )
    assert result.storm_template_hits > 0, (
        "storm burst never hit the template path; the measured regime "
        "is not the one the floor describes"
    )
    assert result.storm_rate >= _STORM_RATE_FLOOR, (
        f"storm throughput regressed on {scheme}: "
        f"{result.storm_rate:,.0f} dec/s < {_STORM_RATE_FLOOR:,.0f}"
    )
    assert result.storm_rate >= _STORM_OVER_PR2_FLOOR * pr2_rate, (
        f"storm admit_many no longer clears {_STORM_OVER_PR2_FLOOR}x "
        f"the PR 2 cached path on {scheme}: {result.storm_rate:,.0f} "
        f"vs {pr2_rate:,.0f} dec/s"
    )


def test_bench_admission_cache_does_incremental_work(capsys):
    """The speedup comes from the advertised mechanisms, not a fluke.

    The cache's own counters must show the fast paths carrying the
    sweep: memo hits plus incremental overlays plus shortcut accepts
    account for every check, and the from-scratch fallback never fires
    on the paper workload.
    """
    result = run_admission_perf(AdmissionPerfConfig(repeats=1))
    stats = result.cache_stats
    with capsys.disabled():
        print()
        print(f"  cache stats: {stats}")
    assert stats["full_fallbacks"] == 0
    fast = (
        stats["memo_hits"]
        + stats["incremental_checks"]
        + stats["shortcut_accepts"]
    )
    assert fast == stats["checks"]
    assert stats["memo_hits"] > 0
    assert stats["installs"] == 2 * result.accepts


def test_bench_admission_registry_metrics_agree(capsys):
    """The telemetry registry's view matches the cache's own counters.

    ``collect_metrics`` replays the cached sweep once, untimed, with a
    metrics registry attached; the flattened snapshot must agree with
    the raw cache stats and the verdict counters must account for every
    decision. This is the ``repro bench-admission --metrics`` path.
    """
    result = run_admission_perf(
        AdmissionPerfConfig(repeats=1, collect_metrics=True)
    )
    metrics = result.registry_metrics
    assert metrics is not None
    with capsys.disabled():
        print()
        for key in sorted(metrics):
            print(f"  {key} = {metrics[key]:g}")
    for stat in ("checks", "memo_hits", "incremental_checks",
                 "shortcut_accepts", "full_fallbacks", "installs"):
        assert metrics[f"feasibility_cache.{stat}"] == (
            result.cache_stats[stat]
        ), f"registry disagrees with cache counter {stat!r}"
    accepts = metrics.get("admission.decisions{verdict=accept}", 0)
    rejects = metrics.get("admission.decisions{verdict=reject}", 0)
    assert accepts == result.accepts
    assert accepts + rejects == result.decisions
