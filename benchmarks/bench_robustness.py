"""EXP-R1 benchmark: fault injection outside the paper's model."""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.robustness import (
    run_loss_robustness,
    run_phase_robustness,
)


def test_exp_r1_phase_robustness(benchmark, capsys):
    report = benchmark.pedantic(
        run_phase_robustness,
        kwargs=dict(n_masters=4, n_slaves=12, n_requests=40, messages=6),
        rounds=1, iterations=1,
    )
    rows = [
        ["channels admitted", report.channels_admitted],
        ["misses (critical instant)", report.synchronous_misses],
        ["misses (random phases)", report.random_misses],
        ["worst delay sync (us)",
         round(report.synchronous_worst_delay_ns / 1000, 1)],
        ["worst delay random (us)",
         round(report.random_worst_delay_ns / 1000, 1)],
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["quantity", "value"], rows,
            title="EXP-R1a -- critical instant vs random release phases",
        ))
    assert report.holds
    assert report.critical_instant_is_worst


def test_exp_r1_loss_sweep(benchmark, capsys):
    rates = (0.0, 0.01, 0.05, 0.10)

    def sweep():
        return [
            run_loss_robustness(
                loss_rate=rate, n_masters=4, n_slaves=12,
                n_requests=40, messages=10,
            )
            for rate in rates
        ]

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"{r.loss_rate:.0%}", r.frames_sent, r.frames_delivered,
         round(r.delivery_ratio, 3),
         f"{r.messages_completed}/{r.messages_expected}",
         r.deadline_misses]
        for r in reports
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["loss", "sent", "delivered", "ratio", "messages", "late"],
            rows,
            title="EXP-R1b -- Bernoulli frame loss: completeness degrades "
                  "in proportion, timeliness never",
        ))
    for report in reports:
        assert report.timeliness_preserved
    # delivery ratio decreases monotonically with the loss rate
    ratios = [r.delivery_ratio for r in reports]
    assert all(a >= b for a, b in zip(ratios, ratios[1:]))
    assert reports[0].delivery_ratio == 1.0
