"""EXP-P5 benchmark: parallel-sweep speedup and worker invariance.

Measures wall-clock time of the Figure 18.5 acceptance sweep at several
worker counts and asserts two properties of the parallel runner:

* **invariance** -- the resulting :class:`AcceptanceCurve` is identical
  at every worker count (the sweep fans pure (trial, scheme) work units
  whose seeds derive only from the trial index);
* **speedup** -- on a machine with >= 4 CPUs, 4 workers finish the
  sweep at least 2x faster than serial. The assertion is gated on the
  visible CPU count so single-core CI containers still verify
  invariance and report timings honestly.

Runnable two ways:

* ``pytest benchmarks/bench_parallel.py --benchmark-only -s`` (reduced
  trial count from the session fixture);
* ``python benchmarks/bench_parallel.py --trials 100 --workers 1 2 4
  --json out/bench_parallel.json`` for the full EXP-P5 measurement.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.experiments.fig18_5 import Fig185Config, run_fig18_5
from repro.experiments.runner import resolve_workers


def visible_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def sweep_times(
    trials: int, worker_counts: list[int]
) -> tuple[dict[int, float], list]:
    """Run the Fig. 18.5 sweep at each worker count; time each run.

    Returns ``(times, results)`` with ``times[w]`` in seconds and the
    corresponding experiment results (all of which must be identical).
    """
    times: dict[int, float] = {}
    results = []
    for workers in worker_counts:
        config = Fig185Config(trials=trials, workers=workers)
        start = time.perf_counter()
        result = run_fig18_5(config)
        times[workers] = time.perf_counter() - start
        results.append(result)
    return times, results


def timing_report(trials: int, times: dict[int, float]) -> dict:
    serial = times.get(1)
    return {
        "experiment": "EXP-P5",
        "trials": trials,
        "visible_cpus": visible_cpus(),
        "runs": [
            {
                "workers": workers,
                "wall_s": round(elapsed, 4),
                "speedup_vs_serial": (
                    round(serial / elapsed, 3)
                    if serial and elapsed > 0 else None
                ),
            }
            for workers, elapsed in sorted(times.items())
        ],
    }


def test_exp_p5_parallel_speedup(trials, capsys):
    """EXP-P5: identical curve at every worker count; timed speedup."""
    worker_counts = [1, 4]
    times, results = sweep_times(trials, worker_counts)
    baseline = results[0].curve
    for result in results[1:]:
        assert result.curve == baseline, (
            "parallel sweep diverged from serial"
        )
    report = timing_report(trials, times)
    with capsys.disabled():
        print()
        print(json.dumps(report, indent=2))
    cpus = visible_cpus()
    if cpus >= 4:
        assert times[1] / times[4] >= 2.0, (
            f"expected >= 2x speedup with 4 workers on {cpus} CPUs, "
            f"got {times[1] / times[4]:.2f}x"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="EXP-P5: time the Fig. 18.5 sweep at several "
        "worker counts"
    )
    parser.add_argument("--trials", type=int, default=100)
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[1, 2, 4],
        help="worker counts to time (0 = all CPUs)",
    )
    parser.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="write the timing report as JSON to PATH",
    )
    args = parser.parse_args(argv)

    times, results = sweep_times(args.trials, args.workers)
    baseline = results[0].curve
    for workers, result in zip(args.workers[1:], results[1:]):
        if result.curve != baseline:
            print(
                f"FAIL: curve at workers={workers} differs from "
                f"workers={args.workers[0]}",
                file=sys.stderr,
            )
            return 1
    report = timing_report(args.trials, times)
    for run in report["runs"]:
        resolved = resolve_workers(run["workers"])
        speedup = run["speedup_vs_serial"]
        extra = f", {speedup:.3f}x vs serial" if speedup else ""
        print(
            f"workers={run['workers']} (resolved {resolved}): "
            f"{run['wall_s']:.3f} s{extra}"
        )
    print("curves identical across worker counts: True")
    if args.json:
        os.makedirs(os.path.dirname(args.json) or ".", exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"timing report written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
