"""EXP-F5 benchmark: regenerate the paper's Figure 18.5.

Prints the accepted-vs-requested series for SDPS and ADPS (the figure's
two curves) and benchmarks the full experiment run. The assertions
encode the published shape: SDPS saturates near 60, ADPS near 110, about
a 2x advantage, ADPS never worse.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig18_5 import Fig185Config, run_fig18_5


def test_fig18_5_series(benchmark, trials, workers, capsys):
    """Regenerate, print and verify the Figure 18.5 series."""
    fig_result = benchmark.pedantic(
        run_fig18_5,
        args=(Fig185Config(trials=trials, workers=workers),),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(fig_result.to_table())
        print(
            f"\nADPS/SDPS advantage at 200 requested: "
            f"{fig_result.adps_advantage:.2f}x "
            "(paper: ~1.8x; SDPS ~60, ADPS ~110)"
        )
    assert fig_result.sdps_final_mean == pytest.approx(60.0, abs=2.0)
    assert 100.0 <= fig_result.adps_final_mean <= 125.0
    assert 1.6 <= fig_result.adps_advantage <= 2.2
    assert fig_result.adps_dominates_everywhere()


def test_bench_fig18_5_single_trial(benchmark):
    """Wall-clock of one full Figure 18.5 trial pair (SDPS + ADPS)."""
    config = Fig185Config(trials=1)
    result = benchmark(run_fig18_5, config)
    assert result.curve.requested[-1] == 200


def test_bench_admission_throughput(benchmark):
    """Admission decisions per second on the paper workload (ADPS)."""
    from repro.core.admission import AdmissionController, SystemState
    from repro.core.partitioning import AsymmetricDPS
    from repro.sim.rng import RngRegistry
    from repro.traffic.patterns import (
        master_slave_names,
        master_slave_requests,
    )
    from repro.traffic.spec import FixedSpecSampler

    masters, slaves = master_slave_names(10, 50)
    rng = RngRegistry(7).stream("bench")
    requests = master_slave_requests(
        masters, slaves, 200, FixedSpecSampler.paper_default(), rng
    )

    def run():
        controller = AdmissionController(
            SystemState(masters + slaves), AsymmetricDPS()
        )
        for request in requests:
            controller.request(request.source, request.destination,
                               request.spec)
        return controller.accept_count

    accepted = benchmark(run)
    assert accepted > 80
