"""EXP-X1 benchmark: acceptance on switch trees (future-work extension)."""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.multiswitch_exp import run_multiswitch_comparison


def test_exp_x1_multiswitch_comparison(benchmark, trials, capsys):
    points = benchmark.pedantic(
        run_multiswitch_comparison,
        kwargs=dict(
            n_switches=3,
            n_masters=10,
            n_slaves=50,
            requested_counts=tuple(range(20, 201, 20)),
            trials=trials,
        ),
        rounds=1, iterations=1,
    )
    rows = [
        [p.requested, round(p.symmetric_mean, 1),
         round(p.proportional_mean, 1), round(p.advantage, 2)]
        for p in points
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["requested", "k-way SDPS", "k-way ADPS", "ratio"],
            rows,
            title="EXP-X1 -- 3-switch chain, masters on sw0 "
                  "(extension: no published reference)",
        ))
    final = points[-1]
    # The load-proportional scheme retains its advantage on trees.
    assert final.proportional_mean > final.symmetric_mean
    # Low-load region: both accept nearly everything that fits hops.
    assert points[0].proportional_mean >= points[0].symmetric_mean


def test_bench_multihop_admission(benchmark, paper_like_spec=None):
    """Admission throughput on a 3-switch fabric."""
    from repro.core.channel import ChannelSpec
    from repro.experiments.multiswitch_exp import build_master_slave_fabric
    from repro.multiswitch.admission import MultiSwitchAdmission
    from repro.multiswitch.partitioning import MultiHopProportional

    spec = ChannelSpec(period=100, capacity=3, deadline=60)

    def run():
        fabric, masters, slaves = build_master_slave_fabric(3, 10, 50)
        admission = MultiSwitchAdmission(
            fabric=fabric, dps=MultiHopProportional()
        )
        for i in range(100):
            admission.request(
                masters[i % len(masters)], slaves[i % len(slaves)], spec
            )
        return admission.accept_count

    accepted = benchmark(run)
    assert accepted > 0


def test_exp_x2_fabric_guarantee_validation(benchmark, capsys):
    """EXP-X2: the generalized Eq. 18.1 holds on the simulated fabric."""
    from repro.experiments.multiswitch_exp import run_fabric_validation

    report = benchmark.pedantic(
        run_fabric_validation,
        kwargs=dict(n_switches=3, n_masters=4, n_slaves=12,
                    n_requests=40, messages=3),
        rounds=1, iterations=1,
    )
    rows = [
        ["switches", report.n_switches],
        ["channels admitted", f"{report.channels_admitted}/"
                              f"{report.channels_requested}"],
        ["max hop count", report.max_hop_count],
        ["messages completed", report.messages_completed],
        ["end-to-end misses", report.end_to_end_misses],
        ["per-link misses", report.per_link_misses],
        ["worst delay / bound",
         round(report.worst_delay_fraction, 3)],
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["quantity", "value"], rows,
            title="EXP-X2 -- multi-hop EDF guarantee under simulation "
                  "(extension)",
        ))
    assert report.holds
    assert report.max_hop_count >= 3  # cross-fabric paths exercised
