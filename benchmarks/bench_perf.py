"""EXP-P1 benchmarks: cost of the feasibility test and its reductions.

Quantifies the two Section 18.3.2 optimizations (busy-period horizon,
Eq. 18.5 control points) against the naive every-integer scan, plus the
utilization-only fast path, using pytest-benchmark for honest timing.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.feasibility import (
    is_feasible,
    is_feasible_naive,
    utilization,
)
from repro.experiments.perf import feasibility_cost_sweep, make_link_tasks
from repro.sim.rng import RngRegistry
from repro.traffic.spec import FixedSpecSampler, UniformSpecSampler


def _heterogeneous_tasks(n):
    sampler = UniformSpecSampler(
        period_range=(40, 400),
        capacity_range=(1, 6),
        deadline_range=(10, 200),
    )
    rng = RngRegistry(99).stream("bench-perf")
    return make_link_tasks(n, sampler, rng)


def _paper_tasks(n):
    rng = RngRegistry(99).stream("bench-perf-paper")
    return make_link_tasks(n, FixedSpecSampler.paper_default(), rng)


def test_exp_p1_point_reduction_table(benchmark, capsys):
    """Demand evaluations: control points vs every integer instant."""
    points = benchmark.pedantic(
        feasibility_cost_sweep,
        kwargs=dict(sizes=(4, 8, 12, 16, 20)),
        rounds=1, iterations=1,
    )
    rows = [
        [p.n_tasks, p.fast_points_checked, p.naive_points_checked,
         "yes" if p.feasible else "no"]
        for p in points
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["tasks", "control points (Eq 18.5)", "naive instants",
             "feasible"],
            rows,
            title="EXP-P1 -- feasibility-test work: the paper's "
                  "control-point reduction",
        ))
    for p in points:
        if p.naive_points_checked:
            assert p.fast_points_checked <= p.naive_points_checked


def test_bench_fast_test_heterogeneous(benchmark):
    tasks = _heterogeneous_tasks(16)
    report = benchmark(is_feasible, tasks)
    assert report is not None


def test_bench_naive_test_heterogeneous(benchmark):
    tasks = _heterogeneous_tasks(16)
    report = benchmark(is_feasible_naive, tasks)
    assert report is not None


def test_bench_fast_test_paper_workload(benchmark):
    tasks = _paper_tasks(12)
    benchmark(is_feasible, tasks)


def test_bench_utilization_only(benchmark):
    """The Liu & Layland fast path the switch takes when d == P."""
    tasks = _paper_tasks(12)
    result = benchmark(utilization, tasks)
    assert result is not None


def test_fast_is_actually_faster_at_scale():
    """Sanity outside the timing harness: on long-hyperperiod sets the
    control-point test does strictly less work."""
    tasks = _heterogeneous_tasks(20)
    fast = is_feasible(tasks)
    naive = is_feasible_naive(tasks)
    assert fast.feasible == naive.feasible
    if naive.points_checked > 50:
        assert fast.points_checked < naive.points_checked
