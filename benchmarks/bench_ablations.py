"""EXP-A1..A4 benchmarks: the ablation sweeps around Figure 18.5.

Each test regenerates one sweep table, prints it, and asserts the
mechanism the sweep demonstrates (see repro.experiments.ablations).
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.experiments.ablations import (
    capacity_sweep,
    deadline_sweep,
    master_ratio_sweep,
    symmetric_traffic_curve,
)


def _print_sweep(capsys, title, label, points):
    rows = [
        [p.value, round(p.sdps_mean, 1), round(p.adps_mean, 1),
         round(p.advantage, 2)]
        for p in points
    ]
    with capsys.disabled():
        print()
        print(format_table(
            [label, "sdps", "adps", "adps/sdps"], rows, title=title
        ))


def test_exp_a1_deadline_sweep(benchmark, trials, capsys):
    """EXP-A1: the ADPS advantage is a constrained-deadline phenomenon."""
    points = benchmark.pedantic(
        deadline_sweep,
        kwargs=dict(
            deadlines=(20, 30, 40, 60, 80, 100, 200), trials=trials
        ),
        rounds=1, iterations=1,
    )
    _print_sweep(
        capsys,
        "EXP-A1 -- deadline sweep (accepted at 200 requested)",
        "deadline",
        points,
    )
    by_value = {p.value: p for p in points}
    # the paper's point (d=40) shows a solid advantage...
    assert by_value[40].advantage > 1.5
    # ...which only vanishes once even the *halved* per-link deadline
    # reaches the period (d >= 2P puts SDPS in the Liu&Layland regime
    # where utilization alone binds and no DPS can help).
    assert by_value[200].advantage == pytest.approx(1.0, abs=0.12)
    # advantage is (weakly) decreasing across the sweep tail
    assert by_value[40].advantage >= by_value[80].advantage >= (
        by_value[100].advantage - 0.05
    )


def test_exp_a3_capacity_sweep(benchmark, trials, capsys):
    """EXP-A3: larger C leaves less partitionable slack."""
    points = benchmark.pedantic(
        capacity_sweep,
        kwargs=dict(capacities=(1, 2, 3, 5, 8), trials=trials),
        rounds=1, iterations=1,
    )
    _print_sweep(
        capsys,
        "EXP-A3 -- capacity sweep (accepted at 200 requested, d=40)",
        "capacity",
        points,
    )
    # small C admits more channels outright
    assert points[0].sdps_mean > points[-1].sdps_mean
    # ADPS never loses
    assert all(p.adps_mean >= p.sdps_mean - 1.0 for p in points)


def test_exp_a4_master_ratio_sweep(benchmark, trials, capsys):
    """EXP-A4: the advantage tracks the bottleneck ratio."""
    points = benchmark.pedantic(
        master_ratio_sweep,
        kwargs=dict(master_counts=(5, 10, 20, 30), trials=trials),
        rounds=1, iterations=1,
    )
    _print_sweep(
        capsys,
        "EXP-A4 -- master count sweep (60 nodes total, 200 requested)",
        "masters",
        points,
    )
    # 5 masters (1:11 ratio) shows a larger advantage than 30 (1:1).
    assert points[0].advantage > points[-1].advantage
    # Even at a 1:1 ratio a residual advantage remains: random request
    # placement still creates per-link imbalances ADPS exploits, but it
    # is far below the bottlenecked regime's ~2x.
    assert 1.0 <= points[-1].advantage < 1.45


def test_exp_a2_symmetric_traffic(benchmark, trials, capsys):
    """EXP-A2: without a bottleneck, ADPS degenerates to SDPS."""
    curve = benchmark.pedantic(
        symmetric_traffic_curve,
        kwargs=dict(
            n_nodes=60,
            requested_counts=(50, 100, 150, 200),
            trials=trials,
        ),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        print(curve.to_table(
            "EXP-A2 -- uniform all-to-all traffic (no bottleneck)"
        ))
    sdps = curve.curve("sdps").means
    adps = curve.curve("adps").means
    for s, a in zip(sdps, adps):
        assert a == pytest.approx(s, rel=0.08, abs=2.0)


def test_exp_s1_speed_scaling(benchmark, capsys):
    """EXP-S1: slot-relative invariance across 10/100/1000 Mbps."""
    from repro.experiments.ablations import speed_scaling

    points = benchmark.pedantic(
        speed_scaling, kwargs=dict(speeds_mbps=(10, 100, 1000)),
        rounds=1, iterations=1,
    )
    rows = [
        [p.mbps, p.slot_ns, p.worst_delay_ns,
         round(p.worst_delay_slots, 2), p.deadline_misses]
        for p in points
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["Mbps", "slot (ns)", "worst delay (ns)", "worst (slots)",
             "misses"],
            rows,
            title="EXP-S1 -- link-speed scaling: the admitted set and "
                  "slot-normalized delays are speed-invariant",
        ))
    assert all(p.deadline_misses == 0 for p in points)
    normalized = [p.worst_delay_slots for p in points]
    assert max(normalized) - min(normalized) < 0.6
