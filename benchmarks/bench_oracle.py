"""Oracle benchmarks: cost of the brute-force EDF replay and the
three-way differential check.

The timeline oracle is the correctness safety net for every future
admission-path optimization, so its own throughput matters: a fuzz
campaign is only useful if thousands of trials finish in seconds.
These benchmarks pin the replay cost on the paper's workload shape,
the cross-check cost on mixed fuzz draws, and print the campaign
throughput (trials/second) a CI quick-fuzz run can expect.
"""

from __future__ import annotations

import time

from repro.analysis.report import format_table
from repro.core.feasibility import is_feasible
from repro.core.task import LinkRef, LinkTask
from repro.oracle.differential import cross_check
from repro.oracle.edf_timeline import simulate_edf
from repro.oracle.fuzz import FAMILIES, generate_task_set, run_campaign

_LINK = LinkRef.uplink("bench")


def _paper_link_tasks(n: int, deadline: int = 40) -> list[LinkTask]:
    return [
        LinkTask(
            link=_LINK, period=100, capacity=3, deadline=deadline,
            channel_id=index,
        )
        for index in range(n)
    ]


def test_bench_timeline_paper_busy_period(benchmark):
    """Replay of a saturated Figure 18.5 downlink (13 channels, d=40)."""
    tasks = _paper_link_tasks(13)
    result = benchmark(simulate_edf, tasks)
    assert result.first_miss is None
    assert is_feasible(tasks).feasible


def test_bench_timeline_full_hyperperiod(benchmark):
    """Full-hyperperiod accounting replay (no early stop)."""
    tasks = _paper_link_tasks(12)
    result = benchmark.pedantic(
        simulate_edf,
        args=(tasks, 100),
        kwargs=dict(stop_on_miss=False, record_jobs=True),
        rounds=20, iterations=1,
    )
    assert result.jobs_released == 12
    assert result.schedulable


def test_bench_cross_check_infeasible_witness(benchmark):
    """Cross-check of an infeasible set: includes the miss replay."""
    tasks = _paper_link_tasks(7, deadline=20)
    verdict = benchmark(cross_check, tasks)
    assert verdict.ok
    assert not verdict.fast.feasible


def test_bench_cross_check_mixed_draws(benchmark):
    """One cross-check per family on fixed fuzz draws."""
    draws = [
        generate_task_set(family, seed=0, trial=index)
        for index, family in enumerate(FAMILIES)
    ]

    def check_all():
        return [cross_check(tasks) for tasks in draws]

    verdicts = benchmark(check_all)
    assert all(v.ok for v in verdicts)


def test_campaign_throughput_table(capsys):
    """Trials/second of the seeded campaign (the CI quick-fuzz cost)."""
    trials = 400
    start = time.perf_counter()
    report = run_campaign(trials, seed=0)
    elapsed = time.perf_counter() - start
    assert report.ok
    rows = [
        [trials, f"{elapsed:.2f}", f"{trials / elapsed:.0f}",
         report.counts.get("agree-feasible", 0),
         report.counts.get("agree-infeasible", 0),
         report.capped],
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["trials", "seconds", "trials/s", "feasible", "infeasible",
             "capped"],
            rows,
            title="oracle campaign throughput (all families, seed 0)",
        ))
