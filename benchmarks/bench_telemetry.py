"""EXP-O2: metrics overhead on the admission hot path.

The telemetry design claims metrics are *cheap enough to stay enabled
in benchmarks*: hot-path instrumentation is a handful of pre-bound
counter increments per admission decision, and everything else
(collectors, snapshots) runs off the hot path. This benchmark holds
the claim to a number on the reproduction's hottest loop -- the
Figure 18.5 admission sweep (200 requests x 5 trials) -- by timing the
identical cached sweep bare and with a registry attached (tracing off,
which is the always-on configuration the claim is about).

Asserted, not just printed:

* **determinism** -- both sides produce the identical decision stream
  (instrumentation must never change outcomes), and
* **overhead** -- the instrumented sweep takes at most 10% longer than
  the bare sweep (best-of-N, GC paused, same estimator as
  ``bench_admission``; the PR that introduced the registry measured
  ~2-4% on a quiet machine).

Run with ``-s`` to see the timing table.
"""

from __future__ import annotations

import gc
import time

from repro.analysis.report import format_table
from repro.core.admission import AdmissionController, SystemState
from repro.core.partitioning import SymmetricDPS
from repro.experiments.admission_perf import (
    AdmissionPerfConfig,
    _request_sequences,
)
from repro.obs import Telemetry, TelemetryConfig

#: Maximum instrumented/bare ratio (EXP-O2 acceptance threshold).
_OVERHEAD_CEILING = 1.10


def _one_sweep(nodes, sequences, telemetry):
    """One cached admission sweep; returns (elapsed_s, decision stream).

    Controller construction and cache tracking happen outside the timed
    region; only the admission decisions are on the clock (mirroring
    ``admission_perf._run_side``).
    """
    registry = None if telemetry is None else telemetry.registry
    decisions: list[bool] = []
    elapsed = 0.0
    for requests in sequences:
        controller = AdmissionController(
            SystemState(nodes=nodes),
            SymmetricDPS(),
            use_cache=True,
            metrics=registry,
        )
        if telemetry is not None:
            telemetry.track_cache(controller.cache)
        start = time.perf_counter()
        for request in requests:
            decision = controller.request(
                request.source, request.destination, request.spec
            )
            decisions.append(decision.accepted)
        elapsed += time.perf_counter() - start
    return elapsed, decisions


def _time_sides(nodes, sequences, telemetry, repeats):
    """Best-of-``repeats`` for the bare and instrumented sweeps.

    The two sides alternate within each repeat so slow drift of the
    host (frequency scaling, thermal throttling) cannot land on one
    side only and masquerade as instrumentation overhead.
    """
    bare_best = inst_best = float("inf")
    bare_decisions: list[bool] = []
    inst_decisions: list[bool] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            elapsed, bare_decisions = _one_sweep(nodes, sequences, None)
            bare_best = min(bare_best, elapsed)
            elapsed, inst_decisions = _one_sweep(nodes, sequences, telemetry)
            inst_best = min(inst_best, elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    return bare_best, bare_decisions, inst_best, inst_decisions


def test_bench_metrics_overhead_under_ceiling(capsys):
    """Enabled metrics cost < 10% on the Fig. 18.5 sweep at 200 requests."""
    config = AdmissionPerfConfig(requests=200, trials=5, repeats=5)
    nodes, sequences = _request_sequences(config)

    telemetry = Telemetry(TelemetryConfig(tracing=False))
    bare_s, bare_decisions, inst_s, inst_decisions = _time_sides(
        nodes, sequences, telemetry, config.repeats
    )
    overhead = inst_s / bare_s if bare_s else 1.0

    with capsys.disabled():
        print()
        print(format_table(
            ["side", "best ms", "decisions", "accepts"],
            [
                ["bare", f"{bare_s * 1000:.1f}", len(bare_decisions),
                 sum(bare_decisions)],
                ["metrics on", f"{inst_s * 1000:.1f}", len(inst_decisions),
                 sum(inst_decisions)],
                ["overhead", f"{(overhead - 1) * 100:+.1f}%", "", ""],
            ],
            title="EXP-O2: metrics overhead -- Fig. 18.5 sweep, 200 requests",
        ))

    assert inst_decisions == bare_decisions, (
        "attaching the metrics registry changed admission decisions"
    )
    assert overhead <= _OVERHEAD_CEILING, (
        f"metrics overhead {overhead:.3f}x exceeds the "
        f"{_OVERHEAD_CEILING}x ceiling (bare {bare_s * 1000:.1f} ms, "
        f"instrumented {inst_s * 1000:.1f} ms)"
    )

    # the instrumented side actually recorded what it claims to record
    flat = telemetry.snapshot()
    verdicts = flat["admission.decisions"]["series"]
    counted = sum(s["value"] for s in verdicts)
    assert counted == len(inst_decisions) * config.repeats


#: Maximum (spans+monitor)/(metrics-only) ratio (EXP-O4 acceptance).
_SPAN_OVERHEAD_CEILING = 1.05


def _one_sweep_run_requests(nodes, sequences, telemetry):
    """One pass of the Fig. 18.5 sweep through ``run_requests`` (the
    production hot path: admit_many bursts, span/monitor hooks live)."""
    from repro.experiments.base import run_requests

    elapsed = 0.0
    counts: list[int] = []
    for requests in sequences:
        start = time.perf_counter()
        counts.extend(
            run_requests(nodes, requests, SymmetricDPS(), telemetry=telemetry)
        )
        elapsed += time.perf_counter() - start
    return elapsed, counts


def test_bench_spans_monitor_overhead_under_ceiling(capsys, bench_record):
    """Spans + invariant monitor cost <= 5% over metrics-only (EXP-O4).

    Both sides run with telemetry attached; the delta isolates exactly
    what the observability PR added to the hot path -- the per-burst
    span emission and the monitor's (idle, on this workload) hooks.
    Alternating best-of-N, GC paused, same discipline as the metrics
    gate above. Decision parity is asserted: attribution must never
    change outcomes.
    """
    config = AdmissionPerfConfig(requests=200, trials=5, repeats=5)
    nodes, sequences = _request_sequences(config)

    base_best = inst_best = float("inf")
    base_counts: list[int] = []
    inst_counts: list[int] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(config.repeats):
            elapsed, base_counts = _one_sweep_run_requests(
                nodes, sequences, Telemetry(TelemetryConfig(tracing=False))
            )
            base_best = min(base_best, elapsed)
            elapsed, inst_counts = _one_sweep_run_requests(
                nodes, sequences,
                Telemetry(TelemetryConfig(
                    tracing=False, spans=True, monitor=True
                )),
            )
            inst_best = min(inst_best, elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    overhead = inst_best / base_best if base_best else 1.0
    total_decisions = config.requests * config.trials

    with capsys.disabled():
        print()
        print(format_table(
            ["side", "best ms", "final counts"],
            [
                ["metrics only", f"{base_best * 1000:.1f}",
                 str(base_counts)],
                ["spans+monitor", f"{inst_best * 1000:.1f}",
                 str(inst_counts)],
                ["overhead", f"{(overhead - 1) * 100:+.1f}%", ""],
            ],
            title="EXP-O4: span+monitor overhead -- Fig. 18.5 sweep",
        ))
    bench_record(
        throughput=total_decisions / inst_best if inst_best else 0.0,
        overhead_pct=(overhead - 1) * 100,
    )

    assert inst_counts == base_counts, (
        "enabling spans+monitor changed acceptance counts"
    )
    assert overhead <= _SPAN_OVERHEAD_CEILING, (
        f"span+monitor overhead {overhead:.3f}x exceeds the "
        f"{_SPAN_OVERHEAD_CEILING}x ceiling (metrics-only "
        f"{base_best * 1000:.1f} ms, spans+monitor "
        f"{inst_best * 1000:.1f} ms)"
    )


def test_bench_spans_disabled_byte_identical():
    """With spans/monitor off, nothing observable changes (EXP-O4).

    The zero-cost claim, held to bytes: a telemetry bundle with the
    span tracker and monitor DISABLED must produce the identical
    decision stream and the identical ``trace.jsonl`` byte stream as a
    bundle with them ENABLED -- spans ride a separate stream and the
    hooks never influence simulation behaviour -- and, a fortiori, as
    the pre-observability code path.
    """
    from repro.experiments.validation import run_validation
    from repro.obs import trace_jsonl_lines

    def run(spans: bool):
        telemetry = Telemetry(TelemetryConfig(
            spans=spans, monitor=spans, probe_cadence_ns=None,
        ))
        report = run_validation(
            n_masters=3, n_slaves=6, n_requests=16, hyperperiods=1,
            seed=55, use_wire_handshake=True, telemetry=telemetry,
        )
        trace = "\n".join(trace_jsonl_lines(telemetry.recorder))
        return report, trace, telemetry

    report_off, trace_off, tel_off = run(False)
    report_on, trace_on, tel_on = run(True)

    assert tel_off.spans is None and tel_on.spans is not None
    assert trace_on == trace_off, (
        "enabling spans+monitor changed the trace byte stream"
    )
    assert report_on.summary() == report_off.summary()
    assert len(tel_on.spans) > 0  # the enabled side did record spans
