"""EXP-O2: metrics overhead on the admission hot path.

The telemetry design claims metrics are *cheap enough to stay enabled
in benchmarks*: hot-path instrumentation is a handful of pre-bound
counter increments per admission decision, and everything else
(collectors, snapshots) runs off the hot path. This benchmark holds
the claim to a number on the reproduction's hottest loop -- the
Figure 18.5 admission sweep (200 requests x 5 trials) -- by timing the
identical cached sweep bare and with a registry attached (tracing off,
which is the always-on configuration the claim is about).

Asserted, not just printed:

* **determinism** -- both sides produce the identical decision stream
  (instrumentation must never change outcomes), and
* **overhead** -- the instrumented sweep takes at most 10% longer than
  the bare sweep (best-of-N, GC paused, same estimator as
  ``bench_admission``; the PR that introduced the registry measured
  ~2-4% on a quiet machine).

Run with ``-s`` to see the timing table.
"""

from __future__ import annotations

import gc
import time

from repro.analysis.report import format_table
from repro.core.admission import AdmissionController, SystemState
from repro.core.partitioning import SymmetricDPS
from repro.experiments.admission_perf import (
    AdmissionPerfConfig,
    _request_sequences,
)
from repro.obs import Telemetry, TelemetryConfig

#: Maximum instrumented/bare ratio (EXP-O2 acceptance threshold).
_OVERHEAD_CEILING = 1.10


def _one_sweep(nodes, sequences, telemetry):
    """One cached admission sweep; returns (elapsed_s, decision stream).

    Controller construction and cache tracking happen outside the timed
    region; only the admission decisions are on the clock (mirroring
    ``admission_perf._run_side``).
    """
    registry = None if telemetry is None else telemetry.registry
    decisions: list[bool] = []
    elapsed = 0.0
    for requests in sequences:
        controller = AdmissionController(
            SystemState(nodes=nodes),
            SymmetricDPS(),
            use_cache=True,
            metrics=registry,
        )
        if telemetry is not None:
            telemetry.track_cache(controller.cache)
        start = time.perf_counter()
        for request in requests:
            decision = controller.request(
                request.source, request.destination, request.spec
            )
            decisions.append(decision.accepted)
        elapsed += time.perf_counter() - start
    return elapsed, decisions


def _time_sides(nodes, sequences, telemetry, repeats):
    """Best-of-``repeats`` for the bare and instrumented sweeps.

    The two sides alternate within each repeat so slow drift of the
    host (frequency scaling, thermal throttling) cannot land on one
    side only and masquerade as instrumentation overhead.
    """
    bare_best = inst_best = float("inf")
    bare_decisions: list[bool] = []
    inst_decisions: list[bool] = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            elapsed, bare_decisions = _one_sweep(nodes, sequences, None)
            bare_best = min(bare_best, elapsed)
            elapsed, inst_decisions = _one_sweep(nodes, sequences, telemetry)
            inst_best = min(inst_best, elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    return bare_best, bare_decisions, inst_best, inst_decisions


def test_bench_metrics_overhead_under_ceiling(capsys):
    """Enabled metrics cost < 10% on the Fig. 18.5 sweep at 200 requests."""
    config = AdmissionPerfConfig(requests=200, trials=5, repeats=5)
    nodes, sequences = _request_sequences(config)

    telemetry = Telemetry(TelemetryConfig(tracing=False))
    bare_s, bare_decisions, inst_s, inst_decisions = _time_sides(
        nodes, sequences, telemetry, config.repeats
    )
    overhead = inst_s / bare_s if bare_s else 1.0

    with capsys.disabled():
        print()
        print(format_table(
            ["side", "best ms", "decisions", "accepts"],
            [
                ["bare", f"{bare_s * 1000:.1f}", len(bare_decisions),
                 sum(bare_decisions)],
                ["metrics on", f"{inst_s * 1000:.1f}", len(inst_decisions),
                 sum(inst_decisions)],
                ["overhead", f"{(overhead - 1) * 100:+.1f}%", "", ""],
            ],
            title="EXP-O2: metrics overhead -- Fig. 18.5 sweep, 200 requests",
        ))

    assert inst_decisions == bare_decisions, (
        "attaching the metrics registry changed admission decisions"
    )
    assert overhead <= _OVERHEAD_CEILING, (
        f"metrics overhead {overhead:.3f}x exceeds the "
        f"{_OVERHEAD_CEILING}x ceiling (bare {bare_s * 1000:.1f} ms, "
        f"instrumented {inst_s * 1000:.1f} ms)"
    )

    # the instrumented side actually recorded what it claims to record
    flat = telemetry.snapshot()
    verdicts = flat["admission.decisions"]["series"]
    counted = sum(s["value"] for s in verdicts)
    assert counted == len(inst_decisions) * config.repeats
