"""Network-calculus oracle benchmarks: bounds/second throughput.

The second oracle earns its keep only if bound computation is cheap
enough to run on every admitted channel of every campaign trial. These
benchmarks pin the per-link residual cost, the network-wide propagated
computation on a saturated star, and the end-to-end campaign trial
rate, and print a bounds/second table for the CI log.
"""

from __future__ import annotations

import time

from repro.analysis.report import format_table
from repro.core.admission import AdmissionController, SystemState
from repro.core.channel import ChannelSpec
from repro.core.partitioning import AsymmetricDPS
from repro.core.task import LinkRef, LinkTask
from repro.netcalc import link_delay_bound, network_delay_bounds
from repro.oracle.netcalc import run_netcalc_campaign

_LINK = LinkRef.uplink("bench")


def _paper_link_tasks(n: int) -> list[LinkTask]:
    return [
        LinkTask(
            link=_LINK, period=100, capacity=3, deadline=40,
            channel_id=index,
        )
        for index in range(n)
    ]


def _saturated_star() -> SystemState:
    """An ADPS-admitted master-slave system near saturation."""
    masters = [f"m{i}" for i in range(4)]
    slaves = [f"s{i}" for i in range(12)]
    state = SystemState(nodes=masters + slaves)
    controller = AdmissionController(state=state, dps=AsymmetricDPS())
    spec = ChannelSpec(period=100, capacity=3, deadline=40)
    for index in range(120):
        controller.request(
            masters[index % len(masters)],
            slaves[index % len(slaves)],
            spec,
        )
    return state


def test_bench_link_bound_saturated_link(benchmark):
    """Per-link bound on a 13-channel (U ~ 0.39) paper-shaped link."""
    tasks = _paper_link_tasks(13)
    bound = benchmark(link_delay_bound, tasks, 6)
    assert bound is not None


def test_bench_network_bounds_saturated_star(benchmark):
    """All-channel propagated bounds on a near-saturated ADPS star."""
    state = _saturated_star()
    flows = {
        channel_id: (
            LinkRef.uplink(channel.source),
            LinkRef.downlink(channel.destination),
        )
        for channel_id, channel in state.channels.items()
    }
    link_tasks = {
        link: state.tasks_on(link)
        for path in flows.values()
        for link in path
    }
    bounds = benchmark(network_delay_bounds, flows, link_tasks)
    assert len(bounds) == len(flows)


def test_bench_campaign_trials(benchmark):
    """Four full simulation trials (2 star + 2 fabric) per round."""
    report = benchmark(run_netcalc_campaign, 4, 0)
    assert report.ok


def test_netcalc_throughput_table(capsys):
    """Bounds/second on the saturated star + campaign trials/second."""
    state = _saturated_star()
    flows = {
        channel_id: (
            LinkRef.uplink(channel.source),
            LinkRef.downlink(channel.destination),
        )
        for channel_id, channel in state.channels.items()
    }
    link_tasks = {
        link: state.tasks_on(link)
        for path in flows.values()
        for link in path
    }
    repeats = 50
    start = time.perf_counter()
    for _ in range(repeats):
        bounds = network_delay_bounds(flows, link_tasks)
    bound_elapsed = time.perf_counter() - start
    bounds_per_sec = repeats * len(bounds) / bound_elapsed

    trials = 60
    start = time.perf_counter()
    report = run_netcalc_campaign(trials, seed=0)
    campaign_elapsed = time.perf_counter() - start
    assert report.ok
    rows = [
        ["network_delay_bounds", len(bounds) * repeats,
         f"{bound_elapsed:.2f}", f"{bounds_per_sec:.0f} bounds/s"],
        ["netcalc campaign", trials, f"{campaign_elapsed:.2f}",
         f"{trials / campaign_elapsed:.0f} trials/s"],
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["workload", "units", "seconds", "throughput"],
            rows,
            title="network-calculus oracle throughput",
        ))
