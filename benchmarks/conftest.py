"""Benchmark-suite configuration.

Every benchmark prints the rows it regenerates (the figure-as-a-table
format) so a ``pytest benchmarks/ --benchmark-only -s`` run leaves the
full reproduced evaluation in the terminal, and asserts the paper-shape
checks so a drifted implementation fails loudly rather than silently
producing a different figure.

Artifacts: every ``bench_<name>.py`` module that ran leaves a
``BENCH_bench_<name>.json`` file (schema:
:data:`repro.obs.schema.BENCH_SCHEMA`) in ``$BENCH_OUT`` (default
``out/bench``) -- per-test wall times plus whatever throughput /
overhead numbers the benchmark recorded through the ``bench_record``
fixture. ``repro bench-report DIR [--baseline DIR]`` renders and
compares them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

#: per-module collected test timings: module stem -> [{test, wall_s, outcome}]
_BENCH_RESULTS: dict[str, list[dict]] = {}
#: per-module numbers recorded via the bench_record fixture
_BENCH_EXTRA: dict[str, dict] = {}


@pytest.fixture
def bench_record(request):
    """Record headline numbers into this module's ``BENCH_*.json``.

    ``bench_record(throughput=..., overhead_pct=...)`` fills the
    schema's top-level optional fields; any other keyword lands under
    ``extra``. Later calls override earlier ones key-by-key.
    """
    module = Path(str(request.node.fspath)).stem

    def record(**numbers) -> None:
        slot = _BENCH_EXTRA.setdefault(module, {})
        for key, value in numbers.items():
            if key in ("throughput", "overhead_pct"):
                slot[key] = float(value)
            else:
                slot.setdefault("extra", {})[key] = value

    return record


def pytest_runtest_logreport(report):
    if report.when != "call":
        return
    path = Path(str(report.fspath))
    if not path.name.startswith("bench_"):
        return
    _BENCH_RESULTS.setdefault(path.stem, []).append({
        "test": report.nodeid.rsplit("::", 1)[-1],
        "wall_s": round(report.duration, 6),
        "outcome": report.outcome,
    })


def pytest_sessionfinish(session, exitstatus):
    if not _BENCH_RESULTS:
        return
    out = Path(os.environ.get("BENCH_OUT", "out/bench"))
    out.mkdir(parents=True, exist_ok=True)
    for module, tests in sorted(_BENCH_RESULTS.items()):
        record: dict = {
            "name": module,
            "wall_s": round(sum(t["wall_s"] for t in tests), 6),
            "tests": tests,
        }
        record.update(_BENCH_EXTRA.get(module, {}))
        path = out / f"BENCH_{module}.json"
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def pytest_addoption(parser):
    parser.addoption(
        "--full-paper-scale",
        action="store_true",
        default=False,
        help=(
            "run the benchmarks at the paper's full trial counts "
            "(slower; default uses reduced trials with identical shape)"
        ),
    )
    parser.addoption(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for the acceptance sweeps (1 = serial, "
            "0 = all CPUs; results are identical at any worker count)"
        ),
    )


@pytest.fixture(scope="session")
def trials(request) -> int:
    """Trials per randomized experiment (20 at full paper scale)."""
    return 20 if request.config.getoption("--full-paper-scale") else 8


@pytest.fixture(scope="session")
def workers(request) -> int:
    """Sweep worker processes (the --workers benchmark option)."""
    return request.config.getoption("--workers")
