"""Benchmark-suite configuration.

Every benchmark prints the rows it regenerates (the figure-as-a-table
format) so a ``pytest benchmarks/ --benchmark-only -s`` run leaves the
full reproduced evaluation in the terminal, and asserts the paper-shape
checks so a drifted implementation fails loudly rather than silently
producing a different figure.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-paper-scale",
        action="store_true",
        default=False,
        help=(
            "run the benchmarks at the paper's full trial counts "
            "(slower; default uses reduced trials with identical shape)"
        ),
    )
    parser.addoption(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for the acceptance sweeps (1 = serial, "
            "0 = all CPUs; results are identical at any worker count)"
        ),
    )


@pytest.fixture(scope="session")
def trials(request) -> int:
    """Trials per randomized experiment (20 at full paper scale)."""
    return 20 if request.config.getoption("--full-paper-scale") else 8


@pytest.fixture(scope="session")
def workers(request) -> int:
    """Sweep worker processes (the --workers benchmark option)."""
    return request.config.getoption("--workers")
