"""Microbenchmarks of the hot data structures and codecs.

Not tied to a paper artifact; these guard the implementation's
performance envelope (EDF queue ops, event kernel, frame codecs) so
regressions show up in CI-style runs.
"""

from __future__ import annotations

from repro.core.edf_queue import EDFQueue, FCFSQueue, QueuedFrame
from repro.protocol.frames import RequestFrame, decode_signaling
from repro.protocol.headers import encode_rt_header
from repro.sim.kernel import Simulator


def test_bench_edf_queue_push_pop(benchmark):
    """1k mixed-deadline push/pop cycles through the EDF heap."""
    deadlines = [(i * 7919) % 1000 for i in range(1000)]

    def run():
        queue: EDFQueue[int] = EDFQueue()
        for i, deadline in enumerate(deadlines):
            queue.push(
                QueuedFrame(
                    payload=i, absolute_deadline=deadline, enqueued_at=0
                )
            )
        total = 0
        while queue:
            total += queue.pop().absolute_deadline
        return total

    assert benchmark(run) == sum(deadlines)


def test_bench_fcfs_queue(benchmark):
    def run():
        queue: FCFSQueue[int] = FCFSQueue()
        for i in range(1000):
            queue.push(
                QueuedFrame(payload=i, absolute_deadline=0, enqueued_at=0)
            )
        count = 0
        while queue:
            queue.pop()
            count += 1
        return count

    assert benchmark(run) == 1000


def test_bench_event_kernel(benchmark):
    """10k chained zero-work events through the kernel."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(i, lambda: None)
        sim.run()
        return sim.dispatched_events

    assert benchmark(run) == 10_000


def test_bench_request_frame_roundtrip(benchmark):
    frame = RequestFrame(
        connect_request_id=1,
        rt_channel_id=0,
        source_mac=0x0200_0000_0001,
        destination_mac=0x0200_0000_0002,
        source_ip=0x0A00_0001,
        destination_ip=0x0A00_0002,
        period=100,
        capacity=3,
        deadline=40,
    )

    def run():
        return decode_signaling(frame.encode())

    assert benchmark(run) == frame


def test_bench_rt_header_encode(benchmark):
    def run():
        return encode_rt_header(123_456_789_000, 42)

    header = benchmark(run)
    assert header.channel_id == 42


def test_bench_offline_schedule(benchmark):
    """Slot-level EDF schedule of a loaded link over one hyperperiod."""
    from repro.core.schedule import build_schedule
    from repro.core.task import LinkRef, LinkTask

    link = LinkRef.uplink("bench")
    tasks = [
        LinkTask(link=link, period=100, capacity=3, deadline=20 + i,
                 channel_id=i)
        for i in range(6)
    ]

    schedule = benchmark(build_schedule, tasks)
    assert schedule.feasible


def test_bench_capacity_planning(benchmark):
    """Binary-search headroom query on a half-loaded link."""
    from repro.core.feasibility import max_additional_tasks
    from repro.core.task import LinkRef, LinkTask

    link = LinkRef.uplink("bench")
    existing = [
        LinkTask(link=link, period=100, capacity=3, deadline=20,
                 channel_id=i)
        for i in range(3)
    ]
    probe = LinkTask(link=link, period=100, capacity=3, deadline=20)

    headroom = benchmark(max_additional_tasks, existing, probe)
    assert headroom == 3
