"""EXP-X4 benchmark: resident service + intent-lock fabric throughput."""

from __future__ import annotations

import time

from repro.analysis.report import format_table
from repro.experiments.service_soak import run_service_soak


def test_exp_x4_service_soak(benchmark, bench_record, capsys):
    """The headline soak: two-switch fabric at 20% control loss with a
    mid-run kill-and-resume, plus the single-switch service gate."""
    duration_ns = 80_000_000
    start = time.perf_counter()
    result = benchmark.pedantic(
        run_service_soak,
        args=(duration_ns, 7),
        kwargs={"loss": 0.2, "kill_at_ns": 35_000_000},
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - start
    assert result.ok, result.summary()
    counters = result.fabric_counters
    rows = [
        ["arrivals", counters["arrivals"]],
        ["commits", counters["commits"]],
        ["aborts", counters["aborts"]],
        ["departures", counters["departures"]],
        ["retransmissions", counters["retransmissions"]],
        ["reconciliations", counters["reconciliations"]],
        ["double-bookings", result.double_bookings],
        ["leaked reservations", result.leaked_reservations],
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["metric", "count"],
            rows,
            title=f"EXP-X4 -- service soak: {duration_ns} ns horizon, "
                  f"20% control loss, kill at 35 ms (extension)",
        ))
    # end-to-end admission attempts (fabric + the 3 service runs)
    bench_record(
        throughput=counters["arrivals"] / elapsed,
        commits=counters["commits"],
        aborts=counters["aborts"],
        retransmissions=counters["retransmissions"],
        ledger_identical=result.fabric_ledger_identical,
    )
