"""EXP-V1 benchmark: simulate the admitted set, verify Eq. 18.1.

Also benchmarks raw simulator throughput on the RT data plane.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.core.partitioning import SymmetricDPS
from repro.experiments.validation import run_validation


def test_exp_v1_guarantee_validation(benchmark, capsys):
    """Run both schemes' admitted sets through the full simulator."""

    def run_both():
        adps = run_validation(
            n_masters=6, n_slaves=18, n_requests=80, hyperperiods=3,
            use_wire_handshake=False,
        )
        sdps = run_validation(
            n_masters=6, n_slaves=18, n_requests=80, hyperperiods=3,
            dps=SymmetricDPS(), use_wire_handshake=False,
        )
        return adps, sdps

    adps, sdps = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        ["adps", adps.channels_admitted, adps.messages_completed,
         adps.end_to_end_misses, adps.per_link_misses,
         round(adps.worst_delay_fraction, 3)],
        ["sdps", sdps.channels_admitted, sdps.messages_completed,
         sdps.end_to_end_misses, sdps.per_link_misses,
         round(sdps.worst_delay_fraction, 3)],
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["scheme", "admitted", "messages", "e2e miss", "link miss",
             "worst/bound"],
            rows,
            title="EXP-V1 -- Eq. 18.1 guarantee under simulation "
                  "(critical-instant release, 3 hyperperiods)",
        ))
    for report in (adps, sdps):
        assert report.holds, report.summary()
        assert report.messages_completed > 0
    # ADPS admits more channels from the same request stream.
    assert adps.channels_admitted >= sdps.channels_admitted


def test_bench_simulator_throughput(benchmark):
    """Frame-events per second: one saturated uplink, 200 messages."""
    from repro.core.channel import ChannelSpec
    from repro.network.topology import build_star

    def run():
        net = build_star(["m", "s0", "s1"], dps=SymmetricDPS())
        spec = ChannelSpec(period=100, capacity=3, deadline=40)
        for dest in ("s0", "s1") * 3:
            net.establish_analytically("m", dest, spec)
        net.start_all_sources(stop_after_messages=20)
        net.sim.run()
        return net.sim.dispatched_events

    events = benchmark(run)
    assert events > 1000


def test_bench_wire_handshake(benchmark):
    """Latency of one full Request/Response establishment on the wire."""
    from repro.core.channel import ChannelSpec
    from repro.network.topology import build_star

    spec = ChannelSpec(period=1000, capacity=1, deadline=500)

    def run():
        net = build_star(["a", "b"], dps=SymmetricDPS())
        grant = net.establish("a", "b", spec)
        assert grant is not None
        return net

    benchmark(run)


def test_exp_v2_delay_decomposition(benchmark, capsys):
    """EXP-V2: per-channel per-hop budget vs observed worst case."""
    from repro.experiments.validation import run_decomposition

    rows = benchmark.pedantic(
        run_decomposition,
        kwargs=dict(n_masters=4, n_slaves=12, n_requests=40, messages=4),
        rounds=1, iterations=1,
    )
    # print the five tightest uplinks -- the interesting rows
    tightest = sorted(
        rows,
        key=lambda r: -(r.uplink_worst_slots / r.uplink_budget_slots),
    )[:5]
    table_rows = [
        [r.channel_id, r.uplink_budget_slots,
         round(r.uplink_worst_slots, 1), r.total_budget_slots,
         round(r.total_worst_slots, 1)]
        for r in tightest
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["channel", "d_iu budget", "uplink worst", "d budget",
             "e2e worst"],
            table_rows,
            title="EXP-V2 -- per-hop delay decomposition "
                  "(five tightest uplinks of the ADPS set)",
        ))
    assert all(r.uplink_within_budget and r.total_within_budget
               for r in rows)
