"""EXP-X3 benchmark: acceptance sweeps on graph fabrics (fat-tree)."""

from __future__ import annotations

import time

from repro.analysis.report import format_table
from repro.experiments.fabric_sweep import (
    FabricSweepConfig,
    run_fabric_sweep,
)


def test_exp_x3_fat_tree_sweep(benchmark, trials, workers, bench_record,
                               capsys):
    """The headline fat-tree k=4 curve at the >= 100-node scale."""
    config = FabricSweepConfig(
        topology="fat-tree:4",
        requests=400,
        checkpoints=10,
        trials=trials,
        workers=workers,
    )
    start = time.perf_counter()
    result = benchmark.pedantic(
        run_fabric_sweep, args=(config,), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start
    rows = [
        [p.requested, round(p.symmetric_mean, 1),
         round(p.proportional_mean, 1), round(p.advantage, 2)]
        for p in result.points
    ]
    with capsys.disabled():
        print()
        print(format_table(
            ["requested", "msym", "mprop", "ratio"],
            rows,
            title=f"EXP-X3 -- fat-tree:4: {result.n_nodes} nodes / "
                  f"{result.n_switches} switches / max "
                  f"{result.max_hops} hops (extension)",
        ))
    # admissions per second over every (trial, scheme) unit
    admissions = 2 * trials * config.requests
    bench_record(
        throughput=admissions / elapsed,
        nodes=result.n_nodes,
        switches=result.n_switches,
        max_hops=result.max_hops,
        workers=workers,
    )
    assert result.n_nodes >= 100
    assert result.max_hops == 6
    final = result.points[-1]
    # mprop keeps its advantage on the multipath fabric.
    assert final.proportional_mean >= final.symmetric_mean


def test_bench_fat_tree_routing(benchmark):
    """Multipath route computation + caching on the k=4 fat-tree."""
    from repro.multiswitch.graph import build_fat_tree

    def run():
        graph = build_fat_tree(4, hosts_per_edge=13)
        names = graph.node_order
        hops = 0
        for i in range(0, len(names) - 1, 2):
            hops += len(graph.path_links(names[i], names[i + 1]))
        return hops

    hops = benchmark(run)
    assert hops > 0


def test_bench_fat_tree_admission(benchmark):
    """Admission throughput along 6-hop paths with the per-link cache."""
    from repro.core.channel import ChannelSpec
    from repro.multiswitch.admission import MultiSwitchAdmission
    from repro.multiswitch.graph import build_fat_tree
    from repro.multiswitch.partitioning import MultiHopProportional

    spec = ChannelSpec(period=100, capacity=3, deadline=60)

    def run():
        graph = build_fat_tree(4)
        admission = MultiSwitchAdmission(
            fabric=graph, dps=MultiHopProportional()
        )
        names = graph.node_order
        for i in range(100):
            admission.request(
                names[i % len(names)],
                names[(i * 7 + 1) % len(names)],
                spec,
            )
        return admission.accept_count

    accepted = benchmark(run)
    assert accepted > 0
