#!/usr/bin/env python3
"""Capacity planning: how many channels fit, and where is the headroom?

An operator's view of the reproduced system: admit a real workload,
then ask the analysis the questions a commissioning engineer asks --
how full is each link, why were requests rejected, and how many more
channels of a given class would still fit.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import AsymmetricDPS, ChannelSpec
from repro.analysis.audit import system_summary
from repro.core.admission import AdmissionController, SystemState
from repro.core.feasibility import max_additional_tasks
from repro.core.task import LinkRef, LinkTask
from repro.traffic.patterns import master_slave_names, master_slave_requests
from repro.traffic.spec import FixedSpecSampler

SPEC = ChannelSpec(period=100, capacity=3, deadline=40)


def analytic_headroom() -> None:
    print("=" * 66)
    print("analytic headroom of one empty uplink, by per-link deadline")
    print("=" * 66)
    link = LinkRef.uplink("m")
    print("d_link   channels that fit   limiting constraint")
    for d_link in (6, 10, 20, 30, 37, 50, 100):
        probe = LinkTask(
            link=link, period=SPEC.period, capacity=SPEC.capacity,
            deadline=min(d_link, SPEC.period),
        )
        fit = max_additional_tasks([], probe)
        limit = "demand h(t)<=t" if d_link < 100 else "utilization U<=1"
        print(f"{d_link:6d}   {fit:17d}   {limit}")
    print(
        "\nThis is Figure 18.5 in one column: SDPS pins d_link at 20\n"
        "(6 channels/uplink -> 60 total), ADPS walks it toward 37\n"
        "(12 channels/uplink -> ~117 total).\n"
    )


def operational_view() -> None:
    print("=" * 66)
    print("operational audit after admitting a live workload")
    print("=" * 66)
    masters, slaves = master_slave_names(4, 12)
    controller = AdmissionController(
        SystemState(masters + slaves), AsymmetricDPS()
    )
    rng = np.random.default_rng(7)
    requests = master_slave_requests(
        masters, slaves, 80, FixedSpecSampler(SPEC), rng
    )
    for request in requests:
        controller.request(request.source, request.destination, request.spec)
    print(system_summary(controller, reference=SPEC))


def main() -> None:
    analytic_headroom()
    operational_view()


if __name__ == "__main__":
    main()
