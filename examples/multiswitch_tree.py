#!/usr/bin/env python3
"""Future work made concrete: RT channels across a tree of switches.

The paper closes by calling for "more complex network topologies, i.e.,
networks consisting of many interconnected switches". This example
builds a three-switch production line, routes channels across it, and
compares the k-way generalizations of SDPS and ADPS on paths of 2-4
links.

Run:  python examples/multiswitch_tree.py
"""

from repro import ChannelSpec
from repro.multiswitch import (
    MultiHopProportional,
    MultiHopSymmetric,
    MultiSwitchAdmission,
    SwitchFabric,
)


def build_line() -> SwitchFabric:
    """Three cells daisy-chained: sw0 -- sw1 -- sw2."""
    fabric = SwitchFabric()
    for i in range(3):
        fabric.add_switch(f"sw{i}")
    fabric.connect_switches("sw0", "sw1")
    fabric.connect_switches("sw1", "sw2")
    # the line controller sits on the middle switch
    fabric.add_node("controller", "sw1")
    # each cell has three stations
    for i in range(3):
        for j in range(3):
            fabric.add_node(f"cell{i}_dev{j}", f"sw{i}")
    return fabric


def main() -> None:
    fabric = build_line()
    spec = ChannelSpec(period=100, capacity=3, deadline=60)

    path = fabric.path_links("cell0_dev0", "cell2_dev1")
    print("path cell0_dev0 -> cell2_dev1 crosses "
          f"{len(path)} links: " + ", ".join(str(l) for l in path))

    for name, scheme in (
        ("symmetric (k-way SDPS)", MultiHopSymmetric()),
        ("proportional (k-way ADPS)", MultiHopProportional()),
    ):
        admission = MultiSwitchAdmission(fabric=build_line(), dps=scheme)
        accepted = 0
        # The controller polls every device; cross-cell devices also talk.
        requests = []
        for i in range(3):
            for j in range(3):
                requests.append(("controller", f"cell{i}_dev{j}"))
                requests.append((f"cell{i}_dev{j}", "controller"))
        # cross-cell peer traffic loads the trunks:
        for j in range(3):
            requests.append((f"cell0_dev{j}", f"cell2_dev{j}"))
            requests.append((f"cell2_dev{j}", f"cell0_dev{j}"))
        per_hop = {}
        for source, destination in requests * 3:  # offer the set three times
            decision = admission.request(source, destination, spec)
            if decision.accepted:
                accepted += 1
                hops = len(decision.links)
                per_hop[hops] = per_hop.get(hops, 0) + 1
        print(f"\n{name}: accepted {accepted} of {len(requests) * 3} requests")
        for hops in sorted(per_hop):
            print(f"  {per_hop[hops]:3d} channels over {hops}-link paths")
        trunk_load = admission.link_load(path[1])
        print(f"  LinkLoad on trunk {path[1]}: {trunk_load}")


if __name__ == "__main__":
    main()
