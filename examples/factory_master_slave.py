#!/usr/bin/env python3
"""Factory cell: the paper's master-slave scenario at full scale.

Reproduces the *situation* behind Figure 18.5 interactively: 10 masters
(cell controllers) and 50 slaves (drives/IO stations) on one switch.
Channel requests arrive one by one; we show how SDPS starves once the
master uplinks saturate while ADPS keeps accepting, then stream traffic
over the ADPS-admitted set with saturating best-effort background load
and verify that not a single RT deadline is missed.

Run:  python examples/factory_master_slave.py
"""

import numpy as np

from repro import AsymmetricDPS, ChannelSpec, SymmetricDPS, build_star
from repro.core.admission import AdmissionController, SystemState
from repro.traffic.besteffort import BestEffortInjector
from repro.traffic.patterns import master_slave_names, master_slave_requests
from repro.traffic.spec import FixedSpecSampler

SPEC = ChannelSpec(period=100, capacity=3, deadline=40)
N_REQUESTS = 150
SEED = 42


def admission_phase() -> list:
    """Feed the same request sequence to SDPS and ADPS side by side."""
    masters, slaves = master_slave_names(10, 50)
    rng = np.random.default_rng(SEED)
    requests = master_slave_requests(
        masters, slaves, N_REQUESTS, FixedSpecSampler(SPEC), rng
    )
    controllers = {
        "SDPS": AdmissionController(
            SystemState(masters + slaves), SymmetricDPS()
        ),
        "ADPS": AdmissionController(
            SystemState(masters + slaves), AsymmetricDPS()
        ),
    }
    print(f"offering {N_REQUESTS} identical channel requests "
          f"(C={SPEC.capacity}, P={SPEC.period}, d={SPEC.deadline})\n")
    print("offered   SDPS accepted   ADPS accepted")
    for i, request in enumerate(requests, start=1):
        for controller in controllers.values():
            controller.request(request.source, request.destination, request.spec)
        if i % 25 == 0:
            print(
                f"{i:7d}   {controllers['SDPS'].accept_count:13d}   "
                f"{controllers['ADPS'].accept_count:13d}"
            )
    print(
        f"\nADPS admitted "
        f"{controllers['ADPS'].accept_count - controllers['SDPS'].accept_count}"
        " more channels from the identical request stream."
    )
    return requests


def traffic_phase(requests) -> None:
    """Re-admit with ADPS on the simulated network and stream traffic."""
    masters, slaves = master_slave_names(10, 50)
    net = build_star(masters + slaves, dps=AsymmetricDPS())
    for request in requests:
        net.establish_analytically(
            request.source, request.destination, request.spec
        )
    print(f"\nsimulating {len(net.grants)} admitted channels "
          "plus saturating best-effort background from every master...")
    injectors = []
    for master in masters:
        injector = BestEffortInjector(
            sim=net.sim, node=net.nodes[master], destinations=slaves
        )
        injector.start()
        injectors.append(injector)
    net.start_all_sources(stop_after_messages=5)
    horizon = net.sim.now + 6 * SPEC.period * net.phy.slot_ns
    net.sim.run(until=horizon)
    for injector in injectors:
        injector.stop()
    net.sim.run(until=horizon + net.phy.slot_ns)

    print("\n--- after 5 messages per channel under background load ---")
    print(net.metrics.summary())
    assert net.metrics.total_deadline_misses == 0
    elapsed = net.sim.now
    print(
        f"best-effort goodput: "
        f"{net.metrics.be_goodput_bps(elapsed) / 1e6:.1f} Mbps aggregate "
        "(residual bandwidth, RT untouched)"
    )


def main() -> None:
    requests = admission_phase()
    traffic_phase(requests)


if __name__ == "__main__":
    main()
