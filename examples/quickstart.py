#!/usr/bin/env python3
"""Quickstart: establish RT channels and watch the guarantees hold.

Builds the paper's star network (Figure 18.1), establishes a few RT
channels through the real Request/Response signalling handshake
(Figures 18.3/18.4), streams periodic traffic over them, and prints the
observed worst-case delays against the Eq. 18.1 guarantee.

Run:  python examples/quickstart.py
"""

from repro import AsymmetricDPS, ChannelSpec, build_star


def main() -> None:
    # One controller ("plc") and four field devices on a 100 Mbps star.
    net = build_star(
        ["plc", "drive0", "drive1", "sensor0", "sensor1"],
        dps=AsymmetricDPS(),
    )
    slot_us = net.phy.slot_ns / 1000
    print(f"network up: 100 Mbps, 1 timeslot = {slot_us:.1f} us")
    print(f"T_latency  = {net.phy.t_latency_ns / 1000:.1f} us\n")

    # The controller opens one channel to each drive: every 100 slots it
    # sends 3 maximum frames that must arrive within 40 slots (~4.9 ms).
    spec = ChannelSpec(period=100, capacity=3, deadline=40)
    for drive in ("drive0", "drive1"):
        grant = net.establish("plc", drive, spec)
        assert grant is not None, f"channel to {drive} was rejected"
        print(
            f"channel #{grant.channel_id} plc->{drive} accepted, "
            f"deadline split d_iu={grant.uplink_deadline_slots} / "
            f"d_id={spec.deadline - grant.uplink_deadline_slots} slots"
        )

    # Sensors stream readings back to the controller on tighter periods.
    sensor_spec = ChannelSpec(period=50, capacity=1, deadline=20)
    for sensor in ("sensor0", "sensor1"):
        grant = net.establish(sensor, "plc", sensor_spec)
        assert grant is not None, f"channel from {sensor} was rejected"
        print(
            f"channel #{grant.channel_id} {sensor}->plc accepted, "
            f"d_iu={grant.uplink_deadline_slots} slots"
        )

    # An over-greedy request bounces off admission control: deadline 5
    # cannot cover 2 hops of capacity 3 (Eq. 18.9).
    bad = net.establish("plc", "sensor0", ChannelSpec(100, 3, 5))
    print(f"\ninfeasible request correctly rejected: {bad is None}")

    # Release all sources at the same instant (the analysis' critical
    # instant) and run 10 periods of traffic.
    net.start_all_sources(stop_after_messages=10)
    net.sim.run()

    print("\n--- results over 10 messages per channel ---")
    print(net.metrics.summary())
    bound_ns = spec.deadline * net.phy.slot_ns + net.phy.t_latency_ns
    print(
        f"\nguarantee bound (plc->drive channels): {bound_ns / 1000:.1f} us; "
        f"worst observed delay {net.metrics.worst_rt_delay_ns / 1000:.1f} us"
    )
    assert net.metrics.total_deadline_misses == 0
    print("zero deadline misses -- Eq. 18.1 held for every frame")


if __name__ == "__main__":
    main()
