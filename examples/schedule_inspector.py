#!/usr/bin/env python3
"""Inspect an EDF link schedule three ways and watch them agree.

The reproduction implements EDF three times on purpose:

1. analytically   -- the paper's demand criterion (Section 18.3.2),
2. tabularly      -- an offline slot-by-slot schedule constructor,
3. event-driven   -- the network simulator's queues and wires.

This example takes one bottleneck uplink (the Figure 18.5 regime: six
SDPS channels of C=3, P=100, d_iu=20) and shows the same truth from all
three angles: the demand test passes with h(20) = 18 <= 20, the offline
schedule's worst response is exactly 18 slots, and the simulated network
delivers the last frame of the burst 18 slot-times after release.

Run:  python examples/schedule_inspector.py
"""

from repro import ChannelSpec, LinkRef, LinkTask, SymmetricDPS, build_star
from repro.analysis.timeline import build_timelines, render_timeline
from repro.core.feasibility import demand, is_feasible
from repro.core.schedule import build_schedule

N_CHANNELS = 6
SPEC = ChannelSpec(period=100, capacity=3, deadline=40)
D_IU = SPEC.deadline // 2  # SDPS uplink part


def analytical_view(tasks):
    print("=" * 66)
    print("1) analytical: the paper's demand criterion")
    print("=" * 66)
    report = is_feasible(tasks)
    print(f"U = {float(report.link_utilization):.2f}, "
          f"horizon = {report.horizon} slots, "
          f"{report.points_checked} control points checked")
    print(f"h(n, {D_IU}) = {demand(tasks, D_IU)} <= {D_IU}  ->  "
          f"{'feasible' if report.feasible else 'INFEASIBLE'}\n")


def tabular_view(tasks):
    print("=" * 66)
    print("2) tabular: offline slot-by-slot EDF schedule")
    print("=" * 66)
    schedule = build_schedule(tasks, horizon=100)
    print(schedule.render(width=50))
    worst = max(r.worst_response for r in schedule.responses)
    print(f"\nworst response over all channels: {worst} slots "
          f"(budget {D_IU}); feasible = {schedule.feasible}\n")
    return worst


def simulated_view():
    print("=" * 66)
    print("3) event-driven: the simulated network, critical instant")
    print("=" * 66)
    nodes = ["m"] + [f"s{i}" for i in range(N_CHANNELS)]
    net = build_star(nodes, dps=SymmetricDPS(), trace_enabled=True)
    for i in range(N_CHANNELS):
        grant = net.establish("m", f"s{i}", SPEC)
        assert grant is not None
    net.start_all_sources(stop_after_messages=1)
    net.sim.run()
    timelines = build_timelines(
        net.trace, slot_ns=net.phy.slot_ns, horizon_slots=50
    )
    print(render_timeline(timelines["m->switch"], width=50))
    worst_ns = net.metrics.worst_rt_delay_ns
    print(f"\nworst end-to-end delay: {worst_ns / 1000:.1f} us = "
          f"{worst_ns / net.phy.slot_ns:.1f} slot-times; "
          f"misses = {net.metrics.total_deadline_misses}")
    return worst_ns / net.phy.slot_ns


def main() -> None:
    link = LinkRef.uplink("m")
    tasks = [
        LinkTask(link=link, period=SPEC.period, capacity=SPEC.capacity,
                 deadline=D_IU, channel_id=i + 1)
        for i in range(N_CHANNELS)
    ]
    analytical_view(tasks)
    tabular_worst = tabular_view(tasks)
    simulated_worst_slots = simulated_view()
    print(
        f"\nagreement: offline worst uplink response = {tabular_worst} "
        f"slots; simulated worst end-to-end = "
        f"{simulated_worst_slots:.1f} slot-times (uplink burst + one "
        "downlink frame + switch latency)"
    )


if __name__ == "__main__":
    main()
