#!/usr/bin/env python3
"""Inside the admission test: utilization, demand and partitioning.

A guided tour of the paper's Section 18.3/18.4 machinery with no
simulator at all -- pure analysis. Shows, for a growing channel load on
one bottleneck uplink:

* the utilization test (Eq. 18.2),
* the workload function h(n, t) at its control points (Eq. 18.3/18.5),
* the busy-period horizon (Eq. 18.4),
* why SDPS hits the demand wall at 6 channels while ADPS keeps going.

Run:  python examples/admission_analysis.py
"""

from repro import ChannelSpec, LinkRef, LinkTask
from repro.core.feasibility import (
    busy_period,
    control_points,
    demand,
    is_feasible,
    utilization,
)

SPEC = ChannelSpec(period=100, capacity=3, deadline=40)


def show_link(tasks: list[LinkTask], label: str) -> None:
    report = is_feasible(tasks)
    util = utilization(tasks)
    print(f"{label}: {len(tasks)} channels, U = {util} = {float(util):.2f}")
    if not tasks:
        print("  (empty -- trivially feasible)\n")
        return
    horizon = min(busy_period(tasks), 10_000)
    points = control_points(tasks, horizon)
    print(f"  busy period = {busy_period(tasks)} slots, "
          f"{len(points)} control points to check")
    for t in points[:6]:
        h = demand(tasks, int(t))
        mark = "ok " if h <= t else "VIOLATION"
        print(f"    h(t={int(t):4d}) = {h:4d}  {mark}")
    print(f"  verdict: {'FEASIBLE' if report.feasible else 'infeasible'}"
          + (f" (first violation at t={report.violation[0]}, "
             f"h={report.violation[1]})" if report.violation else "")
          + "\n")


def main() -> None:
    link = LinkRef.uplink("master0")

    print("=" * 64)
    print("SDPS view: every channel gets d_iu = d/2 = 20 slots")
    print("=" * 64)
    for n in (4, 6, 7):
        tasks = [
            LinkTask(link=link, period=SPEC.period, capacity=SPEC.capacity,
                     deadline=SPEC.deadline // 2, channel_id=i)
            for i in range(n)
        ]
        show_link(tasks, f"uplink with {n} SDPS channels")
    print("With d_iu=20, demand h(20) = 3n must stay <= 20: at n=7, "
          "h(20)=21 > 20.\nSDPS caps every master uplink at 6 channels -> "
          "60 total in Figure 18.5.\n")

    print("=" * 64)
    print("ADPS view: a loaded uplink receives a growing deadline share")
    print("=" * 64)
    # Replay how ADPS actually partitions as channels accumulate on one
    # master uplink while each slave downlink holds one channel:
    tasks = []
    n = 0
    while True:
        n += 1
        ll_up, ll_down = n, 1  # candidate included on both sides
        d_iu = max(
            SPEC.capacity,
            min(
                SPEC.deadline - SPEC.capacity,
                (2 * SPEC.deadline * ll_up + (ll_up + ll_down))
                // (2 * (ll_up + ll_down)),
            ),
        )
        candidate = LinkTask(
            link=link, period=SPEC.period, capacity=SPEC.capacity,
            deadline=d_iu, channel_id=n,
        )
        if not is_feasible(tasks + [candidate]).feasible:
            print(f"channel {n} (would get d_iu={d_iu}) is REJECTED")
            break
        tasks.append(candidate)
        print(f"channel {n}: admitted with d_iu={d_iu}")
    show_link(tasks, "final ADPS uplink")
    print(f"ADPS fits {len(tasks)} channels on the same uplink "
          "(vs 6 for SDPS) by widening d_iu toward d - C as load grows.")


if __name__ == "__main__":
    main()
